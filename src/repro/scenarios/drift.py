"""Slow thermal phase drift: an Ornstein--Uhlenbeck walk per phase shifter.

Real thermo-optic phase shifters drift over minutes as the die temperature
wanders: each heater's phase error is well modelled as a mean-reverting
random walk rather than a fresh i.i.d. draw per inference.  The
Ornstein--Uhlenbeck process captures exactly that:

.. math::

    d x_t = -\\frac{x_t}{\\tau} dt + \\sigma \\sqrt{2 / \\tau}\\, dW_t

Starting from a freshly calibrated mesh (``x_0 = 0``), the phase error of
each shifter at time ``t`` is Gaussian with variance

.. math::

    \\operatorname{Var}[x_t] = \\sigma^2 (1 - e^{-2 t / \\tau}),

growing from zero to the stationary variance ``sigma**2`` over a few
correlation times ``tau_s``, with autocorrelation ``exp(-dt / tau_s)``
between two evaluations ``dt`` apart.  ``tools/check_scenarios.py`` pins the
implementation against both closed forms.

The walk is *exact* (no Euler step error): between two evaluation times the
state updates as ``x' = x * exp(-dt/tau) + sigma * sqrt(1 - exp(-2 dt/tau))
* eps``, so a serving worker may advance the clock in arbitrary increments
and always samples the true process.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.scenarios.base import HardwareScenario, MeshDevice
from repro.scenarios.registry import register_scenario


@register_scenario("thermal_drift")
class ThermalDriftScenario(HardwareScenario):
    """Mean-reverting (Ornstein--Uhlenbeck) phase drift on every shifter.

    Parameters
    ----------
    sigma:
        Stationary standard deviation of the phase error in radians.  May be
        an *array* of standard deviations: the offsets then gain one leading
        sigma axis per array axis (common random numbers across sigmas,
        exactly like :class:`~repro.photonics.noise.PhaseNoiseModel` array
        sigmas), composing with the trials and time axes.
    tau_s:
        Correlation time of the walk in seconds.
    seed:
        Seed of the per-device generators (each device draws its own
        deterministic stream, so multi-mesh programs drift independently per
        mesh but reproducibly across runs).
    """

    def __init__(self, sigma: float = 0.05, tau_s: float = 30.0, seed: int = 0):
        super().__init__(seed=seed)
        self.sigma = np.asarray(sigma, dtype=float)
        if np.any(self.sigma < 0):
            raise ValueError("sigma must be non-negative")
        self.tau_s = float(tau_s)
        if self.tau_s <= 0:
            raise ValueError("tau_s must be positive")
        self._state: Dict[Tuple, Dict[str, Any]] = {}

    def params(self) -> Dict[str, Any]:
        sigma = self.sigma.tolist() if self.sigma.ndim else float(self.sigma)
        return {"sigma": sigma, "tau_s": self.tau_s, "seed": self.seed}

    def _reset_state(self) -> None:
        self._state.clear()

    # ------------------------------------------------------------------ #
    # closed-form expectations (validated by tools/check_scenarios.py)
    # ------------------------------------------------------------------ #
    def expected_std(self, t: float) -> np.ndarray:
        """Phase-error standard deviation ``t`` seconds after calibration."""
        return self.sigma * np.sqrt(1.0 - np.exp(-2.0 * np.asarray(t, dtype=float)
                                                 / self.tau_s))

    def expected_autocorrelation(self, dt: float) -> float:
        """Stationary autocorrelation between evaluations ``dt`` apart."""
        return float(np.exp(-float(dt) / self.tau_s))

    # ------------------------------------------------------------------ #
    # offset field
    # ------------------------------------------------------------------ #
    def _offsets_for(self, device: MeshDevice, times: np.ndarray,
                     lead: Tuple[int, ...]) -> np.ndarray:
        scalar_time = times.ndim == 0
        grid = np.atleast_1d(times)
        count = device.shifter_count
        state = self._state.get((device.key, lead))
        if state is None:
            state = {"time": 0.0,
                     "walk": np.zeros(lead + (count,)),
                     "rng": np.random.default_rng((self.seed, device.key))}
            self._state[(device.key, lead)] = state
        walk, rng, now = state["walk"], state["rng"], state["time"]
        if grid[0] < now - 1e-12:
            raise ValueError(
                f"drift walk for this device is already at t={now:.3f}s; "
                f"cannot evaluate t={float(grid[0]):.3f}s (drift only moves "
                "forward -- reset() models a recalibration)")
        # standardized walk (unit stationary variance); sigma scales at the end
        # so array sigmas share common random numbers
        path = np.empty(grid.shape + lead + (count,))
        for index, t in enumerate(grid):
            dt = float(t) - now
            if dt > 0:
                decay = np.exp(-dt / self.tau_s)
                walk = walk * decay + np.sqrt(1.0 - decay * decay) * \
                    rng.standard_normal(size=lead + (count,))
                now = float(t)
            path[index] = walk
        state["walk"], state["time"] = walk, now
        scale = self.sigma.reshape(self.sigma.shape + (1,) * (len(lead) + 1))
        if self.sigma.ndim:
            # insert the sigma axes between the time axis and the trials axes
            path = path.reshape(grid.shape + (1,) * self.sigma.ndim
                                + lead + (count,))
        offsets = scale * path
        return offsets[0] if scalar_time else offsets
