"""Base machinery of hardware-degradation scenarios.

A *scenario* models how a real MZI mesh deviates from its compiled phases --
beyond the i.i.d. Gaussian of :class:`~repro.photonics.noise.PhaseNoiseModel`
-- as an additive offset on every tunable phase shifter.  Scenarios plug
into the exact seam the noise model uses: they expose
``perturb(mesh, trials=None)`` and apply themselves through
:meth:`~repro.photonics.mzi_mesh.MeshDecomposition.with_phases`, so the
vectorized engine, the plan runtime and the native ``cchain`` backend all
execute scenario-degraded programs unchanged
(``program.with_noise(noise=scenario)`` works verbatim).

What the base class adds over the noise model:

* **A clock.**  ``advance(dt)`` moves the scenario's time forward;
  ``perturb`` evaluates the degradation *at the current clock*, so a serving
  worker can replay slow hardware drift by alternating advances and
  requests.  Evaluating twice at the same clock is deterministic (the same
  degraded phases come back), which is what lets a worker rebuild its
  degraded program idempotently.
* **A time axis.**  ``at_times(mesh, times)`` returns one mesh whose phase
  arrays carry a leading time axis -- a whole degradation trajectory
  propagates as a single batched ensemble through the engine, composing
  with the Monte-Carlo ``trials`` axis exactly like sigma sweeps do.
* **Stable device identity.**  Offsets attach to the *device* (the clean
  mesh content), not the mesh object, so frozen fabrication offsets and
  in-progress drift walks survive program rebuilds, and a recalibrated
  (re-nulled) mesh maps back to the same physical device.

Phase offsets are additive (output phases multiply by ``exp(1j * offset)``,
i.e. their angles add), so :class:`CompositeScenario` layers scenarios by
summing their offset fields -- static fabrication error underneath a thermal
drift walk underneath fast correlated crosstalk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.mzi_mesh import MeshDecomposition


@dataclass(frozen=True)
class MeshDevice:
    """Identity and topology of one physical mesh, derived from a clean mesh.

    ``key`` is a content digest of the clean phases and topology: the same
    decomposition (same weights, same method) always maps to the same
    device, across processes and across program rebuilds.  ``columns`` holds
    the optical column of each MZI from the engine's schedule -- the spatial
    coordinate (column, mode) scenarios use for thermal adjacency.
    """

    key: int
    dimension: int
    mzi_count: int
    modes: np.ndarray       # upper mode of each MZI
    columns: np.ndarray     # optical column of each MZI
    depth: int

    @property
    def shifter_count(self) -> int:
        """Flat offset-vector length: thetas, phis, then output phases."""
        return 2 * self.mzi_count + self.dimension


def device_of(mesh: MeshDecomposition) -> MeshDevice:
    """The :class:`MeshDevice` a (clean, unbatched) mesh realizes."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(mesh.method.encode())
    digest.update(np.int64(mesh.dimension).tobytes())
    digest.update(np.ascontiguousarray(mesh.modes).tobytes())
    digest.update(np.ascontiguousarray(mesh.thetas).tobytes())
    digest.update(np.ascontiguousarray(mesh.phis).tobytes())
    digest.update(np.ascontiguousarray(mesh.output_phases).tobytes())
    schedule = mesh.compiled()
    columns = np.zeros(mesh.mzi_count, dtype=np.intp)
    for column, (indices, _tops, _bottoms) in enumerate(schedule.columns):
        columns[indices] = column
    columns.flags.writeable = False
    return MeshDevice(key=int.from_bytes(digest.digest(), "little"),
                      dimension=mesh.dimension, mzi_count=mesh.mzi_count,
                      modes=mesh.modes, columns=columns,
                      depth=schedule.depth)


class HardwareScenario:
    """Base class of registered hardware-degradation scenarios.

    Subclasses implement :meth:`_offsets_for`, producing the flat phase
    offset field (thetas, phis, output-phase angles concatenated) for a
    device at the requested times.  Everything else -- the clock, the
    trials/time batching, the ``with_phases`` application -- is shared.
    """

    #: registry name, set by ``@register_scenario``
    name = "scenario"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._clock = 0.0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> float:
        """Scenario time in seconds since the last (re)calibration."""
        return self._clock

    def advance(self, dt: float) -> float:
        """Move the scenario clock forward by ``dt`` seconds."""
        dt = float(dt)
        if dt < 0:
            raise ValueError("scenario time only moves forward (dt >= 0)")
        self._clock += dt
        return self._clock

    def reset(self) -> None:
        """Back to a freshly calibrated state: clock zero, state cleared."""
        self._clock = 0.0
        self._reset_state()

    def _reset_state(self) -> None:  # pragma: no cover -- default is stateless
        pass

    # ------------------------------------------------------------------ #
    # config round-trip
    # ------------------------------------------------------------------ #
    def params(self) -> Dict[str, Any]:
        """Constructor keyword arguments (subclasses extend)."""
        return {"seed": self.seed}

    def as_config(self) -> Dict[str, Any]:
        """A picklable config dict :func:`build_scenario` reconstructs from."""
        return {"name": self.name, "params": self.params()}

    # ------------------------------------------------------------------ #
    # the PhaseNoiseModel-compatible seam
    # ------------------------------------------------------------------ #
    def perturb(self, mesh: MeshDecomposition, trials: Optional[int] = None,
                device: Optional[MeshDevice] = None) -> MeshDecomposition:
        """A degraded copy of ``mesh`` evaluated at the current clock.

        Drop-in compatible with
        :meth:`~repro.photonics.noise.PhaseNoiseModel.perturb`: with
        ``trials=T`` the returned mesh is trials-batched over ``T``
        independent degradation realizations.  ``device`` overrides the
        device identity (used by :class:`CompositeScenario` so every layer
        keys its state off the clean mesh, not an upstream layer's output).
        """
        lead = self._lead(mesh, trials)
        if device is None:
            device = device_of(mesh)
        offsets = self._offsets_for(device, np.asarray(self._clock, dtype=float),
                                    lead)
        return self._apply(mesh, device, offsets)

    def at_times(self, mesh: MeshDecomposition, times: Sequence[float],
                 trials: Optional[int] = None,
                 device: Optional[MeshDevice] = None) -> MeshDecomposition:
        """A mesh carrying the whole degradation trajectory at once.

        ``times`` (non-decreasing, seconds) becomes the leading axis of the
        returned mesh's trial shape; with ``trials=T`` the axes are
        ``(len(times), T)``.  Propagating the result evaluates every time
        step of the trajectory in one vectorized ensemble pass -- the time
        analogue of a sigma sweep.  Stateful scenarios (the drift walk)
        advance their clock to ``times[-1]``.
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size == 0:
            raise ValueError("times must be a non-empty 1-D array of seconds")
        if np.any(np.diff(times) < 0) or times[0] < 0:
            raise ValueError("times must be non-negative and non-decreasing")
        lead = self._lead(mesh, trials)
        if device is None:
            device = device_of(mesh)
        offsets = self._offsets_for(device, times, lead)
        self._clock = max(self._clock, float(times[-1]))
        return self._apply(mesh, device, offsets)

    # ------------------------------------------------------------------ #
    # shared plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lead(mesh: MeshDecomposition, trials: Optional[int]) -> Tuple[int, ...]:
        if trials is not None and trials <= 0:
            raise ValueError("trials must be positive")
        if trials is not None and mesh.is_batched:
            raise ValueError("mesh already carries a trials axis")
        return () if trials is None else (int(trials),)

    def _apply(self, mesh: MeshDecomposition, device: MeshDevice,
               offsets: np.ndarray) -> MeshDecomposition:
        """Apply a flat offset field through the ``with_phases`` seam."""
        n = device.mzi_count
        theta_off = offsets[..., :n]
        phi_off = offsets[..., n:2 * n]
        output_off = offsets[..., 2 * n:]
        return mesh.with_phases(
            thetas=mesh.thetas + theta_off,
            phis=mesh.phis + phi_off,
            output_phases=mesh.output_phases * np.exp(1j * output_off),
        )

    def _offsets_for(self, device: MeshDevice, times: np.ndarray,
                     lead: Tuple[int, ...]) -> np.ndarray:
        """Flat phase offsets of ``device`` at ``times``.

        ``times`` is 0-D (evaluate at one instant) or 1-D (trajectory).
        Returns ``times.shape + <scenario axes> + lead + (shifter_count,)``
        where ``<scenario axes>`` are any extra sweep axes the scenario
        introduces (e.g. a sigma axis).
        """
        raise NotImplementedError


class ScenarioTrajectory:
    """Adapter putting a whole degradation trajectory on the noise seam.

    Wraps a scenario and a fixed time grid; ``perturb(mesh, trials)``
    delegates to :meth:`HardwareScenario.at_times`, so anything that accepts
    a noise model (``CompiledProgram.with_noise``, the robustness harnesses)
    can evaluate every time step of the trajectory in one batched ensemble.
    """

    def __init__(self, scenario: HardwareScenario, times: Sequence[float]):
        self.scenario = scenario
        self.times = np.asarray(times, dtype=float)

    def perturb(self, mesh: MeshDecomposition,
                trials: Optional[int] = None) -> MeshDecomposition:
        return self.scenario.at_times(mesh, self.times, trials=trials)


class CompositeScenario(HardwareScenario):
    """Several degradation mechanisms applied to the same device at once.

    Phase offsets are additive, so composition sums the members' offset
    fields; every member sees the *clean* device identity, and the composite
    clock drives every member clock.
    """

    name = "composite"

    def __init__(self, scenarios: Sequence[HardwareScenario]):
        super().__init__(seed=0)
        self.scenarios: List[HardwareScenario] = list(scenarios)
        if not self.scenarios:
            raise ValueError("CompositeScenario needs at least one member")

    def advance(self, dt: float) -> float:
        for scenario in self.scenarios:
            scenario.advance(dt)
        return super().advance(dt)

    def reset(self) -> None:
        for scenario in self.scenarios:
            scenario.reset()
        super().reset()

    def params(self) -> Dict[str, Any]:
        return {"scenarios": [scenario.as_config() for scenario in self.scenarios]}

    def as_config(self) -> List[Dict[str, Any]]:
        return [scenario.as_config() for scenario in self.scenarios]

    def _offsets_for(self, device: MeshDevice, times: np.ndarray,
                     lead: Tuple[int, ...]) -> np.ndarray:
        total: Optional[np.ndarray] = None
        for scenario in self.scenarios:
            offsets = scenario._offsets_for(device, times, lead)
            total = offsets if total is None else total + offsets
        return total
