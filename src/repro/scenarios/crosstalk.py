"""Correlated thermal crosstalk between mesh-adjacent phase shifters.

Heaters on a real MZI mesh are not thermally isolated: power dissipated in
one shifter leaks into its spatial neighbors, so phase errors are
*correlated* across the mesh instead of i.i.d.  This scenario models the
leak with a neighbor-coupling construction that stays linear-time in the
number of shifters while having an exact closed-form covariance:

.. math::

    e_i = s_i \\Big( g_i + \\kappa \\sum_{j \\in N(i)} g_j \\Big),
    \\qquad s_i = \\frac{\\sigma}{\\sqrt{1 + \\kappa^2 d_i}},

with ``g`` i.i.d. standard normal, ``N(i)`` the spatial neighbors of
shifter ``i`` and ``d_i = |N(i)|``.  Writing ``A`` for the symmetric
adjacency matrix and ``S = diag(s)``, the error vector is
``e = S (I + kappa A) g``, hence

.. math::

    \\operatorname{Cov}[e] = S (I + \\kappa A)(I + \\kappa A)^T S,

whose diagonal is exactly ``sigma**2`` (the normalization absorbs the
degree) and whose off-diagonal entries are
``s_i s_j (2 kappa A_ij + kappa^2 |N(i) \\cap N(j)|)`` -- neighbors
correlate at first order in ``kappa``, shifters two hops apart at second
order.  :meth:`covariance` materializes the closed form so
``tools/check_scenarios.py`` can pin the sampler against it.

Adjacency follows the mesh geometry the engine compiles: the two shifters
of one MZI (theta and phi) are on the same device and always couple; MZIs
within one optical column and two modes of each other couple; the output
phase shifters couple to their mode neighbors and to the MZIs of the last
column that touch their modes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.photonics.mzi_mesh import MeshDecomposition
from repro.scenarios.base import HardwareScenario, MeshDevice, device_of
from repro.scenarios.registry import register_scenario


def _adjacency_edges(device: MeshDevice) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edge list ``(src, dst)`` of the shifter adjacency (both
    directions present), in the flat (thetas, phis, output) layout."""
    n, dim = device.mzi_count, device.dimension
    edges = []

    def link(a: np.ndarray, b: np.ndarray) -> None:
        if len(a):
            edges.append((np.asarray(a, dtype=np.intp),
                          np.asarray(b, dtype=np.intp)))

    mzis = np.arange(n, dtype=np.intp)
    # theta_k <-> phi_k: the two shifters of one physical MZI
    link(mzis, mzis + n)
    link(mzis + n, mzis)

    if n:
        # neighboring MZIs: |column delta| <= 1 and |mode delta| <= 2.
        # Pair via a (column, mode) occupancy grid -- each (col, mode) slot
        # holds at most one MZI, so neighbor lookup is a constant number of
        # vectorized gathers instead of an n^2 scan.
        grid = np.full((device.depth, dim), -1, dtype=np.intp)
        grid[device.columns, device.modes] = mzis
        for dc in (0, 1):
            for dm in (-2, -1, 0, 1, 2):
                if dc == 0 and dm <= 0:
                    continue  # (0, 0) is self; negatives come from symmetry
                cols, rows = device.columns + dc, device.modes + dm
                ok = (cols < device.depth) & (rows >= 0) & (rows < dim)
                src = mzis[ok]
                dst = grid[cols[ok], rows[ok]]
                src, dst = src[dst >= 0], dst[dst >= 0]
                for a, b in ((src, dst), (dst, src)):
                    link(a, b)          # theta <-> theta
                    link(a + n, b + n)  # phi <-> phi
                    link(a, b + n)      # theta <-> neighbor's phi
                    link(a + n, b)

    # output phase shifters: a chain along the modes...
    out = 2 * n + np.arange(dim, dtype=np.intp)
    link(out[:-1], out[1:])
    link(out[1:], out[:-1])
    if n:
        # ...coupled to last-column MZIs on their modes (upper and lower)
        last = mzis[device.columns == device.depth - 1]
        for mode in (device.modes[last], device.modes[last] + 1):
            for shifter in (last, last + n):
                link(shifter, out[mode])
                link(out[mode], shifter)

    if not edges:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty
    src = np.concatenate([edge[0] for edge in edges])
    dst = np.concatenate([edge[1] for edge in edges])
    return src, dst


@register_scenario("crosstalk")
class CorrelatedCrosstalkScenario(HardwareScenario):
    """Spatially correlated phase noise from thermal crosstalk.

    Parameters
    ----------
    sigma:
        Per-shifter phase-error standard deviation in radians (the
        normalization keeps every marginal at exactly ``sigma`` regardless
        of how many neighbors a shifter has).
    coupling:
        Crosstalk strength ``kappa``: the fraction of a neighbor's thermal
        fluctuation that leaks into each shifter.  ``0`` recovers i.i.d.
        noise.
    seed:
        Seed of the draw stream.  Draws are fresh per evaluation (crosstalk
        fluctuates fast compared to the inference clock), i.i.d. across the
        time and trials axes.
    """

    def __init__(self, sigma: float = 0.02, coupling: float = 0.3,
                 seed: int = 0):
        super().__init__(seed=seed)
        self.sigma = float(sigma)
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.coupling = float(coupling)
        if self.coupling < 0:
            raise ValueError("coupling must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        # device.key -> (src, dst, scale); topology-only, safe to cache
        self._graphs: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def params(self) -> Dict[str, Any]:
        return {"sigma": self.sigma, "coupling": self.coupling,
                "seed": self.seed}

    def _reset_state(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _graph(self, device: MeshDevice) -> Tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
        cached = self._graphs.get(device.key)
        if cached is None:
            src, dst = _adjacency_edges(device)
            degree = np.bincount(dst, minlength=device.shifter_count)
            scale = self.sigma / np.sqrt(1.0 + self.coupling ** 2 * degree)
            cached = (src, dst, scale)
            self._graphs[device.key] = cached
        return cached

    def degrees(self, device: MeshDevice) -> np.ndarray:
        """Neighbor count of every shifter (flat layout)."""
        src, dst, _scale = self._graph(device)
        return np.bincount(dst, minlength=device.shifter_count)

    def covariance(self, mesh_or_device) -> np.ndarray:
        """Closed-form covariance matrix ``S (I + kA)(I + kA)^T S``.

        Materializes a dense ``(shifters, shifters)`` matrix -- intended for
        the small meshes of validation scripts, not production sizes.
        """
        device = (mesh_or_device if isinstance(mesh_or_device, MeshDevice)
                  else device_of(mesh_or_device))
        count = device.shifter_count
        if count > 4096:
            raise ValueError("closed-form covariance is dense; use a mesh "
                             f"with at most 4096 shifters (got {count})")
        src, dst, scale = self._graph(device)
        mix = np.eye(count)
        np.add.at(mix, (dst, src), self.coupling)
        return (scale[:, None] * mix) @ (mix.T * scale[None, :])

    def _offsets_for(self, device: MeshDevice, times: np.ndarray,
                     lead: Tuple[int, ...]) -> np.ndarray:
        src, dst, scale = self._graph(device)
        count = device.shifter_count
        shape = times.shape + lead + (count,)
        g = self._rng.standard_normal(size=shape)
        coupled = g.copy()
        if len(src) and self.coupling:
            # accumulate kappa * g[src] into coupled[dst]; np.add.at needs
            # the indexed axis first, so work transposed over a flat batch
            flat = coupled.reshape(-1, count).T
            np.add.at(flat, dst, self.coupling * g.reshape(-1, count).T[src])
            coupled = flat.T.reshape(shape)
        return scale * coupled
