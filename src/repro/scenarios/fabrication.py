"""Static per-device fabrication offsets.

No two fabricated meshes are identical: directional-coupler splitting
ratios and waveguide lengths vary die to die, which at the phase-shifter
level shows up as a *frozen* offset on every phase -- the same offset every
time that physical device runs, different across devices.

The offsets are a pure function of ``(seed, device.key)``: the same clean
decomposition always maps back to the same frozen error field, across
processes, program rebuilds and scenario instances.  That idempotence is
what ``tools/check_scenarios.py`` pins, and it is what makes the scenario
honest -- re-evaluating a deployed program never re-rolls its fabrication
error, and recalibration (which re-nulls phases, i.e. *compensates* the
offsets rather than removing them) can be modelled by ``reset()`` -- the
clock returns to zero but the frozen field survives, unlike drift state.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.scenarios.base import HardwareScenario, MeshDevice
from repro.scenarios.registry import register_scenario


@register_scenario("fabrication")
class FabricationOffsetScenario(HardwareScenario):
    """Frozen Gaussian phase offsets, one realization per physical device.

    Parameters
    ----------
    sigma:
        Standard deviation of the frozen per-shifter offsets in radians.
    seed:
        Fabrication-lot seed: together with the device key it determines
        the offsets exactly.
    """

    def __init__(self, sigma: float = 0.01, seed: int = 0):
        super().__init__(seed=seed)
        self.sigma = float(sigma)
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._fields: Dict[int, np.ndarray] = {}

    def params(self) -> Dict[str, Any]:
        return {"sigma": self.sigma, "seed": self.seed}

    def _reset_state(self) -> None:
        # fabrication error is permanent: reset() clears nothing
        pass

    def field(self, device: MeshDevice) -> np.ndarray:
        """The frozen offset vector of ``device`` (flat layout)."""
        offsets = self._fields.get(device.key)
        if offsets is None:
            rng = np.random.default_rng((self.seed, device.key))
            offsets = self.sigma * rng.standard_normal(device.shifter_count)
            offsets.flags.writeable = False
            self._fields[device.key] = offsets
        return offsets

    def _offsets_for(self, device: MeshDevice, times: np.ndarray,
                     lead: Tuple[int, ...]) -> np.ndarray:
        offsets = self.field(device)
        return np.broadcast_to(offsets,
                               times.shape + lead + (device.shifter_count,))
