"""Hardware-degradation scenarios: realistic mesh error models over time.

The package extends the i.i.d. Gaussian of ``photonics/noise.py`` with the
ways real MZI meshes actually fail -- correlated thermal crosstalk, slow
phase drift, frozen fabrication offsets -- behind a config-driven registry,
all applied through the same ``perturb``/``with_phases`` seam the noise
model uses, so every engine backend runs degraded programs unchanged.

>>> from repro.scenarios import build_scenario
>>> scenario = build_scenario({"name": "thermal_drift",
...                            "params": {"sigma": 0.05, "tau_s": 30.0}})
>>> scenario.advance(10.0)
>>> degraded = program.with_noise(noise=scenario)      # doctest: +SKIP
"""

from repro.scenarios.base import (CompositeScenario, HardwareScenario,
                                  MeshDevice, ScenarioTrajectory, device_of)
from repro.scenarios.crosstalk import CorrelatedCrosstalkScenario
from repro.scenarios.drift import ThermalDriftScenario
from repro.scenarios.fabrication import FabricationOffsetScenario
from repro.scenarios.registry import (build_scenario, list_scenarios,
                                      register_scenario, scenario_class,
                                      scenario_descriptions)

__all__ = [
    "CompositeScenario",
    "CorrelatedCrosstalkScenario",
    "FabricationOffsetScenario",
    "HardwareScenario",
    "MeshDevice",
    "ScenarioTrajectory",
    "ThermalDriftScenario",
    "build_scenario",
    "device_of",
    "list_scenarios",
    "register_scenario",
    "scenario_class",
    "scenario_descriptions",
]
