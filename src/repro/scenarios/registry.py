"""Config-driven registry of hardware-degradation scenarios.

Scenarios register themselves by name with :func:`register_scenario`; a
serving process (or a check script, or a benchmark) then rebuilds one from a
plain-dict config with :func:`build_scenario` -- the config is what crosses a
pickle into spawned workers, never a live scenario object (scenarios carry
random generators and per-device state that do not belong on a pickle).

Config format::

    {"name": "thermal_drift", "params": {"sigma": 0.05, "tau_s": 30.0}}

A *list* of configs builds a :class:`~repro.scenarios.base.CompositeScenario`
applying each member in order (e.g. frozen fabrication offsets underneath a
thermal drift walk).  An already-built scenario instance passes through
unchanged, so every entry point accepts either form.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Type

_REGISTRY: Dict[str, Type] = {}


def register_scenario(name: str) -> Callable[[Type], Type]:
    """Class decorator registering a scenario under ``name``.

    The class gains a ``name`` attribute; re-registering a name is an error
    (scenarios are looked up by config strings, so silent replacement would
    change what a stored config means).
    """

    def decorator(cls: Type) -> Type:
        key = str(name)
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise ValueError(f"scenario name {key!r} is already registered "
                             f"to {existing.__name__}")
        cls.name = key
        _REGISTRY[key] = cls
        return cls

    return decorator


def scenario_class(name: str) -> Type:
    """The registered class for ``name`` (raises ``KeyError`` with choices)."""
    try:
        return _REGISTRY[str(name)]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: "
                       f"{sorted(_REGISTRY)}") from None


def list_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_descriptions() -> Dict[str, str]:
    """Name -> first docstring line of every registered scenario."""
    return {name: (cls.__doc__ or "").strip().splitlines()[0]
            for name, cls in sorted(_REGISTRY.items())}


def build_scenario(config: Any) -> Any:
    """Construct a scenario from a config dict, list of configs, or instance.

    * ``{"name": ..., "params": {...}}`` -- one registered scenario, built
      with ``params`` as keyword arguments (``params`` optional).
    * ``[config, config, ...]`` -- a composite applying each member in order.
    * an object with a ``perturb`` method -- passed through unchanged.
    """
    if hasattr(config, "perturb"):
        return config
    if isinstance(config, (list, tuple)):
        from repro.scenarios.base import CompositeScenario

        return CompositeScenario([build_scenario(entry) for entry in config])
    if not isinstance(config, dict):
        raise TypeError("scenario config must be a dict, a list of dicts, or "
                        f"a scenario instance, got {type(config).__name__}")
    unknown = set(config) - {"name", "params"}
    if unknown:
        raise ValueError(f"unknown scenario config keys {sorted(unknown)}; "
                         "expected {'name', 'params'}")
    if "name" not in config:
        raise ValueError("scenario config needs a 'name' key")
    cls = scenario_class(config["name"])
    params = config.get("params") or {}
    if not isinstance(params, dict):
        raise TypeError("scenario 'params' must be a dict of keyword arguments")
    return cls(**params)
