"""Dynamic micro-batching of concurrent inference requests.

The plan runtime is fastest when it sees large batches, but serving traffic
arrives as many small independent requests.  :class:`DynamicBatcher` sits in
between: callers submit ``classify`` / ``logits`` requests from any thread
and get a :class:`~concurrent.futures.Future`; a single executor thread
coalesces queued requests into one batched forward pass and scatters the
result rows back to each caller.

The flush policy is the classic max-batch / max-latency pair:

* a flush happens as soon as the queued requests cover ``max_batch`` samples
  (a *full* flush), and
* otherwise when the oldest queued request has waited ``max_latency_s`` (a
  *timeout* flush), bounding the latency a lonely request can be charged for
  the batching win.

Requests are never split: a flush drains whole requests until the sample
budget is reached (always at least one request, so an oversized request
still runs -- alone).  Executing on a single thread also keeps the plan's
reused buffers uncontended.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

import numpy as np

REQUEST_KINDS = ("logits", "classify")


@dataclass
class BatcherStats:
    """Counters describing how well the batching policy is working."""

    requests: int = 0
    samples: int = 0
    batches: int = 0
    full_flushes: int = 0
    timeout_flushes: int = 0
    max_batch_samples: int = 0

    @property
    def mean_batch_samples(self) -> float:
        return self.samples / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {"requests": self.requests, "samples": self.samples,
                "batches": self.batches, "full_flushes": self.full_flushes,
                "timeout_flushes": self.timeout_flushes,
                "max_batch_samples": self.max_batch_samples,
                "mean_batch_samples": self.mean_batch_samples}


@dataclass
class _Request:
    images: np.ndarray
    kind: str
    future: Future
    squeeze: bool
    arrival: float = field(default_factory=time.monotonic)

    @property
    def samples(self) -> int:
        return self.images.shape[0]


class DynamicBatcher:
    """Queue concurrent requests and flush them as one batched forward.

    Parameters
    ----------
    program:
        A :class:`~repro.core.compile.CompiledProgram` (anything with
        ``predict_logits(images, scheme)``).  Its execution plan is warmed at
        construction so the first request does not pay plan compilation.
    scheme:
        The assignment scheme every request's images go through.
    max_batch:
        Sample budget of one flush.
    max_latency_s:
        Longest a queued request may wait for co-batching before a timeout
        flush runs it anyway.
    """

    def __init__(self, program: Any, scheme: Any, max_batch: int = 64,
                 max_latency_s: float = 0.002, name: str = "batcher"):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_latency_s < 0:
            raise ValueError("max_latency_s must be non-negative")
        self.program = program
        self.scheme = scheme
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self.name = name
        self._stats = BatcherStats()
        plan = getattr(program, "plan", None)
        if callable(plan):
            plan()
        self._queue: Deque[_Request] = deque()
        self._queued_samples = 0
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(target=self._serve_loop,
                                        name=f"{name}-worker", daemon=True)
        self._worker.start()

    @property
    def stats(self) -> BatcherStats:
        """An atomic snapshot of the flush counters.

        The executor thread mutates the counters under ``self._lock``; the
        copy taken here means readers (benchmark JSON writers, the service
        stats endpoint) never observe a torn multi-field update.
        """
        with self._lock:
            return dataclasses.replace(self._stats)

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def submit(self, images: np.ndarray, kind: str = "logits") -> Future:
        """Enqueue a request; the future resolves to logits or class ids.

        ``images`` may be one batch ``(batch, channels, height, width)`` or a
        single sample ``(channels, height, width)``; single samples come back
        without the batch axis.
        """
        if kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {kind!r}; choose from {REQUEST_KINDS}")
        images = np.asarray(images)
        squeeze = images.ndim == 3
        if squeeze:
            images = images[None]
        if images.ndim != 4:
            raise ValueError("submit expects (batch, channels, height, width) "
                             "images or one (channels, height, width) sample")
        if images.shape[0] == 0:
            raise ValueError("zero-sample request: images.shape[0] must be >= 1 "
                             "(an empty request would occupy a flush for nothing)")
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(f"batcher {self.name!r} is closed")
            self._queue.append(_Request(images=images, kind=kind, future=future,
                                        squeeze=squeeze))
            self._queued_samples += images.shape[0]
            self._wakeup.notify_all()
        return future

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Blocking convenience wrapper: submit and wait for logits."""
        return self.submit(images, kind="logits").result()

    def classify(self, images: np.ndarray) -> np.ndarray:
        """Blocking convenience wrapper: submit and wait for class ids."""
        return self.submit(images, kind="classify").result()

    # ------------------------------------------------------------------ #
    # executor side
    # ------------------------------------------------------------------ #
    def _drain(self) -> List[_Request]:
        """Pop whole requests until the sample budget is reached (at least one)."""
        batch: List[_Request] = []
        samples = 0
        while self._queue and (not batch
                               or samples + self._queue[0].samples <= self.max_batch):
            request = self._queue.popleft()
            self._queued_samples -= request.samples
            batch.append(request)
            samples += request.samples
        return batch

    def _serve_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if not self._queue:
                    return                      # closed and drained
                deadline = self._queue[0].arrival + self.max_latency_s
                while (self._queued_samples < self.max_batch and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                full = self._queued_samples >= self.max_batch
                batch = self._drain()
            self._execute(batch, full)

    def _execute(self, batch: List[_Request], full: bool) -> None:
        # claim every future first: a claimed future can no longer be
        # cancelled by the caller, so the set_result/set_exception calls
        # below cannot raise InvalidStateError and kill the worker
        batch = [request for request in batch
                 if request.future.set_running_or_notify_cancel()]
        if not batch:
            return
        try:
            images = (batch[0].images if len(batch) == 1
                      else np.concatenate([request.images for request in batch],
                                          axis=0))
            logits = self.program.predict_logits(images, self.scheme)
        except BaseException as error:  # noqa: BLE001 -- relayed to every caller
            for request in batch:
                request.future.set_exception(error)
            return
        with self._lock:
            stats = self._stats
            stats.requests += len(batch)
            stats.samples += images.shape[0]
            stats.batches += 1
            stats.max_batch_samples = max(stats.max_batch_samples,
                                          images.shape[0])
            if full:
                stats.full_flushes += 1
            else:
                stats.timeout_flushes += 1
        # scatter rows back; the batch axis is -2 of the logits (noise-trials
        # axes, if the program carries them, stay in front)
        predictions = logits.argmax(axis=-1)
        start = 0
        for request in batch:
            stop = start + request.samples
            if request.kind == "logits":
                result = logits[..., start:stop, :]
                result = result[..., 0, :] if request.squeeze else result
            else:
                result = predictions[..., start:stop]
                result = result[..., 0] if request.squeeze else result
            request.future.set_result(np.array(result))
            start = stop

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests, flush the queue and join the executor.

        Returns whether the executor thread actually joined within
        ``timeout`` (always ``True`` for the default unbounded join); a
        ``False`` means queued work may still be draining.
        """
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join(timeout=timeout)
        return not self._worker.is_alive()

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
