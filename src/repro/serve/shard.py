"""Multi-process sharded inference: worker pools, admission control, routing.

:class:`ShardedInferenceService` lifts the in-process
:class:`~repro.serve.service.PhotonicInferenceService` across process
boundaries so request throughput scales with cores instead of stopping at
one plan-executor thread per model:

* **Per-model worker pools.**  Each deployed model gets ``replicas``
  spawn-started worker processes (:mod:`repro.serve.worker`); every worker
  rebuilds the compiled program from a pickled :class:`WorkerSpec` and warms
  its own :class:`~repro.serve.cache.ProgramCache`, so no live program (or
  its plan buffers) ever crosses a pickle.
* **Shared-memory batch transport.**  Batches cross via a leased slab from a
  preallocated :class:`~repro.serve.shm.SlabRing` -- zero tensor pickling on
  the hot path; slabs are recycled after each flush and unlinked at
  shutdown.
* **Flush policy per worker.**  Each replica is fronted by its own
  :class:`~repro.serve.batcher.DynamicBatcher` whose "program" is a
  :class:`_WorkerProxy` -- the exact max-batch / max-latency coalescing of
  the in-process service, with the flushed batch executing in the worker.
* **Admission control.**  A lane bounds its queued-but-unresolved samples;
  :meth:`submit` fast-fails with :class:`ServiceOverloadedError` once the
  bound is hit, giving callers backpressure instead of unbounded latency.
* **Replica routing.**  Requests go to the replica with the least
  outstanding samples (round-robin tie-break), so N replicas of a hot model
  absorb a dominant traffic share evenly.
* **Drain-then-swap redeploys.**  Re-deploying a served key builds the new
  lane first, swaps it in, then drains and dismantles the old one -- queued
  futures on the old lane still resolve.
* **Bounded worker auto-restart.**  A replica whose process dies mid-request
  fails the in-flight flush's futures with the child's error, then respawns
  within the lane's restart budget (``max_worker_restarts``); requests
  submitted after the respawn are served by the fresh process.  A lane out
  of budget keeps serving from its surviving replicas.

The in-process service remains the always-available reference path; the
test-suite pins sharded logits against it to 1e-10.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import queue as queue_module
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compile import CompileOptions, HardwareTarget
from repro.serve.batcher import DynamicBatcher
from repro.serve.shm import SlabRing
from repro.serve.worker import WorkerSpec, worker_main


logger = logging.getLogger("repro.serve.shard")


class ServiceOverloadedError(RuntimeError):
    """A lane's admission bound is full; the request was fast-failed."""


class WorkerError(RuntimeError):
    """A worker process failed; carries the child's traceback text."""


class WorkerTimeoutError(WorkerError):
    """A worker blew its per-request deadline; the process was killed.

    A hung-but-alive worker (deadlocked BLAS, a wedged syscall) used to
    block its lane forever -- ``wait_response`` polled liveness but a live
    zombie never trips it.  The deadline kills the process, so the failure
    takes the same path as a crash: the flush's futures fail with this
    error and the lane's bounded respawn budget decides whether the slot
    comes back.
    """


def _scheme_name(scheme: Any) -> str:
    """Registry name of a scheme given either the name or a scheme object."""
    if isinstance(scheme, str):
        return scheme
    name = getattr(scheme, "name", None)
    if isinstance(name, str):
        return name
    raise TypeError("scheme must be a registry name or an AssignmentScheme "
                    f"with a .name, got {scheme!r}")


class _Replica:
    """One worker process plus its control queues and routing counter."""

    def __init__(self, name: str, context, spec: WorkerSpec):
        self.name = name
        self._context = context
        self._spec = spec
        self.ready: dict = {}
        self.outstanding = 0            # samples routed here, not yet resolved
        self.batcher: Optional[DynamicBatcher] = None
        self.restarts = 0               # times this slot respawned its process
        self.scenario_time: Optional[float] = None  # last reported chaos clock
        self._spawn()

    def _spawn(self) -> None:
        """Fresh process + control queues for this replica slot (not started)."""
        self.requests = self._context.Queue()
        self.responses = self._context.Queue()
        self.process = self._context.Process(
            target=worker_main,
            args=(self._spec, self.requests, self.responses),
            name=f"repro-{self.name}", daemon=True)

    def respawn(self, timeout: float) -> dict:
        """Replace a dead worker with a freshly spawned, ready process.

        Builds new control queues too (the dead process may have left stale
        or half-fed messages on the old ones), so the next flush through
        this slot talks to a clean replica.  Raises :class:`WorkerError`
        when the replacement fails to become ready.
        """
        self.process.join(timeout=0.1)      # reap the corpse, never blocks long
        self.restarts += 1
        self._spawn()
        self.process.start()
        return self.wait_ready(timeout)

    def wait_ready(self, timeout: float) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            try:
                message = self.responses.get(timeout=min(1.0, timeout))
            except queue_module.Empty:
                if not self.process.is_alive():
                    raise WorkerError(f"worker {self.name} died during startup "
                                      f"(exit code {self.process.exitcode})") from None
                if time.monotonic() > deadline:
                    raise WorkerError(f"worker {self.name} did not become ready "
                                      f"within {timeout}s") from None
                continue
            if message[0] == "ready":
                self.ready = message[1]
                return self.ready
            if message[0] == "failed":
                raise WorkerError(f"worker {self.name} failed to start:\n{message[1]}")

    def wait_response(self, request_id: int, timeout_s: Optional[float] = None,
                      poll_s: float = 1.0) -> Tuple:
        """The ("ok"/"err", id, payload) message for ``request_id``.

        Only one request is in flight per replica (its batcher executes
        flushes one at a time), so matching is a liveness-checked poll, not
        a correlation table.  ``timeout_s`` is the per-request deadline: a
        worker that is still alive but has not answered by then is *killed*
        (a hung process would otherwise block this lane slot forever) and
        the wait raises :class:`WorkerTimeoutError`, which the caller turns
        into failed futures plus a budgeted respawn like any other death.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            wait = poll_s
            if deadline is not None:
                wait = min(wait, max(deadline - time.monotonic(), 0.01))
            try:
                message = self.responses.get(timeout=wait)
            except queue_module.Empty:
                if not self.process.is_alive():
                    raise WorkerError(
                        f"worker {self.name} died mid-request "
                        f"(exit code {self.process.exitcode})") from None
                if deadline is not None and time.monotonic() >= deadline:
                    logger.error("worker %s blew the %.1fs request deadline; "
                                 "killing the hung process", self.name, timeout_s)
                    self.process.kill()
                    self.process.join(timeout=5.0)
                    raise WorkerTimeoutError(
                        f"worker {self.name} did not answer within "
                        f"{timeout_s}s; process killed") from None
                continue
            if message[0] in ("ok", "err") and message[1] == request_id:
                return message
            # anything else (a stale "stopped", a response to a request whose
            # caller already errored out) is dropped

    def stop(self, timeout: float) -> bool:
        """Ask the worker to exit; returns whether it actually stopped."""
        if not self.process.is_alive():
            return True
        try:
            self.requests.put(("stop",))
        except (OSError, ValueError):  # pragma: no cover -- queue already torn down
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        return not self.process.is_alive()


class _WorkerProxy:
    """Duck-types ``predict_logits`` so a DynamicBatcher can front a worker.

    A flush becomes: lease a slab, write the batch into shared memory, ship
    the control tuple, wait for the worker's completion message, copy the
    logits out, recycle the slab.
    """

    def __init__(self, replica: _Replica, ring: SlabRing,
                 lease_timeout_s: float = 60.0, on_death=None,
                 request_timeout_s: Optional[float] = None):
        self._replica = replica
        self._ring = ring
        self._lease_timeout_s = lease_timeout_s
        self._on_death = on_death       # lane callback: maybe respawn the slot
        self._request_timeout_s = request_timeout_s
        self._request_id = 0

    def predict_logits(self, images: np.ndarray, scheme: Any = None) -> np.ndarray:
        slab = self._ring.lease(timeout=self._lease_timeout_s)
        try:
            shape = slab.write_input(images)
            self._request_id += 1
            self._replica.requests.put(("run", self._request_id, slab.name,
                                        slab.input_elements, slab.output_elements,
                                        shape))
            message = self._replica.wait_response(
                self._request_id, timeout_s=self._request_timeout_s)
            if message[0] == "err":
                raise WorkerError(f"worker {self._replica.name} failed a batch:\n"
                                  f"{message[2]}")
            if len(message) > 3:        # chaos mode: the worker's scenario clock
                self._replica.scenario_time = message[3]
            return np.array(slab.output_view(message[2]))
        except WorkerError:
            # the in-flight flush's futures still fail with the child's
            # traceback / exit code; a *dead* process (not a per-batch "err")
            # additionally triggers the lane's bounded respawn so the slot
            # keeps serving later requests
            if self._on_death is not None and not self._replica.process.is_alive():
                self._on_death(self._replica)
            raise
        finally:
            self._ring.release(slab)


class _ModelLane:
    """One deployed model: replicas, slab ring, admission + routing state."""

    def __init__(self, model_key: str, replicas: List[_Replica], ring: SlabRing,
                 max_batch: int, max_queue_samples: int,
                 max_restarts: int = 2, start_timeout_s: float = 120.0):
        self.model_key = model_key
        self.replicas = replicas
        self.ring = ring
        self.max_batch = max_batch
        self.max_queue_samples = max_queue_samples
        self.max_restarts = max_restarts        # respawn budget, lane-wide
        self.start_timeout_s = start_timeout_s
        self.restarts_used = 0
        self.pending_samples = 0        # admitted, future not yet resolved
        self.rejected = 0               # fast-failed by admission control
        self._route_counter = 0
        self._lock = threading.Lock()
        self._closing = False
        # observability hooks: deploy() records its own arguments here so the
        # service can rebuild this lane verbatim (redeploy/recalibration); a
        # RecalibrationManager installs `logit_monitor` (called with every
        # successfully resolved logits array) and publishes `drift_status`
        self.deploy_args: Optional[dict] = None
        self.logit_monitor = None
        self.drift_status: Optional[dict] = None

    def _handle_worker_death(self, replica: _Replica) -> None:
        """Respawn a crashed replica's process within the lane's budget.

        Runs on the dead replica's own batcher thread (the only thread that
        talks to that process), after the failing flush's futures have been
        charged with the child's error.  Exceeding the budget -- or a
        respawn that itself fails to become ready -- leaves the slot dead:
        later flushes routed there keep fast-failing with
        :class:`WorkerError`, and routing keeps preferring live replicas
        because dead slots accumulate no resolved work.
        """
        with self._lock:
            if self._closing or self.restarts_used >= self.max_restarts:
                return
            self.restarts_used += 1
        logger.warning("worker %s died (exit code %s); respawning "
                       "(%d/%d lane restarts used)", replica.name,
                       replica.process.exitcode, self.restarts_used,
                       self.max_restarts)
        try:
            replica.respawn(self.start_timeout_s)
        except Exception:  # noqa: BLE001 -- slot stays dead, lane keeps serving
            logger.exception("respawn of worker %s failed; slot stays down",
                             replica.name)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(self, images: np.ndarray, kind: str = "logits") -> Future:
        images = np.asarray(images)
        if images.ndim == 3:
            samples = 1
        elif images.ndim == 4:
            samples = images.shape[0]
        else:
            raise ValueError("submit expects (batch, channels, height, width) "
                             "images or one (channels, height, width) sample")
        if samples == 0:
            raise ValueError("zero-sample request: images.shape[0] must be >= 1")
        if samples > self.max_batch:
            raise ValueError(f"request of {samples} samples exceeds the lane's "
                             f"slab capacity (max_batch={self.max_batch}); "
                             "split the request or deploy with a larger max_batch")
        with self._lock:
            if self.pending_samples + samples > self.max_queue_samples:
                self.rejected += 1
                raise ServiceOverloadedError(
                    f"model {self.model_key!r} is overloaded: "
                    f"{self.pending_samples} samples pending against a bound of "
                    f"{self.max_queue_samples}; retry with backoff")
            self.pending_samples += samples
            replica = self._route_locked()
            replica.outstanding += samples
        try:
            future = replica.batcher.submit(images, kind=kind)
        except BaseException:
            with self._lock:
                self.pending_samples -= samples
                replica.outstanding -= samples
            raise
        future.add_done_callback(
            lambda f: self._resolve(replica, samples, f, kind))
        return future

    def _route_locked(self) -> _Replica:
        """Least-outstanding-samples replica, round-robin on ties."""
        count = len(self.replicas)
        offset = self._route_counter % count
        self._route_counter += 1
        best = None
        for step in range(count):
            replica = self.replicas[(offset + step) % count]
            if best is None or replica.outstanding < best.outstanding:
                best = replica
        return best

    def _resolve(self, replica: _Replica, samples: int,
                 future: Optional[Future] = None, kind: str = "logits") -> None:
        with self._lock:
            self.pending_samples -= samples
            replica.outstanding -= samples
            monitor = self.logit_monitor
        if (monitor is None or kind != "logits" or future is None
                or future.cancelled() or future.exception() is not None):
            return
        try:
            monitor(future.result())
        except Exception:  # noqa: BLE001 -- observability never fails serving
            logger.exception("logit monitor of lane %r raised", self.model_key)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            pending, rejected = self.pending_samples, self.rejected
            per_replica = {replica.name: {"outstanding": replica.outstanding,
                                          "pid": replica.ready.get("pid"),
                                          "alive": replica.process.is_alive(),
                                          "restarts": replica.restarts,
                                          "decompositions":
                                              replica.ready.get("decompositions"),
                                          "store": replica.ready.get("store"),
                                          "native_backend":
                                              replica.ready.get("native_backend"),
                                          "scenario": replica.ready.get("scenario"),
                                          "scenario_time": replica.scenario_time
                                              if replica.scenario_time is not None
                                              else replica.ready.get("scenario_time"),
                                          **replica.batcher.stats.as_dict()}
                           for replica in self.replicas}
            restarts_used = self.restarts_used
            drift = self.drift_status
        return {"replicas": per_replica, "pending_samples": pending,
                "rejected": rejected, "max_queue_samples": self.max_queue_samples,
                "restarts_used": restarts_used, "max_restarts": self.max_restarts,
                "drift": drift, "slabs": self.ring.names}

    def close(self, timeout: float = 30.0) -> bool:
        """Drain batchers, stop workers, unlink slabs; True if all stopped."""
        with self._lock:
            self._closing = True        # no respawns race the teardown
        joined = [replica.batcher.close(timeout=timeout)
                  for replica in self.replicas if replica.batcher is not None]
        stopped = [replica.stop(timeout) for replica in self.replicas]
        self.ring.close_and_unlink()
        return all(joined) and all(stopped)


class ShardedInferenceService:
    """Serve compiled photonic programs from a pool of worker processes.

    Parameters
    ----------
    workers:
        Default replica count per deployed model (overridable per
        :meth:`deploy` via ``replicas=``).
    max_batch, max_latency_s:
        Default flush policy of every replica's batcher; ``max_batch`` also
        sizes the shared-memory slabs, so it bounds the largest single
        request a lane accepts.
    max_queue_samples:
        Default admission bound per lane (samples admitted but unresolved);
        ``None`` means ``8 * max_batch`` per replica.
    start_timeout_s:
        How long a worker may take to import, compile and report ready.
    context:
        Multiprocessing start method; ``"spawn"`` (the default) is the only
        one the workers are audited for.
    store_path:
        Optional path of an ahead-of-time compilation artifact store
        (:mod:`repro.store`).  Every spawned worker opens it: warm entries
        turn replica cold-start into a memory-mapped lookup, and all
        replicas on the host share one physical copy of the mapped dense
        matrices through the page cache.
    max_worker_restarts:
        How many crashed replica processes each lane may respawn over its
        lifetime; ``0`` disables auto-restart (dead slots just keep failing
        the requests routed to them).
    request_timeout_s:
        Per-request deadline on the worker round-trip.  A replica that has
        not answered a flush by then is treated as hung: its process is
        killed, the flush's futures fail with :class:`WorkerTimeoutError`,
        and the lane's restart budget decides whether the slot respawns.
        ``None`` disables the deadline (pre-PR-10 behavior).
    store_prune_max_entries, store_prune_max_age_s:
        Automatic artifact-store housekeeping: when either is set (and
        ``store_path`` is), every deploy/redeploy follows up with
        ``ArtifactStore.prune`` so a long-running service keeps the store
        bounded by entry count / entry age without an operator cron job.
    """

    def __init__(self, workers: int = 2, max_batch: int = 64,
                 max_latency_s: float = 0.002,
                 max_queue_samples: Optional[int] = None,
                 start_timeout_s: float = 120.0, context: str = "spawn",
                 store_path: Optional[str] = None,
                 max_worker_restarts: int = 2,
                 request_timeout_s: Optional[float] = 120.0,
                 store_prune_max_entries: Optional[int] = None,
                 store_prune_max_age_s: Optional[float] = None):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        self.workers = int(workers)
        self.max_worker_restarts = int(max_worker_restarts)
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self.max_queue_samples = max_queue_samples
        self.start_timeout_s = float(start_timeout_s)
        self.store_path = None if store_path is None else str(store_path)
        self.request_timeout_s = (None if request_timeout_s is None
                                  else float(request_timeout_s))
        self.store_prune_max_entries = store_prune_max_entries
        self.store_prune_max_age_s = store_prune_max_age_s
        self._context = multiprocessing.get_context(context)
        self._lanes: Dict[str, _ModelLane] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #
    def deploy(self, model_key: str, model: Any, scheme: Any,
               image_shape: Sequence[int], replicas: Optional[int] = None,
               target: Optional[HardwareTarget] = None,
               options: Optional[CompileOptions] = None,
               max_batch: Optional[int] = None,
               max_latency_s: Optional[float] = None,
               max_queue_samples: Optional[int] = None,
               scenario: Optional[Any] = None) -> dict:
        """Open a sharded request lane for ``model_key``.

        Spawns ``replicas`` workers (each compiling its own copy of the
        pickled model spec), sizes the slab ring off ``max_batch`` samples of
        ``image_shape`` in and the widest replica's logit geometry out, and
        fronts every replica with a :class:`DynamicBatcher`.  Re-deploying a
        served key is a drain-then-swap: traffic switches to the new lane,
        then the old lane's queue drains and its workers and slabs go away.
        ``scenario`` (a ``repro.scenarios`` config or instance) puts the lane
        in hardware-degradation chaos mode: every replica serves through the
        scenario, and a :class:`~repro.serve.drift.DriftInjector` can advance
        its clock.  Returns a summary dict (``replicas``, ``num_classes``,
        ``pids``).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
        if scenario is not None and hasattr(scenario, "as_config"):
            # workers rebuild scenarios from configs; live objects (RNGs,
            # per-device state) stay frontend-side
            scenario = scenario.as_config()
        deploy_args = {"model_key": model_key, "model": model, "scheme": scheme,
                       "image_shape": tuple(int(s) for s in image_shape),
                       "replicas": replicas, "target": target,
                       "options": options, "max_batch": max_batch,
                       "max_latency_s": max_latency_s,
                       "max_queue_samples": max_queue_samples,
                       "scenario": scenario}
        lane = self._build_lane(
            model_key, model, scheme, tuple(int(s) for s in image_shape),
            self.workers if replicas is None else int(replicas),
            target, options,
            self.max_batch if max_batch is None else int(max_batch),
            self.max_latency_s if max_latency_s is None else float(max_latency_s),
            max_queue_samples, scenario)
        lane.deploy_args = deploy_args
        with self._lock:
            if self._closed:
                closed = True
            else:
                closed = False
                previous = self._lanes.get(model_key)
                self._lanes[model_key] = lane
        if closed:
            lane.close()
            raise RuntimeError("service is closed")
        if previous is not None:
            previous.close()
        self._prune_store()
        return {"model_key": model_key, "replicas": len(lane.replicas),
                "num_classes": lane.replicas[0].ready.get("num_classes"),
                "pids": [replica.ready.get("pid") for replica in lane.replicas],
                "decompositions": [replica.ready.get("decompositions")
                                   for replica in lane.replicas],
                "slabs": lane.ring.names}

    def _build_lane(self, model_key: str, model: Any, scheme: Any,
                    image_shape: Tuple[int, ...], replicas: int,
                    target, options, max_batch: int, max_latency_s: float,
                    max_queue_samples: Optional[int],
                    scenario: Optional[Any] = None) -> _ModelLane:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        scheme_name = _scheme_name(scheme)
        spec = WorkerSpec(model_key=model_key, model=model, scheme=scheme_name,
                          image_shape=image_shape, target=target, options=options,
                          store_path=self.store_path, scenario=scenario)
        pool = [_Replica(f"{model_key}:r{index}", self._context, spec)
                for index in range(replicas)]
        try:
            for replica in pool:            # start all first: parallel warm-up
                replica.process.start()
            for replica in pool:
                replica.wait_ready(self.start_timeout_s)
            elements_per_sample = max(replica.ready["elements_per_sample"]
                                      for replica in pool)
            samples_per_image = int(np.prod(image_shape, dtype=np.int64))
            ring = SlabRing(slots=replicas,
                            input_elements=max_batch * samples_per_image,
                            output_elements=max_batch * elements_per_sample)
        except BaseException:
            for replica in pool:
                replica.stop(timeout=5.0)
            raise
        if max_queue_samples is None:
            max_queue_samples = self.max_queue_samples
        if max_queue_samples is None:
            max_queue_samples = 8 * max_batch * replicas
        lane = _ModelLane(model_key, pool, ring, max_batch=max_batch,
                          max_queue_samples=int(max_queue_samples),
                          max_restarts=self.max_worker_restarts,
                          start_timeout_s=self.start_timeout_s)
        for replica in pool:
            replica.batcher = DynamicBatcher(
                _WorkerProxy(replica, ring,
                             on_death=lane._handle_worker_death,
                             request_timeout_s=self.request_timeout_s),
                scheme=None, max_batch=max_batch,
                max_latency_s=max_latency_s, name=f"shard:{replica.name}")
        return lane

    def redeploy(self, model_key: str, **overrides) -> dict:
        """Rebuild a served lane from its own recorded deploy arguments.

        The drain-then-swap core of online recalibration: the replacement
        lane's workers recompile from the clean model spec (store-aware, so
        warm hosts skip the decomposition), traffic switches atomically,
        and the old lane drains before its processes go away -- requests
        submitted at any point complete on whichever lane they entered.
        Keyword ``overrides`` replace individual recorded arguments (e.g.
        ``scenario=None`` to redeploy without chaos mode).
        """
        lane = self.lane(model_key)
        if lane.deploy_args is None:
            raise RuntimeError(f"lane {model_key!r} has no recorded deploy "
                               "arguments; redeploy() needs a lane deployed "
                               "through deploy()")
        args = dict(lane.deploy_args)
        args.update(overrides)
        return self.deploy(**args)

    def _prune_store(self) -> Optional[dict]:
        """Apply the configured prune policy to the artifact store, if any."""
        if self.store_path is None or (self.store_prune_max_entries is None
                                       and self.store_prune_max_age_s is None):
            return None
        from repro.store import ArtifactStore

        try:
            report = ArtifactStore(self.store_path).prune(
                max_entries=self.store_prune_max_entries,
                max_age=self.store_prune_max_age_s)
        except Exception:  # noqa: BLE001 -- housekeeping never fails a deploy
            logger.exception("artifact-store prune of %s failed", self.store_path)
            return None
        if report.get("removed_entries") or report.get("removed_quarantined"):
            logger.info("pruned artifact store %s: %s", self.store_path, report)
        return report

    def lane(self, model_key: str) -> _ModelLane:
        with self._lock:
            lane = self._lanes.get(model_key)
        if lane is None:
            raise KeyError(f"model {model_key!r} is not deployed; call deploy() first")
        return lane

    # ------------------------------------------------------------------ #
    # request side
    # ------------------------------------------------------------------ #
    def submit(self, model_key: str, images: np.ndarray,
               kind: str = "logits") -> Future:
        return self.lane(model_key).submit(images, kind=kind)

    def logits(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return self.submit(model_key, images, kind="logits").result()

    def classify(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return self.submit(model_key, images, kind="classify").result()

    # asyncio-facing variants: the concurrent future resolves on a batcher
    # thread and wakes the caller's event loop without blocking it
    async def logits_async(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return await asyncio.wrap_future(self.submit(model_key, images,
                                                     kind="logits"))

    async def classify_async(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return await asyncio.wrap_future(self.submit(model_key, images,
                                                     kind="classify"))

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            lanes = dict(self._lanes)
        return {key: lane.stats() for key, lane in lanes.items()}

    def slab_names(self, model_key: str) -> List[str]:
        return list(self.lane(model_key).ring.names)

    def close(self, timeout: float = 30.0) -> bool:
        """Drain every lane and tear down workers; True if all stopped."""
        with self._lock:
            self._closed = True
            lanes = list(self._lanes.values())
            self._lanes.clear()
        return all([lane.close(timeout=timeout) for lane in lanes])

    def __enter__(self) -> "ShardedInferenceService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# measurement harness (CLI + benchmarks)
# --------------------------------------------------------------------------- #
@dataclass
class ShardBenchRow:
    """Throughput of one worker count over the same synthetic traffic."""

    workers: int
    requests: int
    clients: int
    images_per_request: int
    seconds: float
    requests_per_s: float
    samples_per_s: float
    max_parity: float               # vs the in-process reference service
    overload_retries: int
    gain_vs_single: float = 0.0     # filled once the 1-worker row exists
    replicas: dict = field(default_factory=dict)
    lane: dict = field(default_factory=dict)    # restarts_used / drift status


def run_shard_benchmark(model: Any, scheme: Any, image_shape: Sequence[int],
                        worker_counts: Sequence[int] = (1, 2, 4),
                        requests: int = 96, clients: int = 8,
                        images_per_request: int = 4, max_batch: int = 32,
                        max_latency_s: float = 0.002, seed: int = 0,
                        warmup_requests: int = 8,
                        store_path: Optional[str] = None) -> List[ShardBenchRow]:
    """Fire one request wave per worker count and pin parity per request.

    The expected logits come from the in-process
    :class:`~repro.serve.service.PhotonicInferenceService` reference path
    serving the *same* model object; every sharded result is compared against
    its row before timings are reported.  Clients that hit admission control
    back off and retry (counted in ``overload_retries``), so the numbers
    describe a loaded-but-live service, not a fast-fail storm.
    """
    from repro.serve.service import PhotonicInferenceService

    rng = np.random.default_rng(seed)
    pool = rng.normal(size=(requests, images_per_request, *image_shape))
    with PhotonicInferenceService(max_batch=max_batch,
                                  max_latency_s=max_latency_s) as reference:
        from repro.assignment import get_scheme

        reference.deploy("bench", model, get_scheme(_scheme_name(scheme)),
                         max_batch=max_batch)
        expected = [reference.logits("bench", pool[index])
                    for index in range(requests)]

    rows: List[ShardBenchRow] = []
    for workers in worker_counts:
        with ShardedInferenceService(workers=int(workers), max_batch=max_batch,
                                     max_latency_s=max_latency_s,
                                     store_path=store_path) as service:
            service.deploy("bench", model, scheme, image_shape)
            for index in range(min(warmup_requests, requests)):
                service.logits("bench", pool[index])

            results: List[Optional[np.ndarray]] = [None] * requests
            errors: List[BaseException] = []
            retries = [0] * clients

            def client(worker_index: int) -> None:
                try:
                    futures = []
                    for index in range(worker_index, requests, clients):
                        while True:
                            try:
                                futures.append((index, service.submit("bench",
                                                                      pool[index])))
                                break
                            except ServiceOverloadedError:
                                retries[worker_index] += 1
                                time.sleep(0.0005)
                    for index, future in futures:
                        results[index] = future.result(timeout=120)
                except BaseException as error:  # noqa: BLE001 -- surfaced below
                    errors.append(error)

            start = time.perf_counter()
            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            seconds = time.perf_counter() - start
            if errors:
                raise errors[0]
            parity = max(float(np.abs(results[index] - expected[index]).max())
                         for index in range(requests))
            lane_stats = service.stats()["bench"]
            stats = lane_stats["replicas"]
        rows.append(ShardBenchRow(
            workers=int(workers), requests=requests, clients=clients,
            images_per_request=images_per_request, seconds=seconds,
            requests_per_s=requests / seconds,
            samples_per_s=requests * images_per_request / seconds,
            max_parity=parity, overload_retries=sum(retries), replicas=stats,
            lane={key: lane_stats.get(key) for key in
                  ("restarts_used", "max_restarts", "drift",
                   "pending_samples", "rejected")}))
    baseline = next((row for row in rows if row.workers == 1), rows[0])
    for row in rows:
        row.gain_vs_single = row.requests_per_s / baseline.requests_per_s
    return rows
