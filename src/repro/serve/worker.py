"""Worker process of the sharded inference service.

A worker is one replica of one model: it rebuilds the compiled program from
a pickled :class:`WorkerSpec` (the model module's architecture + weights --
never a live :class:`~repro.core.compile.CompiledProgram`, whose plans,
cached dense matrices and locks do not belong on a pickle), warms its own
:class:`~repro.serve.cache.ProgramCache`, and then loops over a control
queue executing shared-memory batches.

The control protocol is deliberately tiny (everything bulky crosses via the
slabs in :mod:`repro.serve.shm`):

========================  =====================================================
frontend -> worker        ``("run", request_id, slab_name, in_cap, out_cap,
                          shape)``, ``("advance", dt_seconds)`` (chaos mode:
                          move the hardware-scenario clock forward) and
                          ``("stop",)``
worker  -> frontend       ``("ready", info)`` once after compilation,
                          ``("ok", request_id, logits_shape, scenario_clock)``
                          / ``("err", request_id, traceback)`` per request,
                          ``("failed", traceback)`` if startup died
========================  =====================================================

``("advance", dt)`` is fire-and-forget: the control queue is FIFO, so every
``("run", ...)`` enqueued after it is guaranteed to execute against the
advanced (further degraded) program -- that ordering is what makes drift
injection deterministic enough to test against.

Workers are spawn-safe: :func:`worker_main` imports everything it needs and
touches no inherited globals, so it behaves identically under the ``spawn``
start method the service uses (fork would duplicate the frontend's batcher
threads and BLAS state).
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.compile import CompileOptions, HardwareTarget
from repro.serve.shm import SharedSlab, attach_slab


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild its program, picklable.

    ``model`` is the model :class:`~repro.nn.module.Module` itself (its
    pickle is the architecture plus parameter arrays) or a zero-arg factory
    returning one.  The assignment scheme crosses as its registry *name* and
    is rebuilt worker-side, and compilation policy crosses as the frozen
    :class:`HardwareTarget` / :class:`CompileOptions` dataclasses.
    ``store_path`` (optional) points at an ahead-of-time compilation
    artifact store: a warm entry turns the replica's rebuild into a
    memory-mapped lookup instead of a full re-decomposition, and the mapped
    dense matrices are shared by every replica on the host through the page
    cache.

    ``scenario`` (optional) is a hardware-degradation scenario *config*
    (``repro.scenarios.build_scenario`` form -- configs cross the pickle,
    never live scenario objects).  The worker serves a scenario-degraded
    copy of its program and re-degrades it whenever the frontend advances
    the scenario clock; every replica builds the scenario from the same
    config, so all replicas of a lane degrade identically.
    """

    model_key: str
    model: Any
    scheme: str
    image_shape: Tuple[int, ...]
    target: Optional[HardwareTarget] = None
    options: Optional[CompileOptions] = None
    store_path: Optional[str] = None
    scenario: Optional[Any] = None


def worker_main(spec: WorkerSpec, requests, responses) -> None:
    """Entry point of one replica process (see the module protocol table)."""
    try:
        from repro.assignment import get_scheme
        from repro.photonics.engine import native_kernel
        from repro.photonics.svd_mapping import decompositions_performed
        from repro.serve.cache import ProgramCache

        scheme = get_scheme(spec.scheme)
        store = None
        if spec.store_path is not None:
            from repro.store import ArtifactStore

            store = ArtifactStore(spec.store_path)
        cache = ProgramCache(capacity=2, store=store)
        # get_or_compile warms the execution plan, so the first request does
        # not pay plan compilation
        program = cache.get_or_compile(spec.model_key, spec.model,
                                       spec.target, spec.options)
        scenario = None
        if spec.scenario is not None:
            from repro.scenarios import build_scenario

            scenario = build_scenario(spec.scenario)
            serving = program.with_scenario(scenario)
        else:
            serving = program
        probe = np.zeros((1, *spec.image_shape))
        logits = serving.predict_logits(probe, scheme)
        responses.put(("ready", {
            "pid": os.getpid(),
            "num_classes": int(logits.shape[-1]),
            # logit elements one sample produces, including leading
            # noise-trials axes; the frontend sizes slab output regions off
            # the maximum across replicas
            "elements_per_sample": int(logits.size),
            "cache": cache.stats.as_dict(),
            # weight matrices this process decomposed during startup -- zero
            # when a warm artifact store served the whole program
            "decompositions": decompositions_performed(),
            "store": None if store is None else store.stats.as_dict(),
            # whether this replica loaded the compiled cchain kernel; each
            # spawn-started process compiles/loads independently, so the
            # frontend can surface replicas that silently fell back to numpy
            "native_backend": native_kernel() is not None,
            # hardware-degradation chaos mode: which scenario (if any) this
            # replica serves through, and its current clock in seconds
            "scenario": None if scenario is None else scenario.name,
            "scenario_time": None if scenario is None else scenario.clock,
        }))
    except BaseException:  # noqa: BLE001 -- startup failure crosses as text
        responses.put(("failed", traceback.format_exc()))
        return

    slabs: Dict[str, SharedSlab] = {}
    executed = 0
    try:
        while True:
            message = requests.get()
            if message[0] == "stop":
                break
            if message[0] == "advance":
                # chaos mode: move the scenario clock and re-degrade the
                # serving program from the clean compile.  Fire-and-forget;
                # FIFO queue order guarantees later "run"s see the new state.
                if scenario is not None:
                    scenario.advance(float(message[1]))
                    serving = program.with_scenario(scenario)
                continue
            _, request_id, slab_name, input_elements, output_elements, shape = message
            try:
                slab = slabs.get(slab_name)
                if slab is None:
                    slab = slabs[slab_name] = attach_slab(
                        slab_name, input_elements, output_elements)
                images = slab.input_view(shape)
                logits = serving.predict_logits(images, scheme)
                slab.output_view(logits.shape)[...] = logits
                executed += 1
                responses.put(("ok", request_id, tuple(logits.shape),
                               None if scenario is None else scenario.clock))
            except BaseException:  # noqa: BLE001 -- relayed to the frontend
                responses.put(("err", request_id, traceback.format_exc()))
    finally:
        for slab in slabs.values():
            slab.close()
        responses.put(("stopped", os.getpid(), executed))
