"""Shared-memory slab transport for the sharded inference service.

Request images and result logits cross the frontend/worker process boundary
through a ring of preallocated :mod:`multiprocessing.shared_memory` segments
("slabs") instead of being pickled: the frontend leases a slab, writes the
batch into its *input region*, and ships only a tiny control tuple (slab
name, shape) over a queue; the worker attaches the segment once (cached by
name), runs the compiled program, writes the logits into the *output
region*, and the frontend copies the result rows out and recycles the slab.
No tensor bytes touch a pickle on the hot path.

Each slab is one segment laid out as ``[input region | output region]``,
both sized in float64 elements at ring construction (``max_batch`` samples
of the model's image shape in, ``max_batch`` logit rows -- including any
leading noise-trials axes -- out).  The frontend owns the segments: it
creates them with :class:`SlabRing` and unlinks every one at shutdown, so a
crashed worker can never leak ``/dev/shm`` entries.  Workers attach with
:func:`attach_slab`, which keeps Python's ``resource_tracker`` from
"helpfully" unlinking a segment it does not own when the worker exits.
"""

from __future__ import annotations

import os
import queue
import uuid
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker, which unlinks it when that process exits --
    wrong for workers that merely *borrow* the frontend's slabs.  Python
    3.13 grew ``track=False`` for exactly this; on older interpreters the
    attachment is unregistered by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    # pre-3.13: suppress the registration itself.  Unregistering *after* the
    # attach is not enough -- the tracker's name cache is a set, so the
    # borrower's register/unregister pair would swallow the owner's single
    # registration and its unlink-time unregister would then KeyError.
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _register_except_shm(name_, rtype):  # pragma: no cover -- trivial shim
        if rtype != "shared_memory":
            original_register(name_, rtype)

    resource_tracker.register = _register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class SharedSlab:
    """One shared-memory segment holding an input and an output region.

    Views returned by :meth:`input_view` / :meth:`output_view` alias the
    segment directly; callers copy out of them (``np.array``) before
    releasing the slab back to its ring.
    """

    def __init__(self, name: str, input_elements: int, output_elements: int,
                 dtype=np.float64, create: bool = False):
        self.name = name
        self.dtype = np.dtype(dtype)
        self.input_elements = int(input_elements)
        self.output_elements = int(output_elements)
        nbytes = (self.input_elements + self.output_elements) * self.dtype.itemsize
        if create:
            self._segment = shared_memory.SharedMemory(name=name, create=True,
                                                       size=max(nbytes, 1))
        else:
            self._segment = _attach_untracked(name)
        self._input = np.ndarray((self.input_elements,), dtype=self.dtype,
                                 buffer=self._segment.buf)
        self._output = np.ndarray((self.output_elements,), dtype=self.dtype,
                                  buffer=self._segment.buf,
                                  offset=self.input_elements * self.dtype.itemsize)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def input_view(self, shape: Sequence[int]) -> np.ndarray:
        elements = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        if elements > self.input_elements:
            raise ValueError(f"batch of shape {tuple(shape)} ({elements} elements) "
                             f"overflows the slab input region "
                             f"({self.input_elements} elements)")
        return self._input[:elements].reshape(tuple(shape))

    def output_view(self, shape: Sequence[int]) -> np.ndarray:
        elements = int(np.prod(shape, dtype=np.int64)) if len(shape) else 1
        if elements > self.output_elements:
            raise ValueError(f"logits of shape {tuple(shape)} ({elements} elements) "
                             f"overflow the slab output region "
                             f"({self.output_elements} elements)")
        return self._output[:elements].reshape(tuple(shape))

    def write_input(self, images: np.ndarray) -> Tuple[int, ...]:
        """Copy a batch into the input region; returns the shape written."""
        images = np.ascontiguousarray(images, dtype=self.dtype)
        self.input_view(images.shape)[...] = images
        return images.shape

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._input = self._output = None  # type: ignore[assignment]
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover -- a view escaped; unlink still works
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner side)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover -- already gone
            pass

    def destroy(self) -> None:
        self.close()
        self.unlink()


def attach_slab(name: str, input_elements: int, output_elements: int,
                dtype=np.float64) -> SharedSlab:
    """Worker-side attachment to a frontend-owned slab (never unlinks it)."""
    return SharedSlab(name, input_elements, output_elements, dtype=dtype,
                      create=False)


def segment_exists(name: str) -> bool:
    """Whether a named shared-memory segment still exists on this system."""
    path = os.path.join("/dev/shm", name)
    if os.path.isdir("/dev/shm"):
        return os.path.exists(path)
    try:  # pragma: no cover -- non-Linux fallback
        segment = _attach_untracked(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


class SlabRing:
    """A leasable ring of preallocated shared-memory slabs.

    ``lease`` hands out a free slab (blocking up to ``timeout``); ``release``
    recycles it.  The ring owns its segments: :meth:`close_and_unlink`
    removes every one and is idempotent, so shutdown paths can call it
    defensively without double-unlink errors.
    """

    def __init__(self, slots: int, input_elements: int, output_elements: int,
                 dtype=np.float64, prefix: str = "repro-shard"):
        if slots < 1:
            raise ValueError("a slab ring needs at least one slot")
        token = uuid.uuid4().hex[:8]
        self.slabs: List[SharedSlab] = [
            SharedSlab(f"{prefix}-{os.getpid()}-{token}-{index}",
                       input_elements, output_elements, dtype=dtype, create=True)
            for index in range(int(slots))
        ]
        self._free: "queue.Queue[SharedSlab]" = queue.Queue()
        for slab in self.slabs:
            self._free.put(slab)
        self._closed = False

    @property
    def names(self) -> List[str]:
        return [slab.name for slab in self.slabs]

    def lease(self, timeout: Optional[float] = None) -> SharedSlab:
        if self._closed:
            raise RuntimeError("slab ring is closed")
        try:
            return self._free.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError("no free shared-memory slab became available "
                               f"within {timeout}s") from None

    def release(self, slab: SharedSlab) -> None:
        if not self._closed:
            self._free.put(slab)

    def close_and_unlink(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slab in self.slabs:
            slab.destroy()
