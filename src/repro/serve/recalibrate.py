"""Online drift detection and zero-downtime recalibration.

Closes the loop the scenario suite opens: a deployed mesh that drifts
(injected via :class:`~repro.serve.drift.DriftInjector` in tests, thermal
reality in the field) degrades every logit it returns, and nothing in the
crash-handling stack notices -- the workers are alive and answering, just
wrong.  :class:`RecalibrationManager` watches the only signal a production
service actually has, the logits it is already returning, and heals the
lane without taking it offline:

1. **Reference.**  At attach time the manager compiles the lane's model
   clean (store-aware, so warm hosts pay milliseconds) and records the
   per-class mean logit over a calibration batch, plus the logit scale.
2. **Monitor.**  It installs itself as the lane's ``logit_monitor``: every
   successfully served logits batch folds into an exponentially weighted
   moving average of the per-class mean.  No extra traffic, no probe
   requests on the hot path.
3. **Detect.**  The drift score is the worst per-class deviation of that
   EWMA from the clean reference, in units of the reference logit scale.
   Past ``threshold`` (after ``min_batches`` observations) the lane is
   declared drifted.
4. **Heal.**  Recalibration is re-nulling the mesh: the manager calls
   ``service.redeploy(model_key)``, which rebuilds the lane from its own
   recorded deploy arguments -- fresh workers re-derive the clean phases
   through the store-aware compile path (scenario clocks return to zero,
   the model of a re-nulled device) and traffic drain-then-swaps onto
   them.  Requests keep flowing the whole time: the old lane serves until
   the new one is ready, then drains.  The manager re-attaches to the new
   lane and the EWMA starts over.

``start()`` runs detect-and-heal on a background thread;  ``check()`` and
``recalibrate()`` expose the same steps synchronously for tests and CLIs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.serve.shard import ShardedInferenceService, _scheme_name


class RecalibrationManager:
    """Detect logit-statistics drift on a lane and redeploy it in place.

    Parameters
    ----------
    service, model_key:
        The sharded service and the deployed lane to guard.
    calibration_images:
        A batch representative of live traffic; the clean reference
        statistics are computed over it.
    ewma_alpha:
        Weight of each new batch in the moving average (smaller = smoother,
        slower to detect).
    threshold:
        Drift score that triggers recalibration, in units of the clean
        logit scale (standard deviations of the reference logits).
    min_batches:
        Observations required before the score is trusted -- also the
        post-recalibration cooldown, since re-attaching resets the EWMA.
    check_interval_s:
        Poll period of the background loop started by :meth:`start`.
    """

    def __init__(self, service: ShardedInferenceService, model_key: str,
                 calibration_images: np.ndarray, ewma_alpha: float = 0.2,
                 threshold: float = 0.25, min_batches: int = 3,
                 check_interval_s: float = 0.25):
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.service = service
        self.model_key = model_key
        self.ewma_alpha = float(ewma_alpha)
        self.threshold = float(threshold)
        self.min_batches = int(min_batches)
        self.check_interval_s = float(check_interval_s)
        self._lock = threading.Lock()
        self._ewma: Optional[np.ndarray] = None
        self._batches = 0
        self.recalibrations = 0
        self.last_latency_s: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.reference_mean, self.reference_scale = self._clean_reference(
            np.asarray(calibration_images))
        self.attach()

    # ------------------------------------------------------------------ #
    # reference statistics (clean compile, store-aware)
    # ------------------------------------------------------------------ #
    def _clean_reference(self, images: np.ndarray):
        import repro
        from repro.assignment import get_scheme

        args = self.service.lane(self.model_key).deploy_args
        if args is None:
            raise RuntimeError(f"lane {self.model_key!r} has no recorded "
                               "deploy arguments to compile a reference from")
        store = None
        if self.service.store_path is not None:
            from repro.store import ArtifactStore

            store = ArtifactStore(self.service.store_path)
        from repro.nn.module import Module

        model = args["model"]
        # modules are callable, so only non-module callables are factories
        if callable(model) and not isinstance(model, Module):
            model = model()
        program = repro.compile(model, target=args["target"],
                                options=args["options"], store=store)
        logits = program.predict_logits(images, get_scheme(_scheme_name(
            args["scheme"])))
        logits = logits.reshape(-1, logits.shape[-1])
        scale = float(logits.std())
        return logits.mean(axis=0), scale if scale > 0 else 1.0

    # ------------------------------------------------------------------ #
    # observation path (runs on the lane's batcher threads)
    # ------------------------------------------------------------------ #
    def attach(self) -> None:
        """Install the monitor on the lane's current incarnation."""
        lane = self.service.lane(self.model_key)
        with self._lock:
            self._ewma = None
            self._batches = 0
        lane.logit_monitor = self._observe
        lane.drift_status = self.status()

    def _observe(self, logits: np.ndarray) -> None:
        batch = np.asarray(logits)
        mean = batch.reshape(-1, batch.shape[-1]).mean(axis=0)
        with self._lock:
            if self._ewma is None:
                self._ewma = mean
            else:
                self._ewma = ((1.0 - self.ewma_alpha) * self._ewma
                              + self.ewma_alpha * mean)
            self._batches += 1

    # ------------------------------------------------------------------ #
    # detection
    # ------------------------------------------------------------------ #
    def drift_score(self) -> float:
        """Worst per-class EWMA deviation, in clean logit-scale units."""
        with self._lock:
            ewma = self._ewma
        if ewma is None:
            return 0.0
        return float(np.abs(ewma - self.reference_mean).max()
                     / self.reference_scale)

    def drifted(self) -> bool:
        with self._lock:
            batches = self._batches
        return batches >= self.min_batches and self.drift_score() > self.threshold

    def check(self) -> Dict[str, Any]:
        """One detect-and-heal step; returns the post-step status."""
        if self.drifted():
            self.recalibrate()
        status = self.status()
        try:
            self.service.lane(self.model_key).drift_status = status
        except KeyError:  # pragma: no cover -- lane undeployed mid-check
            pass
        return status

    # ------------------------------------------------------------------ #
    # healing
    # ------------------------------------------------------------------ #
    def recalibrate(self) -> Dict[str, Any]:
        """Redeploy the lane from clean phases and re-attach the monitor.

        Blocks until the swap completes (new workers ready, traffic
        switched, old lane drained), but the *service* never blocks:
        requests submitted at any moment complete on whichever lane they
        entered.  Returns ``{"latency_s", "score_at_detection", ...}``.
        """
        score = self.drift_score()
        started = time.perf_counter()
        summary = self.service.redeploy(self.model_key)
        latency = time.perf_counter() - started
        self.attach()
        with self._lock:
            self.recalibrations += 1
            self.last_latency_s = latency
        lane = self.service.lane(self.model_key)
        lane.drift_status = self.status()
        return {"latency_s": latency, "score_at_detection": score,
                "deploy": summary}

    # ------------------------------------------------------------------ #
    # background loop / introspection
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Run :meth:`check` every ``check_interval_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=f"recalibrate:{self.model_key}")
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.check_interval_s):
            try:
                self.check()
            except Exception:  # noqa: BLE001 -- keep guarding; surface in status
                import logging

                logging.getLogger("repro.serve.recalibrate").exception(
                    "recalibration check of lane %r failed", self.model_key)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def status(self) -> Dict[str, Any]:
        with self._lock:
            batches, recals = self._batches, self.recalibrations
            latency = self.last_latency_s
        return {"score": round(self.drift_score(), 6),
                "threshold": self.threshold, "batches": batches,
                "drifted": self.drifted(), "recalibrations": recals,
                "last_latency_s": latency,
                "running": self._thread is not None and self._thread.is_alive()}
