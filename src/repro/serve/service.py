"""The photonic inference service: program cache + per-model micro-batchers.

:class:`PhotonicInferenceService` is the process-level serving frontend.
Models are registered once with :meth:`deploy` -- compiled through the
:class:`~repro.serve.cache.ProgramCache` (repeated deploys of the same
``(model_key, target, options)`` hit the cache) and fronted by a
:class:`~repro.serve.batcher.DynamicBatcher` -- after which any thread can
call :meth:`classify` / :meth:`logits` / :meth:`submit` by model key and
have its request coalesced with concurrent traffic.

The module also hosts the measurement harnesses behind
``python -m repro serve`` and ``benchmarks/test_bench_runtime.py``:
:func:`measure_plan_speedup` (plan runtime vs the reference node-walk) and
:func:`run_serving_benchmark` (batched vs sequential request throughput).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.compile import CompiledProgram, CompileOptions, HardwareTarget
from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.cache import ProgramCache


class PhotonicInferenceService:
    """Serve compiled photonic programs to concurrent callers.

    Parameters
    ----------
    cache_capacity:
        LRU capacity of the compiled-program cache.
    max_batch, max_latency_s:
        Default flush policy handed to every model's batcher (overridable
        per :meth:`deploy`).
    store:
        Optional :class:`~repro.store.ArtifactStore` backing the program
        cache: deploys hit warm precompiled entries instead of decomposing,
        and ``deploy(refresh=True)`` bypasses and rewrites the on-disk
        entry along with the in-memory one.
    """

    def __init__(self, cache_capacity: int = 8, max_batch: int = 64,
                 max_latency_s: float = 0.002, store=None):
        self.cache = ProgramCache(capacity=cache_capacity, store=store)
        self.max_batch = int(max_batch)
        self.max_latency_s = float(max_latency_s)
        self._batchers: Dict[str, DynamicBatcher] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def deploy(self, model_key: str, model: Any, scheme: Any,
               target: Optional[HardwareTarget] = None,
               options: Optional[CompileOptions] = None,
               max_batch: Optional[int] = None,
               max_latency_s: Optional[float] = None,
               refresh: bool = False) -> CompiledProgram:
        """Compile (or fetch from cache) a model and open its request lane.

        Re-deploying an already-served ``model_key`` swaps its batcher to the
        newly resolved program after the old lane drains.  Pass
        ``refresh=True`` when the model's *weights* changed under an
        unchanged key: the stale cache entry is invalidated first, so the
        swap serves a freshly compiled program.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
        if refresh:
            self.cache.invalidate(model_key, target, options)
        program = self.cache.get_or_compile(model_key, model, target, options)
        batcher = DynamicBatcher(
            program, scheme,
            max_batch=self.max_batch if max_batch is None else max_batch,
            max_latency_s=(self.max_latency_s if max_latency_s is None
                           else max_latency_s),
            name=f"serve:{model_key}")
        with self._lock:
            # close() may have run while we compiled: re-check before
            # registering, else the new batcher's worker would leak
            if self._closed:
                closed = True
            else:
                closed = False
                previous = self._batchers.get(model_key)
                self._batchers[model_key] = batcher
        if closed:
            batcher.close()
            raise RuntimeError("service is closed")
        if previous is not None:
            previous.close()
        return program

    def batcher(self, model_key: str) -> DynamicBatcher:
        with self._lock:
            batcher = self._batchers.get(model_key)
        if batcher is None:
            raise KeyError(f"model {model_key!r} is not deployed; call deploy() first")
        return batcher

    # ------------------------------------------------------------------ #
    # request side
    # ------------------------------------------------------------------ #
    def submit(self, model_key: str, images: np.ndarray,
               kind: str = "logits") -> Future:
        return self.batcher(model_key).submit(images, kind=kind)

    def logits(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return self.batcher(model_key).logits(images)

    def classify(self, model_key: str, images: np.ndarray) -> np.ndarray:
        return self.batcher(model_key).classify(images)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            batchers = dict(self._batchers)
        return {"cache": self.cache.stats.as_dict(),
                "models": {key: batcher.stats.as_dict()
                           for key, batcher in batchers.items()}}

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain every lane; returns whether all executors actually joined."""
        with self._lock:
            self._closed = True
            batchers = list(self._batchers.values())
            self._batchers.clear()
        return all([batcher.close(timeout=timeout) for batcher in batchers])

    def __enter__(self) -> "PhotonicInferenceService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# measurement harnesses (CLI + benchmarks)
# --------------------------------------------------------------------------- #
def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_plan_speedup(program: CompiledProgram, images: np.ndarray,
                         scheme: Any, repeats: int = 5) -> dict:
    """Time plan execution against the reference node-walk on one batch.

    Also reports the parity between the two executors (must be <= 1e-12; the
    caller asserts it) and the plan's fusion statistics.
    """
    signal = program.encode_images(images, scheme)
    plan = program.plan()
    walk = program.graph.forward_reference(signal)
    planned = plan.execute(signal)
    max_deviation = float(np.abs(walk - planned).max())
    walk_seconds = _best_of(lambda: program.graph.forward_reference(signal), repeats)
    plan_seconds = _best_of(lambda: plan.execute(signal), repeats)
    return {"batch": int(images.shape[0]),
            "walk_seconds": walk_seconds,
            "plan_seconds": plan_seconds,
            "speedup": walk_seconds / plan_seconds,
            "max_deviation": max_deviation,
            "instructions": plan.instruction_count,
            "buffer_slots": plan.slot_count,
            "fused_matmuls": plan.fused_matmuls,
            "fused_affine_chains": plan.fused_affine_chains}


@dataclass
class ServingBenchRow:
    """Throughput of one serving configuration over synthetic traffic."""

    max_batch: int
    clients: int
    requests: int
    images_per_request: int
    sequential_seconds: float
    batched_seconds: float
    sequential_requests_per_s: float
    batched_requests_per_s: float
    throughput_gain: float
    batcher: dict


def run_serving_benchmark(program: CompiledProgram, scheme: Any,
                          image_shape: Sequence[int], requests: int = 64,
                          clients: int = 8, images_per_request: int = 1,
                          max_batch: int = 64, max_latency_s: float = 0.002,
                          seed: int = 0) -> ServingBenchRow:
    """Fire synthetic concurrent traffic at a batcher vs a sequential loop.

    ``clients`` threads each submit their share of ``requests`` single
    (or ``images_per_request``-sized) requests and wait for every future;
    the sequential baseline runs the same requests one ``predict_logits``
    call at a time.  Batched results are verified against the sequential
    ones before timing is reported.
    """
    rng = np.random.default_rng(seed)
    pool = rng.normal(size=(requests, images_per_request, *image_shape))

    def run_sequential() -> List[np.ndarray]:
        return [program.predict_logits(pool[index], scheme)
                for index in range(requests)]

    expected = run_sequential()
    sequential_seconds = _best_of(run_sequential, repeats=1)

    batcher = DynamicBatcher(program, scheme, max_batch=max_batch,
                             max_latency_s=max_latency_s, name="bench")
    try:
        results: List[Optional[np.ndarray]] = [None] * requests
        errors: List[BaseException] = []

        def client(worker: int) -> None:
            try:
                futures = [(index, batcher.submit(pool[index]))
                           for index in range(worker, requests, clients)]
                for index, future in futures:
                    results[index] = future.result(timeout=60)
            except BaseException as error:  # noqa: BLE001 -- surfaced below
                errors.append(error)

        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(worker,))
                   for worker in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batched_seconds = time.perf_counter() - start
        if errors:
            raise errors[0]
        for index in range(requests):
            if not np.allclose(results[index], expected[index], atol=1e-10):
                raise AssertionError("batched serving returned different logits "
                                     f"for request {index}")
        stats = batcher.stats.as_dict()
    finally:
        batcher.close()

    return ServingBenchRow(
        max_batch=max_batch, clients=clients, requests=requests,
        images_per_request=images_per_request,
        sequential_seconds=sequential_seconds, batched_seconds=batched_seconds,
        sequential_requests_per_s=requests / sequential_seconds,
        batched_requests_per_s=requests / batched_seconds,
        throughput_gain=sequential_seconds / batched_seconds,
        batcher=stats)
