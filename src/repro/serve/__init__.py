"""Serving subsystem: dynamic micro-batching inference on compiled programs.

Three layers, bottom up:

* :class:`~repro.serve.cache.ProgramCache` -- LRU cache of compiled programs
  keyed by ``(model_key, HardwareTarget, CompileOptions)``, so repeated
  deploys never recompile.
* :class:`~repro.serve.batcher.DynamicBatcher` -- coalesces concurrent
  ``classify`` / ``logits`` requests into one batched forward pass under a
  max-batch / max-latency flush policy.
* :class:`~repro.serve.service.PhotonicInferenceService` -- the process-level
  frontend tying both together, one request lane per deployed model.

``python -m repro serve`` runs the serving throughput demo on top of these.
"""

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.cache import CacheStats, ProgramCache, cache_key
from repro.serve.service import (
    PhotonicInferenceService,
    ServingBenchRow,
    measure_plan_speedup,
    run_serving_benchmark,
)

__all__ = [
    "BatcherStats",
    "CacheStats",
    "DynamicBatcher",
    "PhotonicInferenceService",
    "ProgramCache",
    "ServingBenchRow",
    "cache_key",
    "measure_plan_speedup",
    "run_serving_benchmark",
]
