"""Serving subsystem: micro-batched inference on compiled programs.

Bottom up:

* :class:`~repro.serve.cache.ProgramCache` -- LRU cache of compiled programs
  keyed by ``(model_key, HardwareTarget, CompileOptions)``, so repeated
  deploys never recompile.
* :class:`~repro.serve.batcher.DynamicBatcher` -- coalesces concurrent
  ``classify`` / ``logits`` requests into one batched forward pass under a
  max-batch / max-latency flush policy.
* :class:`~repro.serve.service.PhotonicInferenceService` -- the in-process
  frontend tying both together, one request lane per deployed model; always
  available and the parity reference for every faster path.
* :class:`~repro.serve.shard.ShardedInferenceService` -- the multi-process
  frontend: per-model worker pools (:mod:`repro.serve.worker`) fed through
  shared-memory slab rings (:mod:`repro.serve.shm`), with admission control,
  backpressure and least-outstanding replica routing.
* :class:`~repro.serve.drift.DriftInjector` /
  :class:`~repro.serve.recalibrate.RecalibrationManager` -- chaos-mode drift
  injection on scenario-deployed lanes, and the online loop that detects
  degradation from logit statistics and heals it through a drain-then-swap
  redeploy with requests flowing throughout.

``python -m repro serve`` runs the serving throughput demos on top of these
(``--workers`` switches to the sharded service, ``--recalibrate`` the
drift-and-heal demo).
"""

from repro.serve.batcher import BatcherStats, DynamicBatcher
from repro.serve.cache import CacheStats, ProgramCache, cache_key
from repro.serve.drift import DriftInjector
from repro.serve.recalibrate import RecalibrationManager
from repro.serve.service import (
    PhotonicInferenceService,
    ServingBenchRow,
    measure_plan_speedup,
    run_serving_benchmark,
)
from repro.serve.shard import (
    ServiceOverloadedError,
    ShardBenchRow,
    ShardedInferenceService,
    WorkerError,
    WorkerTimeoutError,
    run_shard_benchmark,
)
from repro.serve.shm import SharedSlab, SlabRing, segment_exists
from repro.serve.worker import WorkerSpec

__all__ = [
    "BatcherStats",
    "CacheStats",
    "DriftInjector",
    "DynamicBatcher",
    "PhotonicInferenceService",
    "ProgramCache",
    "RecalibrationManager",
    "ServiceOverloadedError",
    "ServingBenchRow",
    "ShardBenchRow",
    "ShardedInferenceService",
    "SharedSlab",
    "SlabRing",
    "WorkerError",
    "WorkerSpec",
    "WorkerTimeoutError",
    "cache_key",
    "measure_plan_speedup",
    "run_serving_benchmark",
    "run_shard_benchmark",
    "segment_exists",
]
