"""LRU cache of compiled photonic programs.

Compiling a model (SVD factoring, mesh decomposition, plan building) costs
orders of magnitude more than executing it once, so a serving process must
never recompile a program it already holds.  :class:`ProgramCache` keys
compiled programs by ``(model_key, HardwareTarget, CompileOptions)`` and
evicts least-recently-used entries beyond its capacity.

The key is canonicalized: both dataclasses are flattened into their policy
fields.  A :class:`~repro.photonics.noise.PhaseNoiseModel` carries a live
random generator and therefore keys by *identity* -- two targets share a
cache entry only when they share the noise-model object (the cached program
keeps the object alive, so the identity stays unambiguous while the entry
lives).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from repro.core.compile import CompiledProgram, CompileOptions, HardwareTarget
from repro.core.compile import compile as compile_program
from repro.nn.module import Module
from repro.photonics.noise import PhaseNoiseModel


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


def _frozen_fields(policy: Any) -> Tuple:
    """Every field of a frozen policy dataclass as a hashable tuple.

    Derived from ``dataclasses.fields`` so a field added to
    :class:`HardwareTarget` / :class:`CompileOptions` later joins the key by
    construction instead of silently colliding.  Noise models carry a live
    generator and key by identity (the cached program keeps the object
    alive, so the identity stays unambiguous while the entry lives).
    """
    parts = []
    for spec in dataclasses.fields(policy):
        value = getattr(policy, spec.name)
        if isinstance(value, PhaseNoiseModel):
            value = ("noise", id(value))
        parts.append((spec.name, value))
    return tuple(parts)


def cache_key(model_key: str, target: Optional[HardwareTarget] = None,
              options: Optional[CompileOptions] = None) -> Tuple:
    """Canonical hashable key of one ``(model, target, options)`` deployment."""
    target = HardwareTarget() if target is None else target
    options = CompileOptions() if options is None else options
    return (str(model_key), _frozen_fields(target), _frozen_fields(options))


class ProgramCache:
    """Thread-safe LRU cache of :class:`~repro.core.compile.CompiledProgram`.

    ``get_or_compile`` is the main entry: on a miss the model (or a zero-arg
    model factory, so cold models can be built lazily) is compiled, its
    execution plan warmed, and the program inserted; on a hit the cached
    program is returned untouched.  Compilation happens outside the cache
    lock with a per-key in-flight marker: concurrent misses on the same key
    wait for one compile, while hits on other keys proceed unstalled.

    With an :class:`~repro.store.ArtifactStore` attached, a memory miss
    consults the store before decomposing anything (and populates it after a
    live compile); :meth:`invalidate` then also bypasses *and rewrites* the
    on-disk entry on the next compile, so a weight-changed redeploy cannot
    resurrect a stale artifact from disk.
    """

    def __init__(self, capacity: int = 8, store: Optional[Any] = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.store = store
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, CompiledProgram]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: dict = {}
        self._refresh: set = set()          # keys whose next compile bypasses
        self._store_keys: dict = {}         # cache key -> on-disk content key

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, model_key: str, target: Optional[HardwareTarget] = None,
            options: Optional[CompileOptions] = None) -> Optional[CompiledProgram]:
        """The cached program for the key, or None (counts as hit/miss)."""
        key = cache_key(model_key, target, options)
        with self._lock:
            program = self._entries.get(key)
            if program is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return program

    def _insert_locked(self, key: Tuple, program: CompiledProgram) -> None:
        """Insert as most-recent and evict beyond capacity (lock held)."""
        self._entries[key] = program
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put(self, model_key: str, program: CompiledProgram,
            target: Optional[HardwareTarget] = None,
            options: Optional[CompileOptions] = None) -> None:
        key = cache_key(model_key, target, options)
        with self._lock:
            self._insert_locked(key, program)

    def get_or_compile(self, model_key: str,
                       model: Any = None,
                       target: Optional[HardwareTarget] = None,
                       options: Optional[CompileOptions] = None,
                       compile_fn: Callable = compile_program) -> CompiledProgram:
        """The cached program, compiling (and plan-warming) it on a miss.

        ``model`` may be the module itself or a zero-arg callable returning
        it; it is only touched on a miss.  Compilation runs *outside* the
        cache lock -- concurrent hits on other keys are never stalled behind
        a slow compile -- with a per-key in-flight marker so concurrent
        misses on the *same* key wait for the one compile instead of
        duplicating it.
        """
        key = cache_key(model_key, target, options)
        while True:
            with self._lock:
                program = self._entries.get(key)
                if program is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return program
                pending = self._inflight.get(key)
                if pending is None:
                    self.stats.misses += 1
                    if model is None:
                        raise KeyError(f"no cached program for {key} and no "
                                       "model to compile was provided")
                    self._inflight[key] = pending = threading.Event()
                    owner = True
                else:
                    owner = False
            if not owner:
                # another thread is compiling this key; when it finishes (or
                # fails) re-check the cache -- on failure the loop retries
                # the compile itself
                pending.wait()
                continue
            try:
                # modules are callable, so only non-module callables are factories
                module = (model() if callable(model) and not isinstance(model, Module)
                          else model)
                if self.store is not None:
                    with self._lock:
                        refresh = key in self._refresh
                    program = compile_fn(module, target=target, options=options,
                                         store=self.store, store_refresh=refresh)
                else:
                    program = compile_fn(module, target=target, options=options)
                program.plan()
                with self._lock:
                    self._insert_locked(key, program)
                    self._refresh.discard(key)
                    if getattr(program, "store_key", None):
                        self._store_keys[key] = program.store_key
                return program
            finally:
                with self._lock:
                    del self._inflight[key]
                pending.set()

    def invalidate(self, model_key: str, target: Optional[HardwareTarget] = None,
                   options: Optional[CompileOptions] = None) -> bool:
        """Drop one cached entry; returns whether it existed.

        Redeploying a model key whose *weights* changed must not hit the
        stale program -- the serving frontends call this before a
        ``refresh`` deploy so the next ``get_or_compile`` recompiles.  With
        an artifact store attached the invalidation extends to disk: the
        recorded on-disk entry is deleted and the next compile of this key
        bypasses the store read and rewrites the entry from a live compile.
        """
        key = cache_key(model_key, target, options)
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            store_key = self._store_keys.pop(key, None)
            if self.store is not None:
                self._refresh.add(key)
        if store_key is not None and self.store is not None:
            self.store.delete(store_key)
        return existed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._store_keys.clear()
