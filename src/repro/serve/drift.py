"""Chaos-mode fault injection: advance a deployed lane's hardware clock.

A lane deployed with ``scenario=`` serves every request through a
hardware-degradation scenario (:mod:`repro.scenarios`) whose clock starts at
zero -- a freshly calibrated device.  :class:`DriftInjector` moves that
clock forward on the *live* workers, so the service starts returning the
progressively degraded logits a real drifting mesh would produce, without
restarting anything.  That is the test half of the recalibration story: the
injector degrades a lane on purpose, and
:class:`~repro.serve.recalibrate.RecalibrationManager` must notice from the
logits alone and heal it.

The ``("advance", dt)`` control message is fire-and-forget on each
replica's FIFO request queue: every batch enqueued after the advance is
guaranteed to execute against the advanced program, and replicas built from
the same scenario config degrade identically, so routing stays invisible to
callers.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.shard import ShardedInferenceService


class DriftInjector:
    """Advance the hardware-scenario clock of one deployed lane.

    The injector resolves the lane at every call, so it keeps working across
    recalibration swaps -- after a redeploy it talks to the fresh (re-nulled,
    clock-zero) workers, exactly like real hardware that drifts again after
    a recalibration.
    """

    def __init__(self, service: ShardedInferenceService, model_key: str):
        self._service = service
        self.model_key = model_key
        self.injected_s = 0.0           # total drift injected by this injector
        self._require_scenario()

    def _require_scenario(self):
        lane = self._service.lane(self.model_key)
        if not any(replica.ready.get("scenario") for replica in lane.replicas):
            raise ValueError(
                f"lane {self.model_key!r} was deployed without a hardware "
                "scenario; deploy(..., scenario=...) enables chaos mode")
        return lane

    def advance(self, dt: float) -> float:
        """Move every replica's scenario clock forward by ``dt`` seconds."""
        dt = float(dt)
        if dt < 0:
            raise ValueError("drift only moves forward (dt >= 0)")
        lane = self._require_scenario()
        for replica in lane.replicas:
            try:
                replica.requests.put(("advance", dt))
            except (OSError, ValueError):   # pragma: no cover -- dead slot
                pass                        # its flushes already fast-fail
        self.injected_s += dt
        return self.injected_s

    def scenario_time(self) -> Optional[float]:
        """Latest scenario clock any replica reported with a response."""
        lane = self._service.lane(self.model_key)
        times = [replica.scenario_time for replica in lane.replicas
                 if replica.scenario_time is not None]
        return max(times) if times else None
