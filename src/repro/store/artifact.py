"""Content-addressed on-disk store of compiled-program artifacts.

Decomposition is the expensive pure step of the whole pipeline -- mesh
phases are a deterministic function of ``(weights, method)`` -- so the
store persists exactly that step's output: per deployed weight matrix, the
structure-of-arrays phases of both SVD meshes plus the singular values as
one NPZ payload, and (where the execution policy runs dense) the dense
transfer matrices as separate raw ``.npy`` files so readers can map them
with ``np.load(..., mmap_mode="r")`` -- N serving replicas on a host then
share one physical page-cache copy of every dense matrix instead of N
private allocations.  (``.npy`` beside the zip rather than inside it:
memory mapping does not reach through an NPZ container.)

Entries live at ``root/<key[:2]>/<key>/`` with a validated
``manifest.json`` beside the payloads (:mod:`repro.store.manifest`).
Publication is atomic: the entry is assembled in a sibling ``*.tmp``
directory and ``os.replace``-d into place, so concurrent writers race
cleanly (one rename wins, the loser discards its tmp) and a crashed writer
never leaves a torn entry -- exactly the tmp-then-replace idiom of the
serving tables this repo's ROADMAP points at.  Every read-side failure --
truncated zip, bit-flipped payload, wrong schema version, shape mismatch
-- degrades to a logged miss: the entry is quarantined (or deleted when
quarantining fails) and the caller falls through to live compilation.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.compile import CompileOptions, HardwareTarget
from repro.photonics.area import mzi_count_matrix
from repro.photonics.mzi_mesh import MeshDecomposition
from repro.photonics.svd_mapping import PhotonicMatrix
from repro.store.errors import ArtifactError, ArtifactMismatchError, StoreKeyError
from repro.store.hashing import file_sha256, policy_document, store_key
from repro.store.manifest import (
    DENSE_DIR,
    MANIFEST_NAME,
    PAYLOAD_NAME,
    build_manifest,
    validate_manifest,
)

logger = logging.getLogger("repro.store")

#: per-process counter making concurrent tmp directories of one pid unique
_TMP_COUNTER = itertools.count()


@dataclass
class StoreStats:
    """Read/write outcomes of one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    saves: int = 0
    corrupt: int = 0            # entries quarantined/deleted on a failed read
    errors: int = 0             # failed writes (read-only store, full disk)
    deletes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "saves": self.saves,
                "corrupt": self.corrupt, "errors": self.errors,
                "deletes": self.deletes}


def _frozen_loaded(array: np.ndarray) -> np.ndarray:
    """Mark a freshly loaded array read-only so mesh construction aliases it."""
    array.flags.writeable = False
    return array


class StoredArtifact:
    """One loaded entry: the deployed matrices, ready to stand in for SVD.

    :meth:`deploy_fn` returns a drop-in replacement for the live
    ``svd_decompose_many`` call at the lowering seam: it serves the stored
    :class:`~repro.photonics.svd_mapping.PhotonicMatrix` objects positionally
    (deployment order is the deterministic rule-walk order the entry was
    captured in), validating each against the weight it is asked to stand in
    for.  A disagreement raises
    :class:`~repro.store.errors.ArtifactMismatchError`, which the compile
    seam turns into quarantine + live recompilation.
    """

    def __init__(self, key: str, matrices: List[PhotonicMatrix]):
        self.key = key
        self.matrices = matrices

    def deploy_fn(self) -> Callable[[Sequence[np.ndarray]], List[PhotonicMatrix]]:
        cursor = [0]

        def deploy(weights: Sequence[np.ndarray]) -> List[PhotonicMatrix]:
            start = cursor[0]
            if start + len(weights) > len(self.matrices):
                raise ArtifactMismatchError(
                    f"entry {self.key[:12]} holds {len(self.matrices)} matrices "
                    f"but the model deploys more")
            served = self.matrices[start:start + len(weights)]
            for position, (weight, matrix) in enumerate(zip(weights, served)):
                shape = np.asarray(weight).shape
                if shape != (matrix.rows, matrix.cols):
                    raise ArtifactMismatchError(
                        f"entry {self.key[:12]} matrix {start + position} is "
                        f"{matrix.rows}x{matrix.cols} but the model deploys "
                        f"a {shape} weight")
            cursor[0] += len(weights)
            return list(served)

        return deploy


class ArtifactStore:
    """A content-addressed directory of precompiled decomposition artifacts.

    Parameters
    ----------
    root:
        Store directory; created lazily on the first save.
    readonly:
        Never write (no population on miss, no quarantine renames that
        would modify the tree).  A store on read-only media also degrades
        to this behaviour automatically -- every failed write is counted
        in :attr:`stats` and logged, never raised to the compile seam.
    """

    def __init__(self, root, readonly: bool = False):
        self.root = Path(root)
        self.readonly = bool(readonly)
        self.stats = StoreStats()

    # ------------------------------------------------------------------ #
    # keys and paths
    # ------------------------------------------------------------------ #
    def key_for(self, model: Any, target: Optional[HardwareTarget] = None,
                options: Optional[CompileOptions] = None) -> str:
        """Content key of one deployment; raises :class:`StoreKeyError` when
        the target has no canonical form (live noise models)."""
        target = HardwareTarget() if target is None else target
        options = CompileOptions() if options is None else options
        return store_key(model, target, options)

    def try_key_for(self, model: Any, target: Optional[HardwareTarget] = None,
                    options: Optional[CompileOptions] = None) -> Optional[str]:
        """:meth:`key_for`, with unhashable targets mapped to ``None``."""
        try:
            return self.key_for(model, target, options)
        except StoreKeyError:
            return None

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / key

    def has(self, key: str) -> bool:
        return (self.entry_path(key) / MANIFEST_NAME).is_file()

    __contains__ = has

    def keys(self) -> List[str]:
        """Keys of every published entry under the root."""
        if not self.root.is_dir():
            return []
        return sorted(entry.parent.name
                      for entry in self.root.glob(f"??/*/{MANIFEST_NAME}"))

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def load(self, key: str,
             options: Optional[CompileOptions] = None) -> Optional[StoredArtifact]:
        """The entry for ``key``, or ``None`` (miss or quarantined corruption).

        Validates the manifest and the size + SHA-256 of every payload file
        before deserializing anything, then rebuilds the
        :class:`PhotonicMatrix` objects with ``options``'s execution policy
        stamped on (the policy is part of the key, so it always agrees with
        what the entry was compiled under).  Dense transfer matrices are
        attached via ``np.load(..., mmap_mode="r")``.
        """
        options = CompileOptions() if options is None else options
        entry = self.entry_path(key)
        if not (entry / MANIFEST_NAME).is_file():
            self.stats.misses += 1
            return None
        try:
            with open(entry / MANIFEST_NAME, "r", encoding="utf-8") as handle:
                manifest = validate_manifest(json.load(handle), expected_key=key)
            for name, meta in manifest["files"].items():
                path = entry / name
                size = path.stat().st_size
                if size != int(meta["bytes"]):
                    raise ArtifactError(f"{name} is {size} bytes, "
                                        f"manifest says {meta['bytes']}")
                if file_sha256(path) != meta["sha256"]:
                    raise ArtifactError(f"{name} fails its SHA-256 digest")
            with np.load(entry / PAYLOAD_NAME, allow_pickle=False) as payload:
                matrices = [self._build_matrix(entry, payload, index, record, options)
                            for index, record in enumerate(manifest["matrices"])]
        except Exception as error:  # noqa: BLE001 -- any damage means "miss"
            logger.warning("store entry %s is unusable (%s); quarantining and "
                           "falling back to live compilation", key[:12], error)
            self.stats.corrupt += 1
            self.quarantine(key)
            return None
        self.stats.hits += 1
        self._touch(entry)
        return StoredArtifact(key, matrices)

    def _touch(self, entry: Path) -> None:
        """Bump the entry directory's mtime so pruning sees it as recent.

        The directory mtime is the store's LRU clock: saves set it via the
        publishing rename and every hit refreshes it here, so
        :meth:`prune` evicts by last *use*, not last write.  Best-effort --
        read-only media just leaves the write-time ordering in place.
        """
        if self.readonly:
            return
        try:
            os.utime(entry)
        except OSError:
            pass

    def _build_matrix(self, entry: Path, payload, index: int,
                      record: Dict[str, Any],
                      options: CompileOptions) -> PhotonicMatrix:
        rows, cols = int(record["rows"]), int(record["cols"])
        meshes = {}
        for side, tag in (("left", "L"), ("right", "R")):
            dimension = int(record[side]["dimension"])
            mesh = MeshDecomposition(
                dimension=dimension, method=str(record["method"]),
                modes=_frozen_loaded(payload[f"w{index}.{tag}.modes"]),
                thetas=_frozen_loaded(payload[f"w{index}.{tag}.thetas"]),
                phis=_frozen_loaded(payload[f"w{index}.{tag}.phis"]),
                output_phases=_frozen_loaded(payload[f"w{index}.{tag}.out"]),
                backend=options.backend,
                dense_dimension_limit=options.dense_dimension_limit)
            if mesh.mzi_count != int(record[side]["mzi_count"]):
                raise ArtifactError(f"matrix {index} {side} mesh has "
                                    f"{mesh.mzi_count} MZIs, manifest says "
                                    f"{record[side]['mzi_count']}")
            meshes[side] = mesh
        singular_values = _frozen_loaded(payload[f"w{index}.sv"])
        if singular_values.shape != (min(rows, cols),):
            raise ArtifactError(f"matrix {index} has {singular_values.shape} "
                                f"singular values for a {rows}x{cols} weight")
        matrix = PhotonicMatrix(
            rows=rows, cols=cols, left_mesh=meshes["left"],
            right_mesh=meshes["right"], singular_values=singular_values,
            scale=float(record["scale"]))
        if matrix.mzi_count != mzi_count_matrix(rows, cols) - min(rows, cols):
            raise ArtifactError(f"matrix {index} MZI count disagrees with the "
                                "closed form for its shape")
        self._attach_dense(entry, matrix, record.get("dense") or {})
        return matrix

    def _attach_dense(self, entry: Path, matrix: PhotonicMatrix,
                      dense: Dict[str, str]) -> None:
        """Memory-map stored dense matrices into the caches the runtime reads.

        Seeding is policy-checked against the *reconstructed* meshes: a
        payload the current dense/column crossover would not use is simply
        skipped (the phases alone are always sufficient), so a process
        default differing from the writer's can never execute a wrong path.
        """
        left, right = matrix.left_mesh, matrix.right_mesh
        if "eff" in dense and left.uses_dense_path() and right.uses_dense_path():
            mapped = np.load(entry / dense["eff"], mmap_mode="r")
            if mapped.shape != (matrix.cols, matrix.rows):
                raise ArtifactError("effective dense matrix has shape "
                                    f"{mapped.shape} for a {matrix.rows}x"
                                    f"{matrix.cols} weight")
            matrix.seed_effective_weight_t(mapped)
        for side, mesh in (("left", left), ("right", right)):
            if side in dense and mesh.uses_dense_path():
                mapped = np.load(entry / dense[side], mmap_mode="r")
                if mapped.shape != (mesh.dimension, mesh.dimension):
                    raise ArtifactError(f"{side} dense matrix has shape "
                                        f"{mapped.shape} for dimension "
                                        f"{mesh.dimension}")
                mesh._dense_cache[0.0] = mapped

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #
    def save(self, key: str, matrices: Sequence[PhotonicMatrix], model: Any,
             target: HardwareTarget, options: CompileOptions) -> bool:
        """Publish one entry atomically; returns whether the key is now stored.

        The entry is assembled in a sibling ``<key>.<pid>-<n>.tmp`` directory
        and ``os.replace``-d into place.  Losing the rename race to a
        concurrent writer counts as success (the other writer published the
        identical content-addressed entry); any OS-level failure (read-only
        store, full disk) is logged and counted, never raised.
        """
        if self.readonly:
            return False
        entry = self.entry_path(key)
        tmp = entry.with_name(f"{key}.{os.getpid()}-{next(_TMP_COUNTER)}.tmp")
        try:
            (tmp / DENSE_DIR).mkdir(parents=True)
            payload: Dict[str, np.ndarray] = {}
            records: List[Dict[str, Any]] = []
            dense_files: List[str] = []
            for index, matrix in enumerate(matrices):
                records.append(self._write_matrix(tmp, payload, dense_files,
                                                  index, matrix))
            np.savez(tmp / PAYLOAD_NAME, **payload)
            if not dense_files:
                (tmp / DENSE_DIR).rmdir()
            files = {name: {"bytes": (tmp / name).stat().st_size,
                            "sha256": file_sha256(tmp / name)}
                     for name in [PAYLOAD_NAME, *dense_files]}
            from repro import __version__
            manifest = build_manifest(
                key=key, repro_version=__version__,
                target_doc=policy_document(target),
                options_doc=policy_document(options),
                model_doc={"class": type(model).__name__,
                           "arrays": len(model.state_dict())},
                matrices=records, files=files)
            with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            try:
                os.replace(tmp, entry)
            except OSError:
                # a concurrent writer published the same content first; its
                # entry is identical by construction, so losing the rename
                # race is success -- just discard our duplicate
                if not self.has(key):
                    raise
                shutil.rmtree(tmp, ignore_errors=True)
            self.stats.saves += 1
            return True
        except OSError as error:
            logger.warning("could not publish store entry %s (%s); continuing "
                           "without persisting", key[:12], error)
            self.stats.errors += 1
            shutil.rmtree(tmp, ignore_errors=True)
            return False

    def _write_matrix(self, tmp: Path, payload: Dict[str, np.ndarray],
                      dense_files: List[str], index: int,
                      matrix: PhotonicMatrix) -> Dict[str, Any]:
        """Stage one matrix's arrays into the payload dict + dense files."""
        record: Dict[str, Any] = {
            "rows": matrix.rows, "cols": matrix.cols,
            "scale": float(matrix.scale), "method": matrix.left_mesh.method,
            "dense": {},
        }
        payload[f"w{index}.sv"] = matrix.singular_values
        for side, tag, mesh in (("left", "L", matrix.left_mesh),
                                ("right", "R", matrix.right_mesh)):
            record[side] = {"dimension": mesh.dimension,
                            "mzi_count": mesh.mzi_count}
            payload[f"w{index}.{tag}.modes"] = mesh.modes
            payload[f"w{index}.{tag}.thetas"] = mesh.thetas
            payload[f"w{index}.{tag}.phis"] = mesh.phis
            payload[f"w{index}.{tag}.out"] = mesh.output_phases
        left, right = matrix.left_mesh, matrix.right_mesh
        if left.uses_dense_path() and right.uses_dense_path():
            # the plan runtime fuses this stage into one effective matmul;
            # store that exact matrix so warm loads skip the reconstruction
            name = f"{DENSE_DIR}/w{index}.eff.npy"
            np.save(tmp / name, matrix.effective_weight_t())
            record["dense"]["eff"] = name
        else:
            for side, mesh in (("left", left), ("right", right)):
                if mesh.uses_dense_path():
                    name = f"{DENSE_DIR}/w{index}.{side}.npy"
                    np.save(tmp / name, mesh._dense_matrix(0.0))
                    record["dense"][side] = name
        dense_files.extend(record["dense"].values())
        return record

    # ------------------------------------------------------------------ #
    # removal
    # ------------------------------------------------------------------ #
    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether it existed.  Never raises."""
        entry = self.entry_path(key)
        existed = entry.is_dir()
        if existed and not self.readonly:
            shutil.rmtree(entry, ignore_errors=True)
            self.stats.deletes += 1
        return existed

    def prune(self, max_entries: Optional[int] = None,
              max_age: Optional[float] = None) -> Dict[str, int]:
        """Evict old and excess entries; returns a removal report.

        ``max_age`` (seconds) drops every entry whose directory mtime --
        bumped on each hit, so effectively its last use -- is older than
        that; ``max_entries`` then keeps only the most recently used
        entries.  The quarantine tree is subject to the same two bounds
        (quarantined trees are debris awaiting inspection, not addressable
        entries, so they obey the same retention policy).

        Removal never races a concurrent reader into a torn read: each
        victim is first ``os.replace``-d to a non-addressable ``*.prune``
        sibling -- after which readers atomically see a clean miss -- and
        only then deleted.  A reader that opened the manifest just before
        the rename fails mid-read and degrades to a quarantined miss, which
        is the store's normal damage path, never a wrong answer.
        """
        report = {"removed_entries": 0, "removed_quarantined": 0,
                  "kept_entries": 0}
        if self.readonly:
            report["kept_entries"] = len(self.keys())
            return report
        report["removed_entries"] = self._prune_tree(
            [self.entry_path(key) for key in self.keys()],
            max_entries, max_age)
        quarantine_root = self.root / ".quarantine"
        quarantined = sorted(path for path in quarantine_root.iterdir()
                             if path.is_dir()) if quarantine_root.is_dir() else []
        report["removed_quarantined"] = self._prune_tree(
            quarantined, max_entries, max_age)
        report["kept_entries"] = len(self.keys())
        self.stats.deletes += report["removed_entries"]
        return report

    def _prune_tree(self, entries: List[Path], max_entries: Optional[int],
                    max_age: Optional[float]) -> int:
        """Apply the age then LRU bound to one directory list; count removals."""
        import time

        survivors = []
        removed = 0
        now = time.time()
        for entry in entries:
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue          # a concurrent prune/writer already moved it
            if max_age is not None and now - mtime > max_age:
                removed += self._remove_entry(entry)
            else:
                survivors.append((mtime, entry))
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort(reverse=True)      # most recently used first
            for _, entry in survivors[max_entries:]:
                removed += self._remove_entry(entry)
        return removed

    def _remove_entry(self, entry: Path) -> int:
        """Atomically un-address one entry directory, then delete it."""
        doomed = entry.with_name(
            f"{entry.name}.{os.getpid()}-{next(_TMP_COUNTER)}.prune")
        try:
            os.replace(entry, doomed)
        except OSError:
            return 0              # lost a race; someone else removed it
        shutil.rmtree(doomed, ignore_errors=True)
        return 1

    def quarantine(self, key: str) -> None:
        """Move a damaged entry out of the addressable tree (or delete it)."""
        entry = self.entry_path(key)
        if not entry.exists() or self.readonly:
            return
        target = (self.root / ".quarantine"
                  / f"{key}.{os.getpid()}-{next(_TMP_COUNTER)}")
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(entry, target)
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)
