"""Ahead-of-time compilation artifact store.

``repro.store`` persists the output of the expensive pure step of the
compiler -- SVD factoring + mesh decomposition -- in a content-addressed
on-disk store, so a fleet of serving workers cold-starts from a
memory-mapped disk read instead of re-decomposing every mesh:

* :class:`ArtifactStore` -- the store itself: atomic tmp-then-``os.replace``
  writes, manifest + digest validation on every read, quarantine-and-miss
  on any corruption.
* :class:`StoredArtifact` -- one loaded entry, serving its matrices into
  the lowering walk in place of live decomposition.
* :func:`store_key` / :func:`weights_digest` -- canonical-JSON content
  addressing over ``(model weights, HardwareTarget, CompileOptions)``.

Build a store offline with ``python -m repro precompile`` and point
``repro.compile()`` / the serving layers at it (``store=`` / ``--store``).
"""

from repro.store.artifact import ArtifactStore, StoredArtifact, StoreStats
from repro.store.errors import ArtifactError, ArtifactMismatchError, StoreKeyError
from repro.store.hashing import canonical_json, store_key, weights_digest
from repro.store.manifest import SCHEMA_VERSION

__all__ = [
    "ArtifactStore",
    "StoredArtifact",
    "StoreStats",
    "ArtifactError",
    "ArtifactMismatchError",
    "StoreKeyError",
    "canonical_json",
    "store_key",
    "weights_digest",
    "SCHEMA_VERSION",
]
