"""Content addressing of compiled-program artifacts.

An artifact-store entry is keyed by a stable hash of everything the
decomposition step is a pure function of:

* the **model weights** -- a SHA-256 digest over every parameter and buffer
  of the module's ``state_dict`` (names, dtypes, shapes and raw bytes), so
  two models agree exactly when their deployable weights agree exactly;
* the frozen **HardwareTarget** and **CompileOptions** dataclasses --
  flattened field by field (``dataclasses.fields``, so a policy field added
  later joins the key by construction) into a canonical JSON document:
  sorted keys, no whitespace, no floats-with-locale surprises.

The final key is the SHA-256 hex digest of that canonical document.  Targets
carrying a live :class:`~repro.photonics.noise.PhaseNoiseModel` have no
canonical byte representation (the model owns an RNG); hashing one raises
:class:`~repro.store.errors.StoreKeyError` and the compile seam simply
bypasses the store for such targets -- noise is injected *after* the stored
decomposition step anyway.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

import numpy as np

from repro.store.errors import StoreKeyError

#: bumped when the hashed document layout changes, so entries written by an
#: older layout can never collide with (or shadow) newer ones
KEY_LAYOUT_VERSION = 1


def canonical_json(document: Any) -> str:
    """Serialize a JSON-able document to its canonical byte form."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _jsonable(value: Any, field_name: str) -> Any:
    """A canonical JSON value for one policy field, or raise StoreKeyError."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise StoreKeyError(f"policy field {field_name!r} is not finite")
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item, field_name) for item in value]
    raise StoreKeyError(
        f"policy field {field_name!r} of type {type(value).__name__} has no "
        "canonical JSON form; targets carrying live objects (e.g. a "
        "PhaseNoiseModel) bypass the artifact store")


def policy_document(policy: Any) -> Dict[str, Any]:
    """Flatten a frozen policy dataclass into a canonical-JSON-able dict."""
    document: Dict[str, Any] = {}
    for spec in dataclasses.fields(policy):
        document[spec.name] = _jsonable(getattr(policy, spec.name), spec.name)
    return document


def weights_digest(model: Any) -> str:
    """SHA-256 digest over every parameter and buffer of ``model``.

    Covers names, dtypes, shapes and raw (C-contiguous) bytes, iterated in
    sorted-name order so the digest is independent of module walk order.
    Buffers (batch-norm running statistics) are included: they do not feed
    the decomposition, but folding them into the key keeps it conservative
    -- any weight-affecting mutation of the module changes the key.
    """
    digest = hashlib.sha256()
    state = model.state_dict()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def store_key(model: Any, target: Any, options: Any) -> str:
    """The content-addressed entry key of one ``(model, target, options)``.

    Raises :class:`StoreKeyError` when the target/options carry a field with
    no canonical form (live noise models); callers treat that as "this
    deployment does not participate in the store".
    """
    document = {
        "layout": KEY_LAYOUT_VERSION,
        "target": policy_document(target),
        "options": policy_document(options),
        "weights": weights_digest(model),
    }
    return hashlib.sha256(canonical_json(document).encode("ascii")).hexdigest()


def file_sha256(path, chunk_bytes: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file, streamed in chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
