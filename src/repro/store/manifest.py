"""Entry manifests of the artifact store.

Each store entry is a directory holding a ``manifest.json`` beside its array
payloads.  The manifest is the entry's self-description *and* its integrity
root: schema version, repo version, the content key the entry was written
under, creation metadata, the hashed target/options documents, one record
per deployed matrix (shapes, scale, mesh dimensions, which dense payload
files exist) and the byte size + SHA-256 of every payload file.  A reader
validates all of it before touching a single array; any disagreement raises
:class:`~repro.store.errors.ArtifactError`, which the store surface turns
into a logged miss plus quarantine -- never a crash.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List

from repro.store.errors import ArtifactError

#: bumped whenever the entry layout (manifest fields, payload key scheme)
#: changes incompatibly; readers treat any other version as corrupt
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.npz"
DENSE_DIR = "dense"


def build_manifest(key: str, repro_version: str,
                   target_doc: Dict[str, Any], options_doc: Dict[str, Any],
                   model_doc: Dict[str, Any],
                   matrices: List[Dict[str, Any]],
                   files: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Assemble the manifest document for one entry about to be published."""
    return {
        "schema_version": SCHEMA_VERSION,
        "repro_version": repro_version,
        "key": key,
        "created": {"unix_time": time.time(), "pid": os.getpid()},
        "target": target_doc,
        "options": options_doc,
        "model": model_doc,
        "matrices": matrices,
        "files": files,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ArtifactError(message)


def validate_manifest(document: Any, expected_key: str) -> Dict[str, Any]:
    """Structural validation of a loaded manifest; returns it on success.

    Checks the schema version, that the entry was written under the key it
    now lives at (a renamed/copied entry must not serve the wrong model) and
    that every matrix record and file record carries the fields the reader
    is about to rely on.
    """
    _require(isinstance(document, dict), "manifest is not a JSON object")
    _require(document.get("schema_version") == SCHEMA_VERSION,
             f"manifest schema version {document.get('schema_version')!r} "
             f"!= supported {SCHEMA_VERSION}")
    _require(document.get("key") == expected_key,
             f"manifest key {document.get('key')!r} does not match the entry "
             f"location {expected_key!r}")
    matrices = document.get("matrices")
    _require(isinstance(matrices, list) and matrices,
             "manifest carries no matrix records")
    for index, record in enumerate(matrices):
        _require(isinstance(record, dict), f"matrix record {index} is not an object")
        for field in ("rows", "cols", "scale", "method", "left", "right"):
            _require(field in record, f"matrix record {index} lacks {field!r}")
        for side in ("left", "right"):
            mesh = record[side]
            _require(isinstance(mesh, dict) and "dimension" in mesh
                     and "mzi_count" in mesh,
                     f"matrix record {index} has a malformed {side!r} mesh record")
    files = document.get("files")
    _require(isinstance(files, dict) and PAYLOAD_NAME in files,
             "manifest lacks the payload file record")
    for name, meta in files.items():
        _require(isinstance(meta, dict) and "bytes" in meta and "sha256" in meta,
                 f"file record {name!r} lacks bytes/sha256")
    return document
