"""Exceptions of the ahead-of-time compilation artifact store.

Every failure mode of the store degrades to a *cache miss* at the compile
seam -- callers log, fall back to live compilation and (where possible)
quarantine the offending entry.  The exception types exist so the store can
distinguish "this entry is damaged" (:class:`ArtifactError`) from "this entry
is healthy but describes a different model" (:class:`ArtifactMismatchError`,
raised mid-lowering when a served matrix does not fit the weight it is asked
to stand in for) and from "this policy cannot be hashed canonically"
(:class:`StoreKeyError`, e.g. a target carrying a live noise-model RNG).
"""

from __future__ import annotations


class ArtifactError(RuntimeError):
    """An on-disk entry is unreadable, torn, or fails validation."""


class ArtifactMismatchError(ArtifactError):
    """A loaded entry does not match the weights it is deployed against."""


class StoreKeyError(ArtifactError):
    """The (model, target, options) triple has no canonical content key."""
