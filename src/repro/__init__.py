"""OplixNet reproduction: area-efficient optical split-complex neural networks.

This package reproduces "OplixNet: Towards Area-Efficient Optical Split-Complex
Networks with Real-to-Complex Data Assignment and Knowledge Distillation"
(DATE 2024).  It contains, from the bottom up:

* :mod:`repro.tensor` -- a numpy-based reverse-mode autograd engine.
* :mod:`repro.nn` -- real and (split-)complex neural-network layers.
* :mod:`repro.optim` -- optimizers and learning-rate schedules.
* :mod:`repro.data` -- datasets, loaders and synthetic MNIST/CIFAR stand-ins.
* :mod:`repro.assignment` -- real-to-complex data assignment schemes.
* :mod:`repro.photonics` -- MZI/DC/PS transfer-matrix simulation, mesh
  decompositions, encoders, detectors and the area / power model.
* :mod:`repro.models` -- FCNN, LeNet-5 and ResNet model zoo (RVNN/CVNN/SCVNN).
* :mod:`repro.core` -- the OplixNet framework itself: training, learnable
  decoders, SCVNN-CVNN mutual learning and photonic deployment.
* :mod:`repro.baselines` -- conventional ONN, OFFT ONN and pruned ONN baselines.
* :mod:`repro.experiments` -- harnesses reproducing every table and figure of
  the paper's evaluation.

The photonic compiler is exposed at the top level::

    import repro

    program = repro.compile(model)                       # CompiledProgram
    logits = program.predict_logits(images, scheme)

with :class:`repro.HardwareTarget` and :class:`repro.CompileOptions`
controlling the mesh scheme / noise model and the execution policy (these
resolve lazily so ``import repro`` stays cheap).
"""

__version__ = "1.2.0"

_COMPILER_EXPORTS = ("compile", "CompiledProgram", "CompileOptions", "HardwareTarget")
_STORE_EXPORTS = ("ArtifactStore",)

__all__ = ["__version__", *_COMPILER_EXPORTS, *_STORE_EXPORTS]


def __getattr__(name):
    """Lazily resolve the compiler API (PEP 562) to keep ``import repro`` light."""
    # import_module (not attribute access): repro.core re-exports the
    # compile *function* under the same name as the submodule
    from importlib import import_module

    if name in _COMPILER_EXPORTS:
        return getattr(import_module("repro.core.compile"), name)
    if name in _STORE_EXPORTS:
        return getattr(import_module("repro.store"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
