"""OplixNet reproduction: area-efficient optical split-complex neural networks.

This package reproduces "OplixNet: Towards Area-Efficient Optical Split-Complex
Networks with Real-to-Complex Data Assignment and Knowledge Distillation"
(DATE 2024).  It contains, from the bottom up:

* :mod:`repro.tensor` -- a numpy-based reverse-mode autograd engine.
* :mod:`repro.nn` -- real and (split-)complex neural-network layers.
* :mod:`repro.optim` -- optimizers and learning-rate schedules.
* :mod:`repro.data` -- datasets, loaders and synthetic MNIST/CIFAR stand-ins.
* :mod:`repro.assignment` -- real-to-complex data assignment schemes.
* :mod:`repro.photonics` -- MZI/DC/PS transfer-matrix simulation, mesh
  decompositions, encoders, detectors and the area / power model.
* :mod:`repro.models` -- FCNN, LeNet-5 and ResNet model zoo (RVNN/CVNN/SCVNN).
* :mod:`repro.core` -- the OplixNet framework itself: training, learnable
  decoders, SCVNN-CVNN mutual learning and photonic deployment.
* :mod:`repro.baselines` -- conventional ONN, OFFT ONN and pruned ONN baselines.
* :mod:`repro.experiments` -- harnesses reproducing every table and figure of
  the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
