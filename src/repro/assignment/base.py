"""Common interface of real-to-complex data assignment schemes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class AssignmentResult:
    """The complex image produced by an assignment scheme.

    Attributes
    ----------
    real, imag:
        Arrays of identical shape ``(batch, channels, height, width)`` holding
        the real and imaginary parts that will be encoded into light-signal
        amplitude and phase.
    """

    real: np.ndarray
    imag: np.ndarray

    def __post_init__(self):
        self.real = np.asarray(self.real, dtype=float)
        self.imag = np.asarray(self.imag, dtype=float)
        if self.real.shape != self.imag.shape:
            raise ValueError(
                f"real/imag shapes differ: {self.real.shape} vs {self.imag.shape}"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.real.shape

    def as_complex(self) -> np.ndarray:
        """Return the assignment as a numpy complex array."""
        return self.real + 1j * self.imag


class AssignmentScheme:
    """Base class for assignment schemes.

    Subclasses implement :meth:`assign` and :meth:`output_shape`; lossless
    schemes additionally implement :meth:`inverse`.
    """

    #: short identifier used in experiment tables (e.g. ``"SI"``, ``"CL"``)
    name: str = "base"
    #: True if the original image can be exactly reconstructed from the result
    lossless: bool = False
    #: True if the scheme reduces the channel count (relevant for CONV layers)
    reduces_channels: bool = False
    #: True if the scheme reduces the spatial size (relevant for FCNN inputs)
    reduces_spatial: bool = False
    #: factor by which the trunk widths of the split network shrink relative to
    #: the conventional ONN (0.5 for the lossless pairings, 1/3 for the lossy
    #: channel remapping which compresses three colour channels into one
    #: complex channel, 1.0 when no reduction applies)
    trunk_width_scale: float = 1.0

    def assign(self, images: np.ndarray) -> AssignmentResult:
        """Pack a batch of real images ``(batch, channels, height, width)``."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Complex image shape ``(channels, height, width)`` for a given input shape."""
        raise NotImplementedError

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        """Reconstruct the original images (only defined for lossless schemes)."""
        raise NotImplementedError(f"{self.name} assignment is not invertible")

    # ------------------------------------------------------------------ #
    # bookkeeping helpers used by the area model and experiment harnesses
    # ------------------------------------------------------------------ #
    def input_feature_reduction(self, input_shape: Tuple[int, int, int]) -> float:
        """Ratio of complex input features to real input features.

        A value of 0.5 means the split ONN sees half as many input signals as
        the conventional ONN, which is what drives the ~75% MZI-area saving of
        fully connected layers.
        """
        channels, height, width = input_shape
        out_channels, out_height, out_width = self.output_shape(input_shape)
        return (out_channels * out_height * out_width) / float(channels * height * width)

    @staticmethod
    def _check_images(images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=float)
        if images.ndim == 3:
            images = images[None, ...]
        if images.ndim != 4:
            raise ValueError(
                f"expected images of shape (batch, channels, height, width), got {images.shape}"
            )
        return images

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
