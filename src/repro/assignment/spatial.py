"""Spatial data-assignment schemes (Fig. 4 of the paper).

All three schemes halve the image height, so an FCNN consuming the flattened
complex image has half as many (complex) input features as the original
real-valued network.  They differ only in *which* two pixels share a complex
value, and therefore in how much the artificial real/imaginary coupling of the
split representation hurts accuracy:

* **spatial interlace** (proposed) -- vertically adjacent pixels, maximally
  correlated, smallest accuracy loss;
* **spatial half-half** -- a pixel from the top half with the pixel at the same
  position in the bottom half;
* **spatial symmetric** -- a pixel with its point-reflection through the image
  centre, typically the least correlated pair.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentScheme


def _pad_to_even_height(images: np.ndarray) -> np.ndarray:
    """Zero-pad one row at the bottom if the image height is odd."""
    if images.shape[2] % 2 == 0:
        return images
    padding = ((0, 0), (0, 0), (0, 1), (0, 0))
    return np.pad(images, padding, mode="constant")


class SpatialInterlace(AssignmentScheme):
    """Pack vertically adjacent pixel pairs into one complex value (proposed, "SI")."""

    name = "SI"
    lossless = True
    reduces_spatial = True
    trunk_width_scale = 0.5

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = _pad_to_even_height(self._check_images(images))
        real = images[:, :, 0::2, :]
        imag = images[:, :, 1::2, :]
        return AssignmentResult(real, imag)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        channels, height, width = input_shape
        return channels, (height + 1) // 2, width

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        batch, channels, half_height, width = result.shape
        images = np.zeros((batch, channels, 2 * half_height, width))
        images[:, :, 0::2, :] = result.real
        images[:, :, 1::2, :] = result.imag
        return images


class SpatialHalfHalf(AssignmentScheme):
    """Pack a top-half pixel with the same-position bottom-half pixel ("SH", from [13])."""

    name = "SH"
    lossless = True
    reduces_spatial = True
    trunk_width_scale = 0.5

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = _pad_to_even_height(self._check_images(images))
        half = images.shape[2] // 2
        real = images[:, :, :half, :]
        imag = images[:, :, half:, :]
        return AssignmentResult(real, imag)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        channels, height, width = input_shape
        return channels, (height + 1) // 2, width

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        return np.concatenate([result.real, result.imag], axis=2)


class SpatialSymmetric(AssignmentScheme):
    """Pack a pixel with its point-reflection through the image centre ("SS")."""

    name = "SS"
    lossless = True
    reduces_spatial = True
    trunk_width_scale = 0.5

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = _pad_to_even_height(self._check_images(images))
        half = images.shape[2] // 2
        real = images[:, :, :half, :]
        # the partner of pixel (i, j) is (H-1-i, W-1-j): flip the bottom half
        # both vertically and horizontally.
        imag = images[:, :, half:, :][:, :, ::-1, ::-1]
        return AssignmentResult(real, imag.copy())

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        channels, height, width = input_shape
        return channels, (height + 1) // 2, width

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        bottom = result.imag[:, :, ::-1, ::-1]
        return np.concatenate([result.real, bottom], axis=2)
