"""Real-to-complex data assignment schemes (Section III-B of the paper).

An assignment scheme packs a real-valued image into the real and imaginary
parts of a complex-valued image that the split ONN consumes.  Spatial schemes
halve the image height (used for FCNNs); channel schemes halve the number of
channels (used for CNNs, because the size of a CONV kernel depends on channel
counts rather than the spatial size of the feature map).
"""

from repro.assignment.base import AssignmentScheme, AssignmentResult
from repro.assignment.spatial import SpatialInterlace, SpatialHalfHalf, SpatialSymmetric
from repro.assignment.channel import ChannelLossless, ChannelRemapping, rgb_to_two_channels
from repro.assignment.conventional import ConventionalAssignment
from repro.assignment.registry import get_scheme, available_schemes, register_scheme

__all__ = [
    "AssignmentScheme",
    "AssignmentResult",
    "SpatialInterlace",
    "SpatialHalfHalf",
    "SpatialSymmetric",
    "ChannelLossless",
    "ChannelRemapping",
    "rgb_to_two_channels",
    "ConventionalAssignment",
    "get_scheme",
    "available_schemes",
    "register_scheme",
]
