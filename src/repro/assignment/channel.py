"""Channel data-assignment schemes (Fig. 5 of the paper).

These schemes halve the *channel* dimension, which is what actually shrinks
convolution kernels (a CONV kernel's size depends on channel counts, not on
the spatial size of the feature map).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentScheme


class ChannelLossless(AssignmentScheme):
    """Pack pairs of colour channels into complex channels (proposed, "CL").

    For a 3-channel image: channels (R, G) form complex channel 0 and channel
    B forms the real part of complex channel 1 whose imaginary part is padded
    with zeros -- no information is discarded.
    """

    name = "CL"
    lossless = True
    reduces_channels = True
    trunk_width_scale = 0.5

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = self._check_images(images)
        batch, channels, height, width = images.shape
        if channels % 2 == 1:
            images = np.concatenate(
                [images, np.zeros((batch, 1, height, width))], axis=1
            )
        real = images[:, 0::2, :, :]
        imag = images[:, 1::2, :, :]
        return AssignmentResult(real, imag)

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        channels, height, width = input_shape
        return (channels + 1) // 2, height, width

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        batch, complex_channels, height, width = result.shape
        images = np.zeros((batch, 2 * complex_channels, height, width))
        images[:, 0::2, :, :] = result.real
        images[:, 1::2, :, :] = result.imag
        return images


def rgb_to_two_channels(images: np.ndarray) -> np.ndarray:
    """Lossy three-to-two channel colour mapping ``f(r, g, b)``.

    Follows the spirit of the two-dimensional colour space of Thi et al. [26]
    used by the paper's *channel remapping* comparison: the first output
    channel is the luminance ``(r + g + b) / 3`` and the second an opponent
    chrominance ``(r - b) / 2``.  The green/magenta axis is discarded, which is
    exactly the kind of information loss the paper attributes to CR.
    """
    images = np.asarray(images, dtype=float)
    if images.ndim != 4 or images.shape[1] != 3:
        raise ValueError("rgb_to_two_channels expects (batch, 3, height, width) images")
    red, green, blue = images[:, 0], images[:, 1], images[:, 2]
    luminance = (red + green + blue) / 3.0
    chrominance = (red - blue) / 2.0
    return np.stack([luminance, chrominance], axis=1)


class ChannelRemapping(AssignmentScheme):
    """Lossy remapping of three colour channels into one complex channel ("CR").

    The three colour channels are first mapped to two real channels via
    :func:`rgb_to_two_channels`, which then become the real and imaginary parts
    of a single complex channel.  The resulting network is thinner than with
    channel-lossless assignment (one complex input channel instead of two) but
    the mapping discards information and costs accuracy.
    """

    name = "CR"
    lossless = False
    reduces_channels = True
    trunk_width_scale = 1.0 / 3.0

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = self._check_images(images)
        if images.shape[1] != 3:
            raise ValueError(
                "channel remapping is defined for 3-channel (RGB) images; "
                f"got {images.shape[1]} channels"
            )
        two_channel = rgb_to_two_channels(images)
        return AssignmentResult(two_channel[:, 0:1], two_channel[:, 1:2])

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        channels, height, width = input_shape
        if channels != 3:
            raise ValueError("channel remapping is defined for 3-channel images")
        return 1, height, width
