"""Registry mapping scheme identifiers to assignment classes."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.assignment.base import AssignmentScheme
from repro.assignment.channel import ChannelLossless, ChannelRemapping
from repro.assignment.conventional import ConventionalAssignment
from repro.assignment.spatial import SpatialHalfHalf, SpatialInterlace, SpatialSymmetric

_REGISTRY: Dict[str, Type[AssignmentScheme]] = {}


def register_scheme(cls: Type[AssignmentScheme]) -> Type[AssignmentScheme]:
    """Register an assignment scheme under its ``name`` (and lowercase alias)."""
    _REGISTRY[cls.name] = cls
    _REGISTRY[cls.name.lower()] = cls
    return cls


for _cls in (SpatialInterlace, SpatialHalfHalf, SpatialSymmetric,
             ChannelLossless, ChannelRemapping, ConventionalAssignment):
    register_scheme(_cls)

# descriptive aliases used in the paper's prose
_REGISTRY["spatial_interlace"] = SpatialInterlace
_REGISTRY["spatial_half_half"] = SpatialHalfHalf
_REGISTRY["spatial_symmetric"] = SpatialSymmetric
_REGISTRY["channel_lossless"] = ChannelLossless
_REGISTRY["channel_remapping"] = ChannelRemapping
_REGISTRY["conv"] = ConventionalAssignment
_REGISTRY["original"] = ConventionalAssignment


def get_scheme(name: str) -> AssignmentScheme:
    """Instantiate the assignment scheme registered under ``name``.

    Accepts the paper's abbreviations ("SI", "SH", "SS", "CL", "CR"),
    descriptive names ("spatial_interlace", ...) and "conventional".
    """
    key = name if name in _REGISTRY else name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown assignment scheme {name!r}; known: {sorted(set(_REGISTRY))}")
    return _REGISTRY[key]()


def available_schemes() -> List[str]:
    """Canonical (short) names of all registered schemes."""
    names = {cls.name for cls in _REGISTRY.values()}
    return sorted(names)
