"""Conventional (amplitude-only) input assignment of the original ONN [10]."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentScheme


class ConventionalAssignment(AssignmentScheme):
    """Identity assignment: all data goes to the amplitude, the phase is unused.

    This reproduces the conventional ONN input encoding (Fig. 1c / Fig. 3c of
    the paper): the complex image has the original data as its real part and
    zeros as its imaginary part, so no area is saved.
    """

    name = "conventional"
    lossless = True
    reduces_channels = False
    reduces_spatial = False
    trunk_width_scale = 1.0

    def assign(self, images: np.ndarray) -> AssignmentResult:
        images = self._check_images(images)
        return AssignmentResult(images, np.zeros_like(images))

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        return tuple(input_shape)

    def inverse(self, result: AssignmentResult) -> np.ndarray:
        return result.real.copy()
