"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD update ``p <- p - lr * (grad + wd * p)`` with optional momentum.

    This is the optimizer used for the paper's CNN experiments (ResNet-style
    training schedules with momentum 0.9 and small weight decay).

    :meth:`step` is allocation-free: the velocity buffers and
    ``parameter.data`` are updated in place through ``out=`` ufunc operands
    and preallocated per-parameter scratch, instead of rebinding fresh arrays
    every step.  :meth:`step_reference` keeps the allocating formulation as
    an executable specification; the two produce bit-identical trajectories
    (pinned in the test-suite).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.1,
                 momentum: float = 0.0, weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(parameters, lr)
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]
        self._scratch2 = ([np.empty_like(p.data) for p in self.parameters]
                          if self.nesterov else None)

    def step_parameter(self, index: int) -> None:
        parameter = self.parameters[index]
        grad = parameter.grad
        if grad is None:
            return
        velocity = self._velocity[index]
        buf = self._scratch[index]
        if self.weight_decay:
            np.multiply(parameter.data, self.weight_decay, out=buf)
            buf += grad
        else:
            np.copyto(buf, grad)
        if self.momentum:
            velocity *= self.momentum
            velocity += buf
            if self.nesterov:
                extra = self._scratch2[index]
                np.multiply(velocity, self.momentum, out=extra)
                buf += extra
            else:
                np.copyto(buf, velocity)
        np.multiply(buf, self.lr, out=buf)
        parameter.data -= buf

    def step_reference(self) -> None:
        """The allocating seed update, kept as an executable specification."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update
