"""Stochastic gradient descent with momentum, Nesterov and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """SGD update ``p <- p - lr * (grad + wd * p)`` with optional momentum.

    This is the optimizer used for the paper's CNN experiments (ResNet-style
    training schedules with momentum 0.9 and small weight decay).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.1,
                 momentum: float = 0.0, weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(parameters, lr)
        if momentum < 0 or weight_decay < 0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update
