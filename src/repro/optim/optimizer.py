"""Base optimizer class."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class for gradient-based optimizers.

    Parameters
    ----------
    parameters:
        Iterable of :class:`~repro.nn.module.Parameter` objects to update.
    lr:
        Learning rate (can be changed later, e.g. by a scheduler, via
        :attr:`lr`).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear the gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def begin_step(self) -> None:
        """Per-step bookkeeping shared by all parameters (e.g. bias correction).

        Split out from :meth:`step` so a compiled training plan can fold the
        update into its instruction tail: one ``begin_step`` instruction
        followed by one :meth:`step_parameter` instruction per parameter is
        exactly what :meth:`step` runs, so the two are bit-identical.
        """

    def step_parameter(self, index: int) -> None:
        """Apply the update for ``self.parameters[index]`` from its gradient."""
        raise NotImplementedError

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        self.begin_step()
        for index in range(len(self.parameters)):
            self.step_parameter(index)

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        grads = [p.grad for p in self.parameters if p.grad is not None]
        if not grads:
            return 0.0
        total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
        if total > max_norm > 0:
            scale = max_norm / (total + 1e-12)
            for parameter in self.parameters:
                if parameter.grad is not None:
                    # gradients are freshly accumulated arrays, so the scale
                    # can be applied in place instead of rebinding a copy
                    np.multiply(parameter.grad, scale, out=parameter.grad)
        return total
