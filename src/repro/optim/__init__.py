"""Optimizers and learning-rate schedulers."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.lr_scheduler import (
    LRScheduler,
    StepLR,
    MultiStepLR,
    CosineAnnealingLR,
    WarmupWrapper,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "WarmupWrapper",
]
