"""Learning-rate schedulers."""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` once per epoch via :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones: List[int] = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        passed = sum(1 for milestone in self.milestones if self.epoch >= milestone)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def get_lr(self) -> float:
        progress = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class WarmupWrapper(LRScheduler):
    """Linear warmup for the first ``warmup_epochs`` epochs, then delegate."""

    def __init__(self, scheduler: LRScheduler, warmup_epochs: int):
        super().__init__(scheduler.optimizer)
        if warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")
        self.scheduler = scheduler
        self.warmup_epochs = int(warmup_epochs)

    def get_lr(self) -> float:
        if self.warmup_epochs and self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        return self.scheduler.get_lr()

    def step(self) -> float:
        self.epoch += 1
        self.scheduler.epoch = self.epoch
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr
