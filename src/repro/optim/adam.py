"""Adam and AdamW optimizers."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    :meth:`step` is allocation-free: the moment buffers and
    ``parameter.data`` are updated in place through ``out=`` ufunc operands
    and two preallocated per-parameter scratch buffers.
    :meth:`step_reference` keeps the allocating formulation as an executable
    specification; the two produce bit-identical trajectories (pinned in the
    test-suite).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._bias1 = self._bias2 = 1.0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]
        self._scratch2 = [np.empty_like(p.data) for p in self.parameters]

    def _effective_grad(self, parameter: Parameter,
                        scratch: Optional[np.ndarray] = None) -> np.ndarray:
        """Coupled-weight-decay gradient, shared by both step flavours.

        With ``scratch`` the result is written in place (the allocation-free
        :meth:`step`); without it a fresh array is returned
        (:meth:`step_reference`).  The two orderings are bit-identical
        because float addition commutes.
        """
        if not self.weight_decay:
            return parameter.grad
        if scratch is None:
            return parameter.grad + self.weight_decay * parameter.data
        np.multiply(parameter.data, self.weight_decay, out=scratch)
        scratch += parameter.grad
        return scratch

    def _decoupled_decay(self, parameter: Parameter,
                         scratch: Optional[np.ndarray] = None) -> None:
        """Hook for AdamW-style decoupled decay (no-op for plain Adam).

        Same convention as :meth:`_effective_grad`: ``scratch`` selects the
        in-place flavour, ``None`` the allocating reference flavour.
        """

    def begin_step(self) -> None:
        self._step_count += 1
        self._bias1 = 1.0 - self.beta1 ** self._step_count
        self._bias2 = 1.0 - self.beta2 ** self._step_count

    def step_parameter(self, index: int) -> None:
        parameter = self.parameters[index]
        if parameter.grad is None:
            return
        m1 = self._moment1[index]
        m2 = self._moment2[index]
        buf = self._scratch[index]
        buf2 = self._scratch2[index]
        grad = self._effective_grad(parameter, buf2)
        m1 *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=buf)
        m1 += buf
        m2 *= self.beta2
        np.multiply(grad, grad, out=buf)
        buf *= 1.0 - self.beta2
        m2 += buf
        self._decoupled_decay(parameter, buf)
        # buf <- sqrt(m2_hat) + eps, buf2 <- lr * m1_hat, then one in-place
        # divide and subtract finish the update without a single fresh array
        np.divide(m2, self._bias2, out=buf)
        np.sqrt(buf, out=buf)
        buf += self.eps
        np.divide(m1, self._bias1, out=buf2)
        buf2 *= self.lr
        buf2 /= buf
        parameter.data -= buf2

    def step_reference(self) -> None:
        """The allocating seed update, kept as an executable specification."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            if parameter.grad is None:
                continue
            grad = self._effective_grad(parameter)
            m1 *= self.beta1
            m1 += (1.0 - self.beta1) * grad
            m2 *= self.beta2
            m2 += (1.0 - self.beta2) * grad ** 2
            self._decoupled_decay(parameter)
            m1_hat = m1 / bias1
            m2_hat = m2 / bias2
            parameter.data = parameter.data - self.lr * m1_hat / (np.sqrt(m2_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _effective_grad(self, parameter: Parameter,
                        scratch: Optional[np.ndarray] = None) -> np.ndarray:
        return parameter.grad

    def _decoupled_decay(self, parameter: Parameter,
                         scratch: Optional[np.ndarray] = None) -> None:
        if not self.weight_decay:
            return
        if scratch is None:
            parameter.data = parameter.data - self.lr * self.weight_decay * parameter.data
        else:
            np.multiply(parameter.data, self.lr * self.weight_decay, out=scratch)
            parameter.data -= scratch
