"""Adam and AdamW optimizers."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: Tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._moment1 = [np.zeros_like(p.data) for p in self.parameters]
        self._moment2 = [np.zeros_like(p.data) for p in self.parameters]

    def _apply_weight_decay(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * parameter.data
        return grad

    def _decoupled_decay(self, parameter: Parameter) -> None:
        """Hook for AdamW-style decoupled decay (no-op for plain Adam)."""

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m1, m2 in zip(self.parameters, self._moment1, self._moment2):
            if parameter.grad is None:
                continue
            grad = self._apply_weight_decay(parameter, parameter.grad)
            m1 *= self.beta1
            m1 += (1.0 - self.beta1) * grad
            m2 *= self.beta2
            m2 += (1.0 - self.beta2) * grad ** 2
            m1_hat = m1 / bias1
            m2_hat = m2 / bias2
            self._decoupled_decay(parameter)
            parameter.data = parameter.data - self.lr * m1_hat / (np.sqrt(m2_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _apply_weight_decay(self, parameter: Parameter, grad: np.ndarray) -> np.ndarray:
        return grad

    def _decoupled_decay(self, parameter: Parameter) -> None:
        if self.weight_decay:
            parameter.data = parameter.data - self.lr * self.weight_decay * parameter.data
