"""CIFAR-style residual networks (ResNet-20/32/56) in real and complex flavours.

The architecture follows He et al.'s CIFAR ResNet: a 3x3 stem convolution,
three stages of ``n`` basic blocks with base widths (16, 32, 64) and strides
(1, 2, 2), global average pooling and a linear classifier.  Depth = 6n + 2
(n = 3, 5, 9 for ResNet-20/32/56).  The complex flavour halves the channel
widths -- that is what the channel-lossless assignment buys -- and ends in a
learnable decoder head.

CPU-scale note: the benchmark harness instantiates shallow variants
(e.g. depth 8, width divider > 1, small images) because full ResNet-56 training
in pure numpy would take days; the full-size constructors are provided and the
MZI area accounting is always evaluated on the paper's full configurations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decoders import DecoderHead, build_decoder_head
from repro.nn import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module, ReLU, Sequential
from repro.nn.complex import (
    ComplexBatchNorm2d,
    ComplexConv2d,
    ComplexGlobalAvgPool2d,
    ComplexSequential,
    ComplexTensor,
    CReLU,
)
from repro.tensor.tensor import Tensor, ensure_tensor


def resnet_depth_to_blocks(depth: int) -> int:
    """Number of blocks per stage for a CIFAR ResNet of the given depth."""
    if (depth - 2) % 6 != 0 or depth < 8:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2 with n >= 1, got {depth}")
    return (depth - 2) // 6


# --------------------------------------------------------------------------- #
# real-valued blocks
# --------------------------------------------------------------------------- #
class BasicBlock(Module):
    """Standard pre-activation-free basic residual block (two 3x3 convolutions)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = None

    def forward(self, inputs: Tensor) -> Tensor:
        identity = inputs if self.downsample is None else self.downsample(inputs)
        out = self.relu(self.bn1(self.conv1(inputs)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class RealResNet(Module):
    """Real-valued CIFAR ResNet (the RVNN reference)."""

    def __init__(self, depth: int = 20, in_channels: int = 3, num_classes: int = 10,
                 base_widths: Sequence[int] = (16, 32, 64),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        blocks = resnet_depth_to_blocks(depth)
        self.depth = depth
        self.num_classes = int(num_classes)
        widths = [int(w) for w in base_widths]
        self.stem = Sequential(
            Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[0]),
            ReLU(),
        )
        stages: List[Module] = []
        previous = widths[0]
        for stage_index, width in enumerate(widths):
            stride = 1 if stage_index == 0 else 2
            for block_index in range(blocks):
                stages.append(BasicBlock(previous, width,
                                         stride=stride if block_index == 0 else 1, rng=rng))
                previous = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(previous, num_classes, rng=rng)

    def forward(self, inputs) -> Tensor:
        inputs = ensure_tensor(inputs)
        out = self.stem(inputs)
        out = self.stages(out)
        out = self.pool(out)
        return self.classifier(out)


# --------------------------------------------------------------------------- #
# complex-valued blocks
# --------------------------------------------------------------------------- #
class ComplexBasicBlock(Module):
    """Complex residual block: two complex 3x3 convolutions with split batch norm."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = ComplexConv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                                   bias=False, rng=rng)
        self.bn1 = ComplexBatchNorm2d(out_channels)
        self.activation = CReLU()
        self.conv2 = ComplexConv2d(out_channels, out_channels, 3, stride=1, padding=1,
                                   bias=False, rng=rng)
        self.bn2 = ComplexBatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = ComplexSequential(
                ComplexConv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                ComplexBatchNorm2d(out_channels),
            )
        else:
            self.downsample = None

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        identity = inputs if self.downsample is None else self.downsample(inputs)
        out = self.activation(self.bn1(self.conv1(inputs)))
        out = self.bn2(self.conv2(out))
        return self.activation(out + identity)


class ComplexResNet(Module):
    """Complex-valued CIFAR ResNet with a learnable decoder head (CVNN / SCVNN).

    ``in_channels`` counts complex channels (3 for the CVNN teacher, 2 with
    channel-lossless assignment, 1 with channel remapping); ``base_widths``
    default to half the real widths, matching the paper's split models.

    The trained model deploys onto simulated MZI meshes through
    ``repro.compile``: every convolution becomes a photonic im2col stage,
    each residual block's skip addition is an
    :class:`~repro.core.graph_ir.ElectronicAdd` node and the eval-mode split
    batch norms fold into electronic per-channel affine ops (see the lowering
    rules at the bottom of this module).
    """

    def __init__(self, depth: int = 20, in_channels: int = 2, num_classes: int = 10,
                 base_widths: Sequence[int] = (8, 16, 32),
                 decoder: str = "merge",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        blocks = resnet_depth_to_blocks(depth)
        self.depth = depth
        self.num_classes = int(num_classes)
        self.decoder_name = decoder
        widths = [int(w) for w in base_widths]
        self.stem = ComplexSequential(
            ComplexConv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            ComplexBatchNorm2d(widths[0]),
            CReLU(),
        )
        stages: List[Module] = []
        previous = widths[0]
        for stage_index, width in enumerate(widths):
            stride = 1 if stage_index == 0 else 2
            for block_index in range(blocks):
                stages.append(ComplexBasicBlock(previous, width,
                                                stride=stride if block_index == 0 else 1, rng=rng))
                previous = width
        self.stages = ComplexSequential(*stages)
        self.pool = ComplexGlobalAvgPool2d()
        self.head: DecoderHead = build_decoder_head(decoder, previous, num_classes, rng=rng)

    def forward(self, inputs: ComplexTensor) -> Tensor:
        if not isinstance(inputs, ComplexTensor):
            inputs = ComplexTensor(ensure_tensor(inputs))
        out = self.stem(inputs)
        out = self.stages(out)
        out = self.pool(out)
        return self.head(out)


# --------------------------------------------------------------------------- #
# photonic lowering
# --------------------------------------------------------------------------- #
from repro.core.graph_ir import ElectronicAdd  # noqa: E402
from repro.core.lowering import (  # noqa: E402
    GlobalAvgPool2dStage,
    LoweringContext,
    register_lowering,
    register_model_lowering,
)


@register_lowering(ComplexBasicBlock)
def _lower_complex_basic_block(block: ComplexBasicBlock, name: str,
                               ctx: LoweringContext) -> None:
    """Lower one residual block as a two-branch subgraph.

    The entry signal fans out to the main branch (conv1 -> bn1 -> CReLU ->
    conv2 -> bn2, with the convolutions on MZI meshes and the split batch
    norms as electronic affine ops) and to the skip branch (identity, or the
    1x1 projection when the block changes shape); the two branches join in an
    electronic skip-add node followed by the block's closing CReLU.
    """
    entry = ctx.cursor
    ctx.lower_module(block.conv1, f"{name}.conv1")
    ctx.lower_module(block.bn1, f"{name}.bn1")
    ctx.lower_module(block.activation, f"{name}.crelu1")
    ctx.lower_module(block.conv2, f"{name}.conv2")
    ctx.lower_module(block.bn2, f"{name}.bn2")
    main = ctx.cursor
    if block.downsample is None:
        skip = entry
    else:
        ctx.cursor = entry
        ctx.lower_module(block.downsample, f"{name}.downsample")
        skip = ctx.cursor
    ctx.emit(f"{name}.add", ElectronicAdd(), inputs=(main, skip))
    ctx.lower_module(block.activation, f"{name}.crelu2")


@register_model_lowering(ComplexResNet)
def _lower_complex_resnet(model: ComplexResNet, ctx: LoweringContext) -> None:
    """Lower stem, residual stages, global pooling and the decoder head."""
    ctx.input_kind = "image"
    ctx.lower_chain(model.stem, "stem")
    ctx.lower_chain(model.stages, "stages")
    ctx.emit("pool", GlobalAvgPool2dStage())
    ctx.lower_head(model.head)
