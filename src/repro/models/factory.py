"""Model factory: build RVNN / CVNN / SCVNN variants from a single specification.

The factory encodes the paper's sizing rules:

* **RVNN** uses the real architecture at its full width.
* **CVNN** (the "Orig." conventional ONN and the mutual-learning teacher) uses
  the *complex* architecture at the full width of the real model, with the
  conventional amplitude-only assignment (so it saves no area).
* **SCVNN** (the proposed split ONN) derives its input geometry from the data
  assignment scheme and halves the trunk widths **only when the scheme reduces
  the channel/feature count**:

  - spatial schemes (SI/SH/SS) halve the flattened input of an FCNN, so FCNN
    hidden widths are halved too;
  - channel schemes (CL/CR) halve CNN channel counts, so CNN widths are halved;
  - a spatial scheme applied to a CNN does *not* shrink the convolution
    kernels (their size depends only on channel counts), so CNN widths stay
    full and only the flattened features entering the classifier shrink --
    exactly the behaviour discussed around Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.assignment import AssignmentScheme, get_scheme
from repro.models.fcnn import ComplexFCNN, RealFCNN
from repro.models.lenet import ComplexLeNet5, RealLeNet5
from repro.models.resnet import ComplexResNet, RealResNet
from repro.nn.module import Module

ARCHITECTURES = ("fcnn", "lenet5", "resnet")
FLAVOURS = ("rvnn", "cvnn", "scvnn")


def _scaled(values: Sequence[int], divider: float) -> Tuple[int, ...]:
    return tuple(max(1, int(math.ceil(v / divider))) for v in values)


def complex_trunk_widths(real_widths: Sequence[int], scale: float) -> Tuple[int, ...]:
    """Complex trunk widths given the real widths and the scheme's width scale.

    ``scale`` is 1.0 when the assignment gives no reduction, 0.5 for the
    lossless pairings and 1/3 for the lossy channel remapping.  A boolean is
    also accepted for backwards compatibility (True means halve).
    """
    if isinstance(scale, bool):
        scale = 0.5 if scale else 1.0
    if not 0.0 < scale <= 1.0:
        raise ValueError("width scale must be in (0, 1]")
    return tuple(max(1, int(math.ceil(w * scale))) for w in real_widths)


@dataclass
class ModelSpec:
    """Declarative description of one experiment model.

    Attributes
    ----------
    architecture:
        "fcnn", "lenet5" or "resnet".
    flavour:
        "rvnn", "cvnn" or "scvnn".
    input_shape:
        Shape ``(channels, height, width)`` of the *real* dataset images.
    num_classes:
        Number of target classes.
    assignment:
        Data-assignment scheme name; required for the SCVNN flavour, ignored
        (treated as "conventional") otherwise.
    decoder:
        Decoder head for the complex flavours.
    hidden_sizes:
        Hidden widths of the real FCNN (default (100,), the paper's FCNN).
    lenet_channels / lenet_hidden:
        Real LeNet-5 channel counts and classifier widths.
    depth / resnet_widths:
        ResNet depth (6n+2) and real stage widths.
    width_divider:
        Uniform width divider applied to every real width before the
        RVNN/CVNN/SCVNN sizing rules; used by the CPU-scale benchmark harness
        (1 = paper-size model).
    """

    architecture: str
    flavour: str
    input_shape: Tuple[int, int, int]
    num_classes: int
    assignment: Optional[str] = None
    decoder: str = "merge"
    hidden_sizes: Tuple[int, ...] = (100,)
    lenet_channels: Tuple[int, int] = (6, 16)
    lenet_hidden: Tuple[int, int] = (120, 84)
    lenet_kernel: int = 5
    lenet_padding: int = 0
    depth: int = 20
    resnet_widths: Tuple[int, int, int] = (16, 32, 64)
    width_divider: float = 1.0

    def __post_init__(self):
        if self.architecture not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.architecture!r}; choose from {ARCHITECTURES}")
        if self.flavour not in FLAVOURS:
            raise ValueError(f"unknown flavour {self.flavour!r}; choose from {FLAVOURS}")
        if self.flavour == "scvnn" and self.assignment is None:
            raise ValueError("the SCVNN flavour requires an assignment scheme")
        if self.width_divider < 1:
            raise ValueError("width_divider must be >= 1")

    # ------------------------------------------------------------------ #
    # derived geometry
    # ------------------------------------------------------------------ #
    def scheme(self) -> AssignmentScheme:
        """The data-assignment scheme this spec uses (conventional for RVNN/CVNN)."""
        if self.flavour == "scvnn":
            return get_scheme(self.assignment)
        return get_scheme("conventional")

    def complex_input_shape(self) -> Tuple[int, int, int]:
        """Shape of the complex image fed to the complex model."""
        return self.scheme().output_shape(self.input_shape)

    def real_widths(self) -> dict:
        """Architecture widths of the real model after the width divider."""
        return {
            "hidden_sizes": _scaled(self.hidden_sizes, self.width_divider),
            "lenet_channels": _scaled(self.lenet_channels, self.width_divider),
            "lenet_hidden": _scaled(self.lenet_hidden, self.width_divider),
            "resnet_widths": _scaled(self.resnet_widths, self.width_divider),
        }

    def channel_width_scale(self) -> float:
        """Width scale of convolution channels (and ResNet stage widths).

        Only channel-type assignments shrink CONV kernels; spatial assignments
        leave convolution widths untouched (Section III-B of the paper).
        """
        if self.flavour != "scvnn":
            return 1.0
        scheme = self.scheme()
        return scheme.trunk_width_scale if scheme.reduces_channels else 1.0

    def hidden_width_scale(self) -> float:
        """Width scale of fully connected hidden layers.

        Both channel and spatial assignments shrink the flattened features
        entering the classifier, so the FC hidden widths scale whenever the
        scheme reduces anything.
        """
        if self.flavour != "scvnn":
            return 1.0
        scheme = self.scheme()
        if scheme.reduces_channels or scheme.reduces_spatial:
            return scheme.trunk_width_scale
        return 1.0

    def halve_trunk(self) -> bool:
        """Backwards-compatible boolean view of :meth:`hidden_width_scale`."""
        return self.hidden_width_scale() < 1.0


def build_model(spec: ModelSpec, rng: Optional[np.random.Generator] = None) -> Module:
    """Instantiate the model described by ``spec``."""
    widths = spec.real_widths()
    if spec.architecture == "fcnn":
        return _build_fcnn(spec, widths, rng)
    if spec.architecture == "lenet5":
        return _build_lenet(spec, widths, rng)
    return _build_resnet(spec, widths, rng)


# --------------------------------------------------------------------------- #
# per-architecture builders
# --------------------------------------------------------------------------- #
def _build_fcnn(spec: ModelSpec, widths: dict, rng) -> Module:
    channels, height, width = spec.input_shape
    real_features = channels * height * width
    hidden = widths["hidden_sizes"]
    if spec.flavour == "rvnn":
        return RealFCNN(real_features, hidden, spec.num_classes, rng=rng)
    complex_channels, complex_height, complex_width = spec.complex_input_shape()
    complex_features = complex_channels * complex_height * complex_width
    complex_hidden = complex_trunk_widths(hidden, spec.hidden_width_scale())
    return ComplexFCNN(complex_features, complex_hidden, spec.num_classes,
                       decoder=spec.decoder, rng=rng)


def _build_lenet(spec: ModelSpec, widths: dict, rng) -> Module:
    channels, height, width = spec.input_shape
    conv_channels = widths["lenet_channels"]
    hidden = widths["lenet_hidden"]
    if spec.flavour == "rvnn":
        return RealLeNet5(in_channels=channels, num_classes=spec.num_classes,
                          image_size=(height, width), channels=conv_channels,
                          hidden_sizes=hidden, kernel_size=spec.lenet_kernel,
                          padding=spec.lenet_padding, rng=rng)
    complex_channels, complex_height, complex_width = spec.complex_input_shape()
    return ComplexLeNet5(in_channels=complex_channels, num_classes=spec.num_classes,
                         image_size=(complex_height, complex_width),
                         channels=complex_trunk_widths(conv_channels, spec.channel_width_scale()),
                         hidden_sizes=complex_trunk_widths(hidden, spec.hidden_width_scale()),
                         decoder=spec.decoder, kernel_size=spec.lenet_kernel,
                         padding=spec.lenet_padding, rng=rng)


def _build_resnet(spec: ModelSpec, widths: dict, rng) -> Module:
    channels, _height, _width = spec.input_shape
    stage_widths = widths["resnet_widths"]
    if spec.flavour == "rvnn":
        return RealResNet(depth=spec.depth, in_channels=channels,
                          num_classes=spec.num_classes, base_widths=stage_widths, rng=rng)
    complex_channels, _ch, _cw = spec.complex_input_shape()
    return ComplexResNet(depth=spec.depth, in_channels=complex_channels,
                         num_classes=spec.num_classes,
                         base_widths=complex_trunk_widths(stage_widths, spec.channel_width_scale()),
                         decoder=spec.decoder, rng=rng)
