"""Fully connected networks (the paper's FCNN-MNIST workload).

The paper's FCNN has a single hidden layer of width 100 acting on the 784
MNIST pixels; the split version halves both the input (via spatial interlace
assignment) and the hidden width, giving the ~75% MZI reduction of Table II.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.decoders import DecoderHead, build_decoder_head
from repro.nn import Linear, Module, ReLU, Sequential
from repro.nn.complex import ComplexLinear, ComplexSequential, ComplexTensor, CReLU
from repro.tensor.tensor import Tensor, ensure_tensor


class RealFCNN(Module):
    """Real-valued multi-layer perceptron (the RVNN reference)."""

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = int(in_features)
        self.hidden_sizes = [int(h) for h in hidden_sizes]
        self.num_classes = int(num_classes)
        layers: List[Module] = []
        previous = self.in_features
        for width in self.hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(Linear(previous, self.num_classes, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, inputs) -> Tensor:
        inputs = ensure_tensor(inputs)
        if inputs.ndim > 2:
            inputs = inputs.flatten(start_dim=1)
        return self.network(inputs)


class ComplexFCNN(Module):
    """Complex-valued MLP with a learnable decoder head (CVNN / SCVNN).

    Parameters
    ----------
    in_features:
        Number of *complex* input features (e.g. 784 for the CVNN teacher with
        conventional assignment, 392 for the SCVNN with spatial interlace).
    hidden_sizes:
        Complex widths of the hidden layers.
    num_classes:
        Number of target classes.
    decoder:
        One of "merge", "linear", "unitary", "coherent", "photodiode".
    """

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], num_classes: int,
                 decoder: str = "merge", rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = int(in_features)
        self.hidden_sizes = [int(h) for h in hidden_sizes]
        self.num_classes = int(num_classes)
        self.decoder_name = decoder
        layers: List[Module] = []
        previous = self.in_features
        for width in self.hidden_sizes:
            layers.append(ComplexLinear(previous, width, rng=rng))
            layers.append(CReLU())
            previous = width
        self.trunk = ComplexSequential(*layers)
        self.head: DecoderHead = build_decoder_head(decoder, previous, self.num_classes, rng=rng)

    def forward(self, inputs: ComplexTensor) -> Tensor:
        if not isinstance(inputs, ComplexTensor):
            inputs = ComplexTensor(ensure_tensor(inputs))
        if inputs.ndim > 2:
            inputs = inputs.flatten(start_dim=1)
        features = self.trunk(inputs) if len(self.trunk) else inputs
        return self.head(features)


# --------------------------------------------------------------------------- #
# photonic lowering
# --------------------------------------------------------------------------- #
from repro.core.lowering import LoweringContext, register_model_lowering  # noqa: E402


@register_model_lowering(ComplexFCNN)
def _lower_complex_fcnn(model: ComplexFCNN, ctx: LoweringContext) -> None:
    """Lower the fully connected trunk as a flat-input stage chain."""
    ctx.input_kind = "flat"
    ctx.lower_chain(model.trunk, "trunk")
    ctx.lower_head(model.head)
