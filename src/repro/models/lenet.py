"""LeNet-5 in real and complex flavours (the paper's LeNet-5/CIFAR-10 workload).

The architecture follows the classic LeCun layout adapted to the input size:
two 5x5 convolution + pooling stages followed by three fully connected layers.
The complex variant halves the channel counts and hidden widths (driven by the
channel-lossless assignment) and ends in a learnable decoder head.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.decoders import DecoderHead, build_decoder_head
from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, Module, ReLU, Sequential
from repro.nn.complex import (
    ComplexAvgPool2d,
    ComplexConv2d,
    ComplexSequential,
    ComplexTensor,
    CReLU,
)
from repro.tensor.tensor import Tensor, ensure_tensor


def _lenet_spatial_size(height: int, width: int, kernel: int = 5, padding: int = 0) -> Tuple[int, int]:
    """Spatial size after the two conv(k, padding)/pool(2) stages of LeNet-5."""
    def stage(size: int) -> int:
        return (size + 2 * padding - kernel + 1) // 2

    return stage(stage(height)), stage(stage(width))


class RealLeNet5(Module):
    """Real-valued LeNet-5.

    ``kernel_size``/``padding`` default to the classic 5x5 valid convolutions
    (the configuration whose MZI count matches the paper); the CPU-scale
    benchmark presets switch to 3x3 "same" convolutions so that the network
    still fits the shrunken images.
    """

    def __init__(self, in_channels: int = 3, num_classes: int = 10,
                 image_size: Tuple[int, int] = (32, 32),
                 channels: Sequence[int] = (6, 16),
                 hidden_sizes: Sequence[int] = (120, 84),
                 kernel_size: int = 5, padding: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_classes = int(num_classes)
        conv1_channels, conv2_channels = channels
        out_h, out_w = _lenet_spatial_size(*image_size, kernel=kernel_size, padding=padding)
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"image size {image_size} is too small for LeNet-5")
        flat_features = conv2_channels * out_h * out_w
        hidden1, hidden2 = hidden_sizes
        self.features = Sequential(
            Conv2d(in_channels, conv1_channels, kernel_size, padding=padding, rng=rng),
            ReLU(), AvgPool2d(2),
            Conv2d(conv1_channels, conv2_channels, kernel_size, padding=padding, rng=rng),
            ReLU(), AvgPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(flat_features, hidden1, rng=rng), ReLU(),
            Linear(hidden1, hidden2, rng=rng), ReLU(),
            Linear(hidden2, num_classes, rng=rng),
        )

    def forward(self, inputs) -> Tensor:
        inputs = ensure_tensor(inputs)
        return self.classifier(self.features(inputs))


class ComplexLeNet5(Module):
    """Complex-valued LeNet-5 with a learnable decoder head (CVNN / SCVNN).

    ``in_channels`` counts *complex* channels: 3 for the CVNN teacher
    (conventional assignment keeps all colour channels), 2 for the SCVNN with
    channel-lossless assignment, 1 with channel remapping.

    The trained model is deployable onto simulated MZI meshes:
    :func:`repro.core.deploy.deploy_model` lowers the convolution kernels to
    im2col matrices and the trunk/head to SVD mesh pairs (see
    :mod:`repro.core.lowering`).
    """

    def __init__(self, in_channels: int = 2, num_classes: int = 10,
                 image_size: Tuple[int, int] = (32, 32),
                 channels: Sequence[int] = (3, 8),
                 hidden_sizes: Sequence[int] = (60, 42),
                 decoder: str = "merge",
                 kernel_size: int = 5, padding: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_classes = int(num_classes)
        self.decoder_name = decoder
        conv1_channels, conv2_channels = channels
        out_h, out_w = _lenet_spatial_size(*image_size, kernel=kernel_size, padding=padding)
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"image size {image_size} is too small for LeNet-5")
        flat_features = conv2_channels * out_h * out_w
        hidden1, hidden2 = hidden_sizes
        self.features = ComplexSequential(
            ComplexConv2d(in_channels, conv1_channels, kernel_size, padding=padding, rng=rng),
            CReLU(), ComplexAvgPool2d(2),
            ComplexConv2d(conv1_channels, conv2_channels, kernel_size, padding=padding, rng=rng),
            CReLU(), ComplexAvgPool2d(2),
        )
        self.trunk = ComplexSequential(
            ComplexLinearWithActivation(flat_features, hidden1, rng=rng),
            ComplexLinearWithActivation(hidden1, hidden2, rng=rng),
        )
        self.head: DecoderHead = build_decoder_head(decoder, hidden2, num_classes, rng=rng)

    def forward(self, inputs: ComplexTensor) -> Tensor:
        if not isinstance(inputs, ComplexTensor):
            inputs = ComplexTensor(ensure_tensor(inputs))
        features = self.features(inputs)
        flat = features.flatten(start_dim=1)
        hidden = self.trunk(flat)
        return self.head(hidden)


class ComplexLinearWithActivation(Module):
    """Convenience block: complex linear layer followed by CReLU."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        from repro.nn.complex import ComplexLinear

        self.linear = ComplexLinear(in_features, out_features, rng=rng)
        self.activation = CReLU()

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return self.activation(self.linear(inputs))


# --------------------------------------------------------------------------- #
# photonic lowering
# --------------------------------------------------------------------------- #
from repro.core.lowering import (  # noqa: E402
    FlattenStage,
    LoweringContext,
    register_lowering,
    register_model_lowering,
)


@register_lowering(ComplexLinearWithActivation)
def _lower_linear_with_activation(module: ComplexLinearWithActivation, name: str,
                                  ctx: LoweringContext) -> None:
    """Lower the wrapped linear layer and fold the CReLU into its stage."""
    ctx.lower_module(module.linear, name)
    ctx.cursor_op().activation_after = True


@register_model_lowering(ComplexLeNet5)
def _lower_complex_lenet5(model: ComplexLeNet5, ctx: LoweringContext) -> None:
    """Lower the conv features, the flatten, the linear trunk and the head."""
    ctx.input_kind = "image"
    ctx.lower_chain(model.features, "features")
    ctx.emit("flatten", FlattenStage())
    ctx.lower_chain(model.trunk, "trunk")
    ctx.lower_head(model.head)
