"""Model zoo: FCNN, LeNet-5 and ResNet in RVNN / CVNN / SCVNN flavours.

Flavours (Table I of the paper):

* **RVNN** -- real-valued software reference network.
* **CVNN** -- complex-valued network with conventional (amplitude-only) input
  assignment; deployable on the conventional ONN [10].  This is the "Orig."
  column of Table II and the mutual-learning teacher.
* **SCVNN** -- split complex-valued network whose input width/channels are
  reduced by a real-to-complex data assignment scheme; deployable on the
  proposed split ONN.  This is the "Prop." column of Table II.
"""

from repro.models.fcnn import RealFCNN, ComplexFCNN
from repro.models.lenet import RealLeNet5, ComplexLeNet5
from repro.models.resnet import RealResNet, ComplexResNet, resnet_depth_to_blocks
from repro.models.factory import ModelSpec, build_model, complex_trunk_widths

__all__ = [
    "RealFCNN",
    "ComplexFCNN",
    "RealLeNet5",
    "ComplexLeNet5",
    "RealResNet",
    "ComplexResNet",
    "resnet_depth_to_blocks",
    "ModelSpec",
    "build_model",
    "complex_trunk_widths",
]
