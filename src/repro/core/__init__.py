"""The OplixNet framework: the paper's primary contribution.

The workflow (Fig. 2 of the paper) is::

    real dataset -> data assignment -> optical complex encoder -> split ONN
                 -> learnable complex decoder -> real logits

    SCVNN <-> CVNN mutual learning restores the accuracy lost by assignment;
    trained parameters are mapped to MZI phases and deployed on the photonic
    circuit.

This package contains the learnable decoder heads, the trainer, the mutual
learning (knowledge distillation) loop, the experiment configuration objects,
the model-level area analysis and the photonic deployment path.
"""

from repro.core.decoders import (
    DecoderHead,
    MergeDecoderHead,
    LinearDecoderHead,
    UnitaryDecoderHead,
    CoherentDecoderHead,
    PhotodiodeHead,
    UnitaryLinear,
    build_decoder_head,
    DECODER_CHOICES,
)
from repro.core.config import ExperimentConfig, TrainingConfig
from repro.core.training import Trainer, TrainingHistory, evaluate_accuracy
from repro.core.distillation import MutualLearningTrainer, MutualLearningResult
from repro.core.area_analysis import model_area_report, compare_area
from repro.core.pipeline import OplixNet
from repro.core.deploy import deploy_linear_model, deploy_model, DeployedModel
from repro.core.graph_ir import GraphNode, GraphProgram
from repro.core.lowering import (
    LoweredProgram,
    LoweringContext,
    lower_model,
    lower_to_graph,
    register_head_lowering,
    register_lowering,
    register_model_lowering,
)
from repro.core.compile import (
    CompiledProgram,
    CompileOptions,
    HardwareTarget,
    compile,
)

__all__ = [
    "DecoderHead",
    "MergeDecoderHead",
    "LinearDecoderHead",
    "UnitaryDecoderHead",
    "CoherentDecoderHead",
    "PhotodiodeHead",
    "UnitaryLinear",
    "build_decoder_head",
    "DECODER_CHOICES",
    "ExperimentConfig",
    "TrainingConfig",
    "Trainer",
    "TrainingHistory",
    "evaluate_accuracy",
    "MutualLearningTrainer",
    "MutualLearningResult",
    "model_area_report",
    "compare_area",
    "OplixNet",
    "deploy_linear_model",
    "deploy_model",
    "LoweredProgram",
    "lower_model",
    "DeployedModel",
    "GraphNode",
    "GraphProgram",
    "LoweringContext",
    "lower_to_graph",
    "register_head_lowering",
    "register_lowering",
    "register_model_lowering",
    "CompiledProgram",
    "CompileOptions",
    "HardwareTarget",
    "compile",
]
