"""Model-level MZI area analysis.

Walks a model's modules and accounts every weight matrix that would be mapped
onto MZI meshes: real/complex linear layers, real/complex convolution kernels
(lowered to im2col matrices) and unitary decoder layers.  Batch norms, biases
and activations live in the electronic domain and cost no MZIs.
"""

from __future__ import annotations

from typing import Dict

from repro.core.decoders import UnitaryLinear
from repro.nn.complex import ComplexConv2d, ComplexLinear
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.photonics.area import (
    AreaReport,
    LayerArea,
    count_conv_layer,
    count_linear_layer,
    mzi_count_unitary,
)


def model_area_report(model: Module) -> AreaReport:
    """Count the MZIs of every matrix-shaped layer in ``model``."""
    report = AreaReport()
    for name, module in model.named_modules():
        label = name or type(module).__name__
        if isinstance(module, UnitaryLinear):
            report.add(LayerArea(name=label, rows=module.features, cols=module.features,
                                 mzis=mzi_count_unitary(module.features),
                                 parameters=2 * module.features * module.features))
        elif isinstance(module, ComplexLinear):
            report.add(count_linear_layer(label, module.out_features, module.in_features,
                                          complex_valued=True))
        elif isinstance(module, Linear):
            report.add(count_linear_layer(label, module.out_features, module.in_features,
                                          complex_valued=False))
        elif isinstance(module, ComplexConv2d):
            report.add(count_conv_layer(label, module.out_channels, module.in_channels,
                                        module.kernel_size, complex_valued=True))
        elif isinstance(module, Conv2d):
            report.add(count_conv_layer(label, module.out_channels, module.in_channels,
                                        module.kernel_size, complex_valued=False))
    return report


def compare_area(proposed: Module, baseline: Module) -> Dict[str, float]:
    """Compare the MZI area of two models.

    Returns a dictionary with the totals and the fractional reduction of
    ``proposed`` relative to ``baseline`` (the quantity reported in Table II).
    """
    proposed_report = model_area_report(proposed)
    baseline_report = model_area_report(baseline)
    return {
        "proposed_mzis": proposed_report.total_mzis,
        "baseline_mzis": baseline_report.total_mzis,
        "reduction": proposed_report.reduction_versus(baseline_report),
        "proposed_parameters": proposed_report.total_parameters,
        "baseline_parameters": baseline_report.total_parameters,
    }
