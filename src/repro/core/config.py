"""Configuration objects for training runs and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run.

    The defaults are CPU-scale; the paper's GPU-scale schedules simply use
    more epochs and larger batches with the same structure.
    """

    epochs: int = 10
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"              # "sgd" or "adam"
    scheduler: str = "cosine"           # "cosine", "multistep" or "none"
    milestones: Tuple[int, ...] = ()
    grad_clip: Optional[float] = 5.0
    label_smoothing: float = 0.0
    #: knowledge-distillation mixing factor alpha of Eqs. (3)/(4); the paper uses 1.0
    distillation_alpha: float = 1.0
    #: softmax temperature of the distillation loss
    distillation_temperature: float = 2.0
    #: lower the training step to a compiled execution plan once per batch
    #: shape (bit-identical to the eager tape; falls back automatically on
    #: models the tracer cannot replay)
    compile_train_step: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")
        if self.scheduler not in ("cosine", "multistep", "none"):
            raise ValueError("scheduler must be 'cosine', 'multistep' or 'none'")
        if self.distillation_alpha < 0:
            raise ValueError("distillation_alpha must be non-negative")


@dataclass
class ExperimentConfig:
    """Top-level description of one OplixNet experiment.

    Combines the model architecture, the dataset stand-in, the data assignment
    scheme, the decoder and the training schedule.  The experiment harnesses in
    :mod:`repro.experiments` construct these for every table/figure entry.
    """

    name: str
    architecture: str = "fcnn"
    dataset: str = "mnist"              # "mnist", "cifar10" or "cifar100"
    num_classes: int = 10
    image_size: Tuple[int, int] = (28, 28)
    channels: int = 1
    assignment: str = "SI"
    decoder: str = "merge"
    depth: int = 20
    width_divider: float = 1.0
    #: LeNet convolution geometry; the paper uses 5x5 valid convolutions, the
    #: CPU-scale presets switch to 3x3 "same" so small images remain usable
    lenet_kernel: int = 5
    lenet_padding: int = 0
    train_samples: int = 1500
    test_samples: int = 300
    training: TrainingConfig = field(default_factory=TrainingConfig)
    teacher_depth: Optional[int] = None   # e.g. 56 for the ResNet teachers
    seed: int = 0

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.channels, *self.image_size)
