"""Compiler-style lowering of trained complex models onto photonic stages.

``lower_model`` walks a supported complex model and lowers every layer to a
*photonic stage* -- the "Paras -> phase mapping -> deploy phases" arrow of
Fig. 2 generalised beyond fully connected trunks:

* :class:`LinearStage` -- a ``ComplexLinear`` weight matrix deployed via SVD
  onto two MZI meshes (optionally followed by an electro-optic CReLU).
* :class:`Conv2dStage` -- a ``ComplexConv2d`` kernel lowered to its im2col
  matrix ``(out_channels, in_channels * kh * kw)`` on meshes; the forward pass
  extracts complex patches and streams them through the mesh engine as one
  batch (``batch * out_h * out_w`` patch vectors per image batch).
* :class:`AvgPool2dStage` / :class:`FlattenStage` -- linear structural ops
  (average pooling is realisable with fixed couplers; in this simulation both
  run array-level on the complex amplitudes).

Every stage is *batch-first*: ``forward`` takes ``(batch, n)`` feature
batches (or ``(batch, channels, height, width)`` image batches) and composes
with the leading trials axes that noise-ensemble meshes introduce, so a whole
Monte-Carlo sweep of a deployed CNN runs as a single vectorized pass.

The decoder heads are lowered by :func:`lower_decoder_head`, which also
builds the electronic readout closure (photodiode / coherent detection plus
per-class calibration).  :func:`repro.core.deploy.deploy_model` wraps the
lowered program into a :class:`~repro.core.deploy.DeployedModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.core.decoders import (
    CoherentDecoderHead,
    DecoderHead,
    LinearDecoderHead,
    MergeDecoderHead,
    PhotodiodeHead,
    UnitaryDecoderHead,
)
from repro.nn.complex import ComplexConv2d, ComplexLinear, CReLU
from repro.nn.complex.cmodule import ComplexAvgPool2d, ComplexFlatten, ComplexSequential
from repro.photonics.circuit import PhotonicLinearLayer, split_relu
from repro.photonics.noise import PhaseNoiseModel

IntPair = Union[int, Tuple[int, int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    return tuple(value) if isinstance(value, (tuple, list)) else (int(value), int(value))


def complex_im2col(signal: np.ndarray, kernel_size: Tuple[int, int],
                   stride: Tuple[int, int],
                   padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract convolution patches from complex feature maps, batch-first.

    Parameters
    ----------
    signal:
        Complex array of shape ``(..., channels, height, width)``; any number
        of leading axes (batch, trials, ...) is preserved.

    Returns
    -------
    patches, (out_h, out_w):
        ``patches`` has shape ``(..., out_h * out_w, channels * kh * kw)``
        with the feature axis in ``(channel, kh, kw)`` order -- the same
        layout ``ComplexConv2d.weight_matrix()`` flattens the kernel to, so a
        convolution is exactly ``patches @ weight_matrix().T``.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    signal = np.asarray(signal, dtype=complex)
    if signal.ndim < 3:
        raise ValueError("complex_im2col expects (..., channels, height, width)")
    if ph or pw:
        pad_width = [(0, 0)] * (signal.ndim - 2) + [(ph, ph), (pw, pw)]
        signal = np.pad(signal, pad_width)
    windows = np.lib.stride_tricks.sliding_window_view(signal, (kh, kw), axis=(-2, -1))
    windows = windows[..., ::sh, ::sw, :, :]        # (..., C, out_h, out_w, kh, kw)
    channels = windows.shape[-5]
    out_h, out_w = windows.shape[-4], windows.shape[-3]
    windows = np.moveaxis(windows, -5, -3)          # (..., out_h, out_w, C, kh, kw)
    patches = windows.reshape(windows.shape[:-5] + (out_h * out_w, channels * kh * kw))
    return patches, (out_h, out_w)


# --------------------------------------------------------------------------- #
# photonic stages
# --------------------------------------------------------------------------- #
@dataclass
class LinearStage:
    """One photonic linear layer plus whether an electro-optic CReLU follows it."""

    layer: PhotonicLinearLayer
    activation_after: bool = False

    @property
    def mzi_count(self) -> int:
        return self.layer.mzi_count

    def forward(self, signal: np.ndarray) -> np.ndarray:
        """Apply the deployed matrix to ``(*trials, batch, n)`` amplitudes."""
        signal = self.layer(signal)
        if self.activation_after:
            signal = split_relu(signal)
        return signal

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "LinearStage":
        return LinearStage(
            layer=self.layer.with_noise(noise, quantization_bits, trials=trials),
            activation_after=self.activation_after)


@dataclass
class Conv2dStage:
    """A complex convolution deployed as its im2col matrix on MZI meshes.

    ``forward`` extracts the complex patches of every image in the batch and
    streams them through the deployed kernel matrix as one
    ``(batch * out_h * out_w, in_channels * kh * kw)`` mesh batch -- the
    "weight-sharing" of the convolution becomes mesh reuse.  The complex bias
    (one per output channel) is applied electronically by the wrapped layer.
    """

    layer: PhotonicLinearLayer
    in_channels: int
    out_channels: int
    kernel_size: Tuple[int, int]
    stride: Tuple[int, int]
    padding: Tuple[int, int]
    activation_after: bool = False

    @property
    def mzi_count(self) -> int:
        return self.layer.mzi_count

    def forward(self, signal: np.ndarray) -> np.ndarray:
        """Convolve ``(*trials, batch, channels, height, width)`` amplitudes."""
        signal = np.asarray(signal, dtype=complex)
        if signal.ndim < 4:
            raise ValueError("Conv2dStage expects (..., batch, channels, height, width)")
        if signal.shape[-3] != self.in_channels:
            raise ValueError(f"stage {self.layer.name!r} expects {self.in_channels} "
                             f"input channels, got {signal.shape[-3]}")
        batch = signal.shape[-4]
        patches, (out_h, out_w) = complex_im2col(signal, self.kernel_size,
                                                 self.stride, self.padding)
        flat = patches.reshape(patches.shape[:-3] + (batch * out_h * out_w,
                                                     patches.shape[-1]))
        outputs = self.layer(flat)                  # (*trials, batch * L, out_channels)
        outputs = outputs.reshape(outputs.shape[:-2]
                                  + (batch, out_h * out_w, self.out_channels))
        outputs = np.swapaxes(outputs, -1, -2)
        outputs = outputs.reshape(outputs.shape[:-1] + (out_h, out_w))
        if self.activation_after:
            outputs = split_relu(outputs)
        return outputs

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "Conv2dStage":
        return Conv2dStage(
            layer=self.layer.with_noise(noise, quantization_bits, trials=trials),
            in_channels=self.in_channels, out_channels=self.out_channels,
            kernel_size=self.kernel_size, stride=self.stride, padding=self.padding,
            activation_after=self.activation_after)


@dataclass
class AvgPool2dStage:
    """Complex average pooling (linear; realisable with fixed couplers)."""

    kernel_size: Tuple[int, int]
    stride: Tuple[int, int]

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        kh, kw = self.kernel_size
        sh, sw = self.stride
        windows = np.lib.stride_tricks.sliding_window_view(signal, (kh, kw),
                                                           axis=(-2, -1))
        return windows[..., ::sh, ::sw, :, :].mean(axis=(-2, -1))

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "AvgPool2dStage":
        return self


@dataclass
class FlattenStage:
    """Flatten ``(..., channels, height, width)`` maps into feature vectors."""

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        if signal.ndim < 4:
            raise ValueError("FlattenStage expects (..., batch, channels, height, width)")
        return signal.reshape(signal.shape[:-3] + (-1,))

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "FlattenStage":
        return self


PhotonicStage = Union[LinearStage, Conv2dStage, AvgPool2dStage, FlattenStage]


# --------------------------------------------------------------------------- #
# module lowering rules
# --------------------------------------------------------------------------- #
def _complex_bias(layer) -> Optional[np.ndarray]:
    if layer.bias_real is None:
        return None
    return layer.bias_real.data + 1j * layer.bias_imag.data


def lower_complex_linear(layer: ComplexLinear, name: str,
                         method: str = "clements") -> LinearStage:
    """Lower one ``ComplexLinear`` onto an SVD pair of MZI meshes."""
    photonic = PhotonicLinearLayer.from_weight(layer.complex_weight(),
                                               bias=_complex_bias(layer),
                                               method=method, name=name)
    return LinearStage(layer=photonic)


def lower_complex_conv2d(layer: ComplexConv2d, name: str,
                         method: str = "clements") -> Conv2dStage:
    """Lower one ``ComplexConv2d`` to its im2col matrix on MZI meshes."""
    photonic = PhotonicLinearLayer.from_weight(layer.weight_matrix(),
                                               bias=_complex_bias(layer),
                                               method=method, name=name)
    return Conv2dStage(layer=photonic,
                       in_channels=layer.in_channels, out_channels=layer.out_channels,
                       kernel_size=_as_pair(layer.kernel_size),
                       stride=_as_pair(layer.stride), padding=_as_pair(layer.padding))


def lower_sequential(modules, method: str = "clements",
                     prefix: str = "trunk") -> List[PhotonicStage]:
    """Lower a chain of complex modules into photonic stages.

    ``CReLU`` modules are folded into the preceding linear/conv stage as its
    electro-optic activation; pooling and flatten become structural stages.
    Unsupported module types raise ``TypeError``.
    """
    from repro.models.lenet import ComplexLinearWithActivation  # avoid an import cycle

    stages: List[PhotonicStage] = []
    for index, module in enumerate(modules):
        name = f"{prefix}.{index}"
        if isinstance(module, CReLU):
            if not stages or not hasattr(stages[-1], "activation_after"):
                raise TypeError("cannot lower a CReLU that does not follow a "
                                "linear or convolution layer")
            stages[-1].activation_after = True
        elif isinstance(module, ComplexLinearWithActivation):
            stage = lower_complex_linear(module.linear, name, method)
            stage.activation_after = True
            stages.append(stage)
        elif isinstance(module, ComplexLinear):
            stages.append(lower_complex_linear(module, name, method))
        elif isinstance(module, ComplexConv2d):
            stages.append(lower_complex_conv2d(module, name, method))
        elif isinstance(module, ComplexAvgPool2d):
            kernel = _as_pair(module.kernel_size)
            stride = kernel if module.stride is None else _as_pair(module.stride)
            stages.append(AvgPool2dStage(kernel_size=kernel, stride=stride))
        elif isinstance(module, ComplexFlatten):
            stages.append(FlattenStage())
        elif isinstance(module, ComplexSequential):
            stages.extend(lower_sequential(module, method, prefix=name))
        else:
            raise TypeError(f"cannot lower module of type {type(module).__name__} "
                            "onto photonic stages")
    return stages


def lower_decoder_head(head: DecoderHead, method: str = "clements"
                       ) -> Tuple[List[PhotonicStage], Callable[[np.ndarray], np.ndarray]]:
    """Lower a decoder head: extra photonic stages plus the detector readout.

    The per-class electronic calibration (scale + offset of the photocurrents)
    trained with the head is replicated digitally inside the readout closure --
    it lives in the electrical domain and costs no optical area.
    """
    num_classes = head.num_classes
    scale, bias = head.calibration.as_arrays()

    def calibrated(logits: np.ndarray) -> np.ndarray:
        return logits * scale + bias

    def paired_power(signal: np.ndarray) -> np.ndarray:
        power = np.abs(signal) ** 2
        summed = power[..., :num_classes] + power[..., num_classes:2 * num_classes]
        return calibrated(np.sqrt(summed + 1e-12))

    if isinstance(head, MergeDecoderHead):
        stages = [lower_complex_linear(head.merged_layer, "head.merged", method)]
        return stages, paired_power
    if isinstance(head, LinearDecoderHead):
        stages = [
            lower_complex_linear(head.last_layer, "head.last", method),
            lower_complex_linear(head.decoder_layer, "head.decoder", method),
        ]
        return stages, paired_power
    if isinstance(head, UnitaryDecoderHead):
        last = lower_complex_linear(head.last_layer, "head.last", method)
        unitary_weight = head.unitary.complex_weight()
        # the zero-padded modes carry no light, so deploying the first C columns
        # of the unitary as a 2C x C matrix is exactly equivalent
        unitary_stage = LinearStage(PhotonicLinearLayer.from_weight(
            unitary_weight[:, :head.num_classes], method=method, name="head.unitary"))
        return [last, unitary_stage], paired_power
    if isinstance(head, CoherentDecoderHead):
        stages = [lower_complex_linear(head.last_layer, "head.last", method)]

        def coherent_readout(signal: np.ndarray) -> np.ndarray:
            from repro.photonics.detectors import CoherentDetector

            return calibrated(CoherentDetector().detect(signal).real)

        return stages, coherent_readout
    if isinstance(head, PhotodiodeHead):
        stages = [lower_complex_linear(head.last_layer, "head.last", method)]

        def power_readout(signal: np.ndarray) -> np.ndarray:
            return calibrated(np.abs(signal))

        return stages, power_readout
    raise TypeError(f"cannot deploy decoder head of type {type(head).__name__}")


# --------------------------------------------------------------------------- #
# model lowering
# --------------------------------------------------------------------------- #
@dataclass
class LoweredProgram:
    """A model lowered to photonic stages plus its electronic readout.

    ``input_kind`` records what the first stage consumes: ``"flat"`` feature
    vectors (FCNN trunks) or ``"image"`` maps ``(batch, channels, h, w)``
    (convolutional trunks).
    """

    stages: List[PhotonicStage]
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    input_kind: str = "flat"

    @property
    def mzi_count(self) -> int:
        return sum(stage.mzi_count for stage in self.stages)


def lower_model(model, method: str = "clements") -> LoweredProgram:
    """Lower a trained complex model into a photonic stage program.

    Supported families: :class:`~repro.models.fcnn.ComplexFCNN` (linear
    trunk) and :class:`~repro.models.lenet.ComplexLeNet5` (convolutional
    trunk, lowered via im2col).  Residual architectures (ComplexResNet) are
    not lowerable to a pure stage chain and raise ``TypeError``.
    """
    from repro.models.fcnn import ComplexFCNN  # imported lazily to avoid a cycle
    from repro.models.lenet import ComplexLeNet5

    model.eval()
    if isinstance(model, ComplexFCNN):
        stages = lower_sequential(model.trunk, method, prefix="trunk")
        input_kind = "flat"
    elif isinstance(model, ComplexLeNet5):
        stages = lower_sequential(model.features, method, prefix="features")
        stages.append(FlattenStage())
        stages.extend(lower_sequential(model.trunk, method, prefix="trunk"))
        input_kind = "image"
    else:
        raise TypeError(
            f"cannot lower model of type {type(model).__name__}; supported "
            "families are ComplexFCNN and ComplexLeNet5 (residual models have "
            "no pure stage-chain lowering)")
    head_stages, readout = lower_decoder_head(model.head, method)
    stages.extend(head_stages)
    return LoweredProgram(stages=stages, readout=readout,
                          num_classes=model.num_classes, input_kind=input_kind)
