"""Compiler-style lowering of trained complex models onto photonic programs.

Lowering turns every layer of a supported complex model into a *node op* --
the "Paras -> phase mapping -> deploy phases" arrow of Fig. 2 generalised
beyond fully connected trunks:

* :class:`LinearStage` -- a ``ComplexLinear`` weight matrix deployed via SVD
  onto two MZI meshes (optionally followed by an electro-optic CReLU).
* :class:`Conv2dStage` -- a ``ComplexConv2d`` kernel lowered to its im2col
  matrix ``(out_channels, in_channels * kh * kw)`` on meshes; the forward pass
  extracts complex patches and streams them through the mesh engine as one
  batch (``batch * out_h * out_w`` patch vectors per image batch).
* :class:`AvgPool2dStage` / :class:`GlobalAvgPool2dStage` /
  :class:`FlattenStage` -- linear structural ops (average pooling is
  realisable with fixed couplers; in this simulation all run array-level on
  the complex amplitudes).
* electronic ops (:class:`~repro.core.graph_ir.ElectronicBatchNorm`,
  :class:`~repro.core.graph_ir.ElectronicAdd`,
  :class:`~repro.core.graph_ir.ElectronicActivation`) for everything that
  lives in the electrical domain: split batch norms, skip additions and
  activations that cannot fold into a preceding mesh stage.

How a module lowers is decided by an extensible **rule registry**: decorate a
function with ``@register_lowering(LayerType)`` and any chain or graph walk
will dispatch to it (nearest match in the module's MRO wins).  Models
register whole-model rules with ``@register_model_lowering`` (the built-in
families register theirs in :mod:`repro.models`) and decoder heads with
``@register_head_lowering``.  Rules receive a :class:`LoweringContext`, which
carries the compile policy, the :class:`~repro.core.graph_ir.GraphBuilder`
being filled, and the deferred weight-deployment queue: weights requested via
:meth:`LoweringContext.deploy_weight` are SVD-factored together at the end of
the walk so that all same-size unitaries of the model decompose as one
batched Reck/Clements stack
(:func:`repro.photonics.svd_mapping.svd_decompose_many`).

Every stage is *batch-first*: ``forward`` takes ``(batch, n)`` feature
batches (or ``(batch, channels, height, width)`` image batches) and composes
with the leading trials axes that noise-ensemble meshes introduce, so a whole
Monte-Carlo sweep of a deployed model runs as a single vectorized pass.

The historical chain API (:func:`lower_model` / :func:`lower_sequential` /
:class:`LoweredProgram`) remains as a deprecated veneer over the graph
compiler for purely sequential models; graph-shaped models (ComplexResNet)
must go through :func:`repro.compile`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.core.decoders import (
    CoherentDecoderHead,
    DecoderHead,
    LinearDecoderHead,
    MergeDecoderHead,
    PhotodiodeHead,
    UnitaryDecoderHead,
)
from repro.core.graph_ir import (
    INPUT,
    ElectronicActivation,
    ElectronicBatchNorm,
    GraphBuilder,
    GraphNode,
    GraphProgram,
)
from repro.nn.complex import ComplexConv2d, ComplexLinear, CReLU
from repro.nn.complex.cmodule import (
    ComplexAvgPool2d,
    ComplexFlatten,
    ComplexGlobalAvgPool2d,
    ComplexSequential,
)
from repro.nn.complex.cnorm import ComplexBatchNorm1d, ComplexBatchNorm2d
from repro.photonics.circuit import PhotonicLinearLayer, split_relu
from repro.photonics.mzi_mesh import MeshDecomposition
from repro.photonics.noise import PhaseNoiseModel
from repro.photonics.svd_mapping import svd_decompose_many

IntPair = Union[int, Tuple[int, int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    return tuple(value) if isinstance(value, (tuple, list)) else (int(value), int(value))


def complex_im2col(signal: np.ndarray, kernel_size: Tuple[int, int],
                   stride: Tuple[int, int],
                   padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Extract convolution patches from complex feature maps, batch-first.

    Parameters
    ----------
    signal:
        Complex array of shape ``(..., channels, height, width)``; any number
        of leading axes (batch, trials, ...) is preserved.

    Returns
    -------
    patches, (out_h, out_w):
        ``patches`` has shape ``(..., out_h * out_w, channels * kh * kw)``
        with the feature axis in ``(channel, kh, kw)`` order -- the same
        layout ``ComplexConv2d.weight_matrix()`` flattens the kernel to, so a
        convolution is exactly ``patches @ weight_matrix().T``.
    """
    kh, kw = kernel_size
    sh, sw = stride
    ph, pw = padding
    signal = np.asarray(signal, dtype=complex)
    if signal.ndim < 3:
        raise ValueError("complex_im2col expects (..., channels, height, width)")
    if ph or pw:
        pad_width = [(0, 0)] * (signal.ndim - 2) + [(ph, ph), (pw, pw)]
        signal = np.pad(signal, pad_width)
    windows = np.lib.stride_tricks.sliding_window_view(signal, (kh, kw), axis=(-2, -1))
    windows = windows[..., ::sh, ::sw, :, :]        # (..., C, out_h, out_w, kh, kw)
    channels = windows.shape[-5]
    out_h, out_w = windows.shape[-4], windows.shape[-3]
    windows = np.moveaxis(windows, -5, -3)          # (..., out_h, out_w, C, kh, kw)
    patches = windows.reshape(windows.shape[:-5] + (out_h * out_w, channels * kh * kw))
    return patches, (out_h, out_w)


# --------------------------------------------------------------------------- #
# photonic stages
# --------------------------------------------------------------------------- #
@dataclass
class LinearStage:
    """One photonic linear layer plus whether an electro-optic CReLU follows it."""

    layer: PhotonicLinearLayer
    activation_after: bool = False

    @property
    def mzi_count(self) -> int:
        return self.layer.mzi_count

    def forward(self, signal: np.ndarray) -> np.ndarray:
        """Apply the deployed matrix to ``(*trials, batch, n)`` amplitudes."""
        signal = self.layer(signal)
        if self.activation_after:
            signal = split_relu(signal)
        return signal

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "LinearStage":
        return LinearStage(
            layer=self.layer.with_noise(noise, quantization_bits, trials=trials),
            activation_after=self.activation_after)


@dataclass
class Conv2dStage:
    """A complex convolution deployed as its im2col matrix on MZI meshes.

    ``forward`` extracts the complex patches of every image in the batch and
    streams them through the deployed kernel matrix as one
    ``(batch * out_h * out_w, in_channels * kh * kw)`` mesh batch -- the
    "weight-sharing" of the convolution becomes mesh reuse.  The complex bias
    (one per output channel) is applied electronically by the wrapped layer.
    """

    layer: PhotonicLinearLayer
    in_channels: int
    out_channels: int
    kernel_size: Tuple[int, int]
    stride: Tuple[int, int]
    padding: Tuple[int, int]
    activation_after: bool = False

    @property
    def mzi_count(self) -> int:
        return self.layer.mzi_count

    def extract_patches(self, signal: np.ndarray) -> Tuple[np.ndarray, int, int, int]:
        """Flatten a batch of feature maps into one im2col mesh batch.

        Returns ``(flat, batch, out_h, out_w)`` with ``flat`` of shape
        ``(..., batch * out_h * out_w, in_channels * kh * kw)``.  Shared by
        :meth:`forward` and the plan runtime's fused conv instruction, so
        both executors use one copy of the geometry.
        """
        signal = np.asarray(signal, dtype=complex)
        if signal.ndim < 4:
            raise ValueError("Conv2dStage expects (..., batch, channels, height, width)")
        if signal.shape[-3] != self.in_channels:
            raise ValueError(f"stage {self.layer.name!r} expects {self.in_channels} "
                             f"input channels, got {signal.shape[-3]}")
        batch = signal.shape[-4]
        patches, (out_h, out_w) = complex_im2col(signal, self.kernel_size,
                                                 self.stride, self.padding)
        flat = patches.reshape(patches.shape[:-3] + (batch * out_h * out_w,
                                                     patches.shape[-1]))
        return flat, batch, out_h, out_w

    def assemble_maps(self, outputs: np.ndarray, batch: int, out_h: int,
                      out_w: int) -> np.ndarray:
        """Reshape a ``(..., batch * L, out_channels)`` mesh batch back to maps."""
        outputs = outputs.reshape(outputs.shape[:-2]
                                  + (batch, out_h * out_w, self.out_channels))
        outputs = np.swapaxes(outputs, -1, -2)
        return outputs.reshape(outputs.shape[:-1] + (out_h, out_w))

    def forward(self, signal: np.ndarray) -> np.ndarray:
        """Convolve ``(*trials, batch, channels, height, width)`` amplitudes."""
        flat, batch, out_h, out_w = self.extract_patches(signal)
        outputs = self.layer(flat)                  # (*trials, batch * L, out_channels)
        outputs = self.assemble_maps(outputs, batch, out_h, out_w)
        if self.activation_after:
            outputs = split_relu(outputs)
        return outputs

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "Conv2dStage":
        return Conv2dStage(
            layer=self.layer.with_noise(noise, quantization_bits, trials=trials),
            in_channels=self.in_channels, out_channels=self.out_channels,
            kernel_size=self.kernel_size, stride=self.stride, padding=self.padding,
            activation_after=self.activation_after)


@dataclass
class AvgPool2dStage:
    """Complex average pooling (linear; realisable with fixed couplers)."""

    kernel_size: Tuple[int, int]
    stride: Tuple[int, int]

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        kh, kw = self.kernel_size
        sh, sw = self.stride
        windows = np.lib.stride_tricks.sliding_window_view(signal, (kh, kw),
                                                           axis=(-2, -1))
        return windows[..., ::sh, ::sw, :, :].mean(axis=(-2, -1))

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "AvgPool2dStage":
        return self


@dataclass
class GlobalAvgPool2dStage:
    """Global average pooling of ``(..., channels, height, width)`` maps."""

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        if signal.ndim < 4:
            raise ValueError("GlobalAvgPool2dStage expects "
                             "(..., batch, channels, height, width)")
        return signal.mean(axis=(-2, -1))

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "GlobalAvgPool2dStage":
        return self


@dataclass
class FlattenStage:
    """Flatten ``(..., channels, height, width)`` maps into feature vectors."""

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        if signal.ndim < 4:
            raise ValueError("FlattenStage expects (..., batch, channels, height, width)")
        return signal.reshape(signal.shape[:-3] + (-1,))

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "FlattenStage":
        return self


PhotonicStage = Union[LinearStage, Conv2dStage, AvgPool2dStage,
                      GlobalAvgPool2dStage, FlattenStage]


# --------------------------------------------------------------------------- #
# lowering-rule registries
# --------------------------------------------------------------------------- #
_LAYER_RULES: Dict[Type, Callable] = {}
_HEAD_RULES: Dict[Type, Callable] = {}
_MODEL_RULES: Dict[Type, Callable] = {}


def _register(registry: Dict[Type, Callable], types: Tuple[Type, ...]) -> Callable:
    def decorator(rule: Callable) -> Callable:
        for module_type in types:
            registry[module_type] = rule
        return rule
    return decorator


def register_lowering(*module_types: Type) -> Callable:
    """Register a lowering rule for one or more module types.

    The rule is called as ``rule(module, name, ctx)`` with a
    :class:`LoweringContext`; it emits nodes through the context.  Dispatch
    walks the module's MRO, so a rule registered for a base class covers its
    subclasses until a more specific rule is registered.
    """
    return _register(_LAYER_RULES, module_types)


def register_head_lowering(*head_types: Type) -> Callable:
    """Register a decoder-head rule, called as ``rule(head, ctx) -> readout``."""
    return _register(_HEAD_RULES, head_types)


def register_model_lowering(*model_types: Type) -> Callable:
    """Register a whole-model rule, called as ``rule(model, ctx)``.

    The rule walks the model, emits the graph through the context (setting
    ``ctx.input_kind``) and lowers the decoder head via ``ctx.lower_head``.
    """
    return _register(_MODEL_RULES, model_types)


def _find_rule(registry: Dict[Type, Callable], obj: Any, what: str) -> Callable:
    for klass in type(obj).__mro__:
        rule = registry.get(klass)
        if rule is not None:
            return rule
    known = sorted(klass.__name__ for klass in registry)
    raise TypeError(f"cannot {what} of type {type(obj).__name__} onto photonic "
                    f"hardware; registered types: {known} "
                    "(add one with @register_lowering)")


class LoweringContext:
    """Carries the compile policy and the graph being built through a walk.

    ``cursor`` names the node whose output the next emitted chain node will
    consume; graph rules (e.g. residual blocks) may reposition it to branch
    and join.  Weight matrices requested through :meth:`deploy_weight` are
    deployed together in :meth:`finalize` so that all same-size SVD factors
    of the walk decompose as one batched Reck/Clements stack.

    ``backend`` is the per-mesh execution policy stamped onto every deployed
    mesh (any of :data:`MeshDecomposition.BACKENDS`, including the native
    ``"cchain"`` kernel) -- the lowering walk is the single place the
    :class:`~repro.core.compile.CompileOptions` selection reaches the
    photonics layer, which is how compiled programs, execution plans and
    sharded workers all end up on the same kernel.
    """

    def __init__(self, method: str = "clements", backend: str = "auto",
                 dense_dimension_limit: Optional[int] = None,
                 batch_unitaries: bool = True,
                 deploy_fn: Optional[Callable] = None):
        if backend not in MeshDecomposition.BACKENDS:
            raise ValueError(f"unknown mesh backend {backend!r}; "
                             f"choose from {MeshDecomposition.BACKENDS}")
        self.method = method
        self.backend = backend
        self.dense_dimension_limit = dense_dimension_limit
        self.batch_unitaries = batch_unitaries
        # optional replacement for the live svd_decompose_many call in
        # finalize(); the artifact store serves precompiled matrices here
        self.deploy_fn = deploy_fn
        self.builder = GraphBuilder()
        self.cursor: str = INPUT
        self.input_kind: str = "flat"
        self.readout: Optional[Callable[[np.ndarray], np.ndarray]] = None
        self.num_classes: Optional[int] = None
        self._pending: List[Tuple[np.ndarray, PhotonicLinearLayer]] = []

    # ------------------------------------------------------------------ #
    # graph emission
    # ------------------------------------------------------------------ #
    def emit(self, name: str, op: Any, inputs: Optional[Tuple[str, ...]] = None) -> str:
        """Append a node (consuming the cursor by default) and advance the cursor."""
        node_inputs = (self.cursor,) if inputs is None else tuple(inputs)
        self.cursor = self.builder.add(name, op, node_inputs)
        return self.cursor

    def cursor_op(self) -> Optional[Any]:
        """The op the cursor points at (None at the graph input)."""
        return self.builder.op_of(self.cursor)

    # ------------------------------------------------------------------ #
    # registry dispatch
    # ------------------------------------------------------------------ #
    def lower_module(self, module: Any, name: str) -> None:
        _find_rule(_LAYER_RULES, module, "lower module")(module, name, self)

    def lower_chain(self, modules, prefix: str) -> None:
        """Lower an iterable of modules as a sequential chain at the cursor."""
        for index, module in enumerate(modules):
            self.lower_module(module, f"{prefix}.{index}")

    def lower_head(self, head: DecoderHead) -> None:
        """Lower the decoder head and record its electronic readout closure."""
        self.readout = _find_rule(_HEAD_RULES, head, "deploy decoder head")(head, self)
        self.num_classes = head.num_classes

    # ------------------------------------------------------------------ #
    # deferred (batched) weight deployment
    # ------------------------------------------------------------------ #
    def deploy_weight(self, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                      name: str = "layer") -> PhotonicLinearLayer:
        """Queue a weight matrix for batched SVD deployment onto meshes.

        Returns the (not yet populated) photonic layer; its meshes are filled
        in by :meth:`finalize`, grouped with every other queued unitary of
        the same dimension.
        """
        layer = PhotonicLinearLayer(photonic_matrix=None, bias=bias, name=name)
        self._pending.append((np.asarray(weight, dtype=complex), layer))
        return layer

    def finalize(self) -> None:
        """Deploy every queued weight; same-size unitaries share one stack pass.

        With a ``deploy_fn`` installed (the artifact store's warm path) the
        queued weights are handed to it instead of being SVD-factored live;
        the function must return one :class:`PhotonicMatrix` per weight, in
        order.
        """
        if not self._pending:
            return
        weights = [weight for weight, _layer in self._pending]
        if self.deploy_fn is not None:
            matrices = list(self.deploy_fn(weights))
            if len(matrices) != len(weights):
                raise ValueError(f"deploy_fn returned {len(matrices)} matrices "
                                 f"for {len(weights)} weights")
        else:
            matrices = svd_decompose_many(
                weights, method=self.method,
                batch_unitaries=self.batch_unitaries, backend=self.backend,
                dense_dimension_limit=self.dense_dimension_limit)
        for (_weight, layer), matrix in zip(self._pending, matrices):
            layer.photonic_matrix = matrix
        self._pending.clear()

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def _folded(self) -> Tuple[List[GraphNode], str]:
        """Deploy pending weights and run the activation-folding peephole."""
        self.finalize()
        return fold_activation_nodes(self.builder.nodes(), self.cursor)

    def program(self) -> GraphProgram:
        if self.readout is None or self.num_classes is None:
            raise RuntimeError("model rule finished without lowering a decoder "
                               "head (ctx.lower_head was never called)")
        nodes, output = self._folded()
        return GraphProgram(nodes=nodes, output=output, readout=self.readout,
                            num_classes=self.num_classes,
                            input_kind=self.input_kind)


def fold_activation_nodes(nodes: List[GraphNode],
                          output: str) -> Tuple[List[GraphNode], str]:
    """Peephole pass: fold eligible CReLU nodes into their producer stage.

    An :class:`~repro.core.graph_ir.ElectronicActivation` node folds into the
    mesh stage feeding it (as the stage's electro-optic ``activation_after``)
    only when that stage has no *other* consumer -- a producer whose
    pre-activation output also fans out to a skip branch (or is the program
    output) must keep the activation as its own node, otherwise the branch
    would silently receive activated amplitudes.  Runs on the fully built
    graph, where the complete consumer map is known.
    """
    consumers: Dict[str, int] = {}
    for node in nodes:
        for name in node.inputs:
            consumers[name] = consumers.get(name, 0) + 1
    ops_by_name: Dict[str, Any] = {}
    renamed: Dict[str, str] = {}
    kept: List[GraphNode] = []
    for node in nodes:
        inputs = tuple(renamed.get(name, name) for name in node.inputs)
        if isinstance(node.op, ElectronicActivation) and len(node.inputs) == 1:
            producer = node.inputs[0]
            producer_op = ops_by_name.get(producer)     # None for INPUT / folded
            sole_consumer = (consumers.get(producer, 0) == 1 and producer != output)
            if (sole_consumer and producer_op is not None
                    and getattr(producer_op, "activation_after", True) is False):
                producer_op.activation_after = True
                renamed[node.name] = inputs[0]
                continue
        kept.append(GraphNode(name=node.name, op=node.op, inputs=inputs))
        ops_by_name[node.name] = node.op
    return kept, renamed.get(output, output)


# --------------------------------------------------------------------------- #
# built-in layer rules
# --------------------------------------------------------------------------- #
def _complex_bias(layer) -> Optional[np.ndarray]:
    if layer.bias_real is None:
        return None
    return layer.bias_real.data + 1j * layer.bias_imag.data


def _batchnorm_affine(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode real BatchNorm into ``(scale, shift)`` per channel."""
    scale = 1.0 / np.sqrt(bn.running_var + bn.eps)
    if bn.affine:
        scale = bn.weight.data * scale
        shift = bn.bias.data - bn.running_mean * scale
    else:
        shift = -bn.running_mean * scale
    return scale, shift


@register_lowering(ComplexLinear)
def _lower_linear_rule(module: ComplexLinear, name: str, ctx: LoweringContext) -> None:
    layer = ctx.deploy_weight(module.complex_weight(), bias=_complex_bias(module),
                              name=name)
    ctx.emit(name, LinearStage(layer=layer))


@register_lowering(ComplexConv2d)
def _lower_conv2d_rule(module: ComplexConv2d, name: str, ctx: LoweringContext) -> None:
    layer = ctx.deploy_weight(module.weight_matrix(), bias=_complex_bias(module),
                              name=name)
    ctx.emit(name, Conv2dStage(
        layer=layer, in_channels=module.in_channels, out_channels=module.out_channels,
        kernel_size=_as_pair(module.kernel_size), stride=_as_pair(module.stride),
        padding=_as_pair(module.padding)))


@register_lowering(CReLU)
def _lower_crelu_rule(module: CReLU, name: str, ctx: LoweringContext) -> None:
    """Emit an electro-optic activation node.

    Folding into the preceding mesh stage happens in a separate peephole pass
    (:func:`fold_activation_nodes`) once the whole graph is built -- mutating
    the producer here would be unsound when a skip branch also fans out from
    its pre-activation output.
    """
    ctx.emit(name, ElectronicActivation())


@register_lowering(ComplexAvgPool2d)
def _lower_avgpool_rule(module: ComplexAvgPool2d, name: str, ctx: LoweringContext) -> None:
    kernel = _as_pair(module.kernel_size)
    stride = kernel if module.stride is None else _as_pair(module.stride)
    ctx.emit(name, AvgPool2dStage(kernel_size=kernel, stride=stride))


@register_lowering(ComplexGlobalAvgPool2d)
def _lower_global_avgpool_rule(module: ComplexGlobalAvgPool2d, name: str,
                               ctx: LoweringContext) -> None:
    ctx.emit(name, GlobalAvgPool2dStage())


@register_lowering(ComplexFlatten)
def _lower_flatten_rule(module: ComplexFlatten, name: str, ctx: LoweringContext) -> None:
    ctx.emit(name, FlattenStage())


@register_lowering(ComplexSequential)
def _lower_sequential_rule(module: ComplexSequential, name: str,
                           ctx: LoweringContext) -> None:
    ctx.lower_chain(module, name)


@register_lowering(ComplexBatchNorm2d, ComplexBatchNorm1d)
def _lower_batchnorm_rule(module, name: str, ctx: LoweringContext) -> None:
    real_scale, real_shift = _batchnorm_affine(module.bn_real)
    imag_scale, imag_shift = _batchnorm_affine(module.bn_imag)
    ctx.emit(name, ElectronicBatchNorm(
        real_scale=real_scale, real_shift=real_shift,
        imag_scale=imag_scale, imag_shift=imag_shift,
        spatial=isinstance(module, ComplexBatchNorm2d)))


# --------------------------------------------------------------------------- #
# eager single-layer helpers (kept for direct use and tests)
# --------------------------------------------------------------------------- #
def lower_complex_linear(layer: ComplexLinear, name: str,
                         method: str = "clements") -> LinearStage:
    """Lower one ``ComplexLinear`` onto an SVD pair of MZI meshes."""
    photonic = PhotonicLinearLayer.from_weight(layer.complex_weight(),
                                               bias=_complex_bias(layer),
                                               method=method, name=name)
    return LinearStage(layer=photonic)


def lower_complex_conv2d(layer: ComplexConv2d, name: str,
                         method: str = "clements") -> Conv2dStage:
    """Lower one ``ComplexConv2d`` to its im2col matrix on MZI meshes."""
    photonic = PhotonicLinearLayer.from_weight(layer.weight_matrix(),
                                               bias=_complex_bias(layer),
                                               method=method, name=name)
    return Conv2dStage(layer=photonic,
                       in_channels=layer.in_channels, out_channels=layer.out_channels,
                       kernel_size=_as_pair(layer.kernel_size),
                       stride=_as_pair(layer.stride), padding=_as_pair(layer.padding))


def lower_sequential(modules, method: str = "clements",
                     prefix: str = "trunk") -> List[PhotonicStage]:
    """Lower a chain of complex modules into photonic stages.

    Dispatches through the ``@register_lowering`` rule registry.  ``CReLU``
    modules fold into the preceding linear/conv stage as its electro-optic
    activation (:func:`fold_activation_nodes`); pooling and flatten become
    structural stages; unregistered module types raise ``TypeError``.
    """
    ctx = LoweringContext(method=method)
    ctx.lower_chain(modules, prefix)
    nodes, _output = ctx._folded()
    return [node.op for node in nodes]


# --------------------------------------------------------------------------- #
# decoder-head rules
# --------------------------------------------------------------------------- #
def _calibrated(head: DecoderHead) -> Callable[[np.ndarray], np.ndarray]:
    scale, bias = head.calibration.as_arrays()

    def calibrated(logits: np.ndarray) -> np.ndarray:
        return logits * scale + bias

    return calibrated


def _paired_power_readout(head: DecoderHead) -> Callable[[np.ndarray], np.ndarray]:
    num_classes = head.num_classes
    calibrated = _calibrated(head)

    def paired_power(signal: np.ndarray) -> np.ndarray:
        power = np.abs(signal) ** 2
        summed = power[..., :num_classes] + power[..., num_classes:2 * num_classes]
        return calibrated(np.sqrt(summed + 1e-12))

    return paired_power


@register_head_lowering(MergeDecoderHead)
def _lower_merge_head(head: MergeDecoderHead, ctx: LoweringContext):
    layer = ctx.deploy_weight(head.merged_layer.complex_weight(),
                              bias=_complex_bias(head.merged_layer), name="head.merged")
    ctx.emit("head.merged", LinearStage(layer=layer))
    return _paired_power_readout(head)


@register_head_lowering(LinearDecoderHead)
def _lower_linear_head(head: LinearDecoderHead, ctx: LoweringContext):
    for attr, name in (("last_layer", "head.last"), ("decoder_layer", "head.decoder")):
        module = getattr(head, attr)
        layer = ctx.deploy_weight(module.complex_weight(),
                                  bias=_complex_bias(module), name=name)
        ctx.emit(name, LinearStage(layer=layer))
    return _paired_power_readout(head)


@register_head_lowering(UnitaryDecoderHead)
def _lower_unitary_head(head: UnitaryDecoderHead, ctx: LoweringContext):
    last = ctx.deploy_weight(head.last_layer.complex_weight(),
                             bias=_complex_bias(head.last_layer), name="head.last")
    ctx.emit("head.last", LinearStage(layer=last))
    # the zero-padded modes carry no light, so deploying the first C columns
    # of the unitary as a 2C x C matrix is exactly equivalent
    unitary_weight = head.unitary.complex_weight()[:, :head.num_classes]
    unitary = ctx.deploy_weight(unitary_weight, name="head.unitary")
    ctx.emit("head.unitary", LinearStage(layer=unitary))
    return _paired_power_readout(head)


@register_head_lowering(CoherentDecoderHead)
def _lower_coherent_head(head: CoherentDecoderHead, ctx: LoweringContext):
    layer = ctx.deploy_weight(head.last_layer.complex_weight(),
                              bias=_complex_bias(head.last_layer), name="head.last")
    ctx.emit("head.last", LinearStage(layer=layer))
    calibrated = _calibrated(head)

    def coherent_readout(signal: np.ndarray) -> np.ndarray:
        from repro.photonics.detectors import CoherentDetector

        return calibrated(CoherentDetector().detect(signal).real)

    return coherent_readout


@register_head_lowering(PhotodiodeHead)
def _lower_photodiode_head(head: PhotodiodeHead, ctx: LoweringContext):
    layer = ctx.deploy_weight(head.last_layer.complex_weight(),
                              bias=_complex_bias(head.last_layer), name="head.last")
    ctx.emit("head.last", LinearStage(layer=layer))
    calibrated = _calibrated(head)

    def power_readout(signal: np.ndarray) -> np.ndarray:
        return calibrated(np.abs(signal))

    return power_readout


def lower_decoder_head(head: DecoderHead, method: str = "clements"
                       ) -> Tuple[List[PhotonicStage], Callable[[np.ndarray], np.ndarray]]:
    """Lower a decoder head: extra photonic stages plus the detector readout.

    The per-class electronic calibration (scale + offset of the photocurrents)
    trained with the head is replicated digitally inside the readout closure --
    it lives in the electrical domain and costs no optical area.
    """
    ctx = LoweringContext(method=method)
    ctx.lower_head(head)
    nodes, _output = ctx._folded()
    return [node.op for node in nodes], ctx.readout


# --------------------------------------------------------------------------- #
# model lowering
# --------------------------------------------------------------------------- #
@dataclass
class LoweredProgram:
    """A model lowered to photonic stages plus its electronic readout.

    ``input_kind`` records what the first stage consumes: ``"flat"`` feature
    vectors (FCNN trunks) or ``"image"`` maps ``(batch, channels, h, w)``
    (convolutional trunks).
    """

    stages: List[PhotonicStage]
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    input_kind: str = "flat"

    @property
    def mzi_count(self) -> int:
        return sum(stage.mzi_count for stage in self.stages)


def lower_to_graph(model, method: str = "clements", backend: str = "auto",
                   dense_dimension_limit: Optional[int] = None,
                   batch_unitaries: bool = True,
                   deploy_fn: Optional[Callable] = None) -> GraphProgram:
    """Lower a trained complex model into a photonic dataflow graph.

    Dispatches to the model's ``@register_model_lowering`` rule (the built-in
    families -- ComplexFCNN, ComplexLeNet5, ComplexResNet -- register theirs
    in :mod:`repro.models`); switches the model to eval mode so batch norms
    fold their running statistics.  ``deploy_fn`` overrides the live batched
    SVD deployment (see :meth:`LoweringContext.finalize`) -- the artifact
    store's warm path serves precompiled matrices through it.  This is the
    lowering pass behind :func:`repro.compile`.
    """
    # importing the zoo registers the built-in model and block rules; a
    # custom model only needs its own module imported (which constructing the
    # instance already did)
    import repro.models  # noqa: F401

    model.eval()
    rule = _find_rule(_MODEL_RULES, model, "lower model")
    ctx = LoweringContext(method=method, backend=backend,
                          dense_dimension_limit=dense_dimension_limit,
                          batch_unitaries=batch_unitaries,
                          deploy_fn=deploy_fn)
    rule(model, ctx)
    return ctx.program()


def lower_model(model, method: str = "clements") -> LoweredProgram:
    """Deprecated: lower a sequential model into a photonic stage *chain*.

    Thin shim over the graph compiler: builds the program graph and flattens
    it back to the historical stage list.  Only purely sequential models have
    a chain form -- graph-shaped models (ComplexResNet) raise ``TypeError``
    here and must go through :func:`repro.compile`.
    """
    warnings.warn("lower_model() is deprecated; use repro.compile(model) which "
                  "also handles graph-shaped (residual) models",
                  DeprecationWarning, stacklevel=2)
    graph = lower_to_graph(model, method=method)
    try:
        stages = graph.chain_stages()
    except ValueError as error:
        raise TypeError(
            f"model of type {type(model).__name__} lowers to a graph-shaped "
            "program (skip additions / fan-out); it has no stage-chain form. "
            "Use repro.compile(model) instead") from error
    return LoweredProgram(stages=stages, readout=graph.readout,
                          num_classes=graph.num_classes, input_kind=graph.input_kind)
