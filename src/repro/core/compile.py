"""``repro.compile()``: the photonic compiler entry point.

Compiling replaces the historical ``deploy_model`` free functions with an
explicit compiler shape::

    import repro
    from repro.core.compile import CompileOptions, HardwareTarget

    program = repro.compile(
        model,
        target=HardwareTarget(method="clements"),
        options=CompileOptions(backend="auto", dense_dimension_limit=128),
    )
    logits = program.predict_logits(images, scheme)

* :class:`HardwareTarget` describes the hardware the program runs on: the
  mesh decomposition scheme and the non-idealities to bake in at compile
  time (phase-noise model, phase quantization, Monte-Carlo trial count).
* :class:`CompileOptions` is the compiler policy: dense/column backend
  selection, the per-mesh dense-dimension limit (replacing the old
  thread-unsafe ``engine.DENSE_DIMENSION_LIMIT`` global mutation) and
  whether same-size unitaries across the whole model are decomposed as one
  batched Reck/Clements stack.
* :class:`CompiledProgram` wraps the lowered
  :class:`~repro.core.graph_ir.GraphProgram` -- a dataflow graph with
  photonic stage nodes and electronic ops, so residual architectures
  (ComplexResNet) deploy with photonic stages per branch and skip additions
  in the electronic domain -- plus the encoder and readout needed to run the
  full optical pipeline.

Both dataclasses are frozen: two concurrent compiles with different policies
never observe each other, unlike the module-global knobs they replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.graph_ir import GraphProgram
from repro.core.lowering import lower_to_graph
from repro.photonics.encoders import DCComplexEncoder
from repro.photonics.mzi_mesh import MeshDecomposition
from repro.photonics.noise import PhaseNoiseModel

MESH_METHODS = ("clements", "reck")


@dataclass(frozen=True)
class HardwareTarget:
    """Description of the photonic hardware a model is compiled for.

    Parameters
    ----------
    method:
        Mesh decomposition scheme for every deployed unitary (``"clements"``
        or ``"reck"``).
    noise:
        Optional phase-noise model baked into the compiled program (use
        :meth:`PhaseNoiseModel.seeded` for reproducible targets).  Further
        ensembles can still be derived from the clean program with
        :meth:`CompiledProgram.with_noise`.
    quantization_bits:
        Optional DAC resolution of the phase shifters.
    trials:
        Monte-Carlo ensemble size drawn at compile time when ``noise`` is
        set; the program's outputs then carry a leading trials axis.
    """

    method: str = "clements"
    noise: Optional[PhaseNoiseModel] = None
    quantization_bits: Optional[int] = None
    trials: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in MESH_METHODS:
            raise ValueError(f"unknown mesh method {self.method!r}; "
                             f"choose from {MESH_METHODS}")
        if self.trials is not None and self.noise is None:
            raise ValueError("HardwareTarget.trials requires a noise model")


@dataclass(frozen=True)
class CompileOptions:
    """Execution policy threaded explicitly through the compiler.

    Parameters
    ----------
    backend:
        How compiled meshes execute: ``"auto"`` (cached dense matmul up to
        the dense-dimension limit, then the native ``cchain`` kernel when it
        is loaded, then the compiled numpy column program), ``"dense"`` /
        ``"column"`` to force one path, or ``"cchain"`` to request the
        native C chain kernel (logged fallback to the column program on
        hosts without a C toolchain; see
        :mod:`repro.photonics._native`).
    dense_dimension_limit:
        Per-mesh dense/column crossover used by the ``"auto"`` backend.
        ``None`` falls back to the process default
        (``engine.DENSE_DIMENSION_LIMIT``); setting it here is the supported
        replacement for the deprecated ``set_dense_dimension_limit`` global
        mutation and is safe under concurrent compiles.
    batch_unitaries:
        Decompose all same-size SVD factors of the model as one vectorized
        Reck/Clements stack (identical results to the per-matrix path, pinned
        to 1e-10 by the test-suite; substantially faster for models with many
        same-size kernels).
    """

    backend: str = "auto"
    dense_dimension_limit: Optional[int] = None
    batch_unitaries: bool = True

    def __post_init__(self) -> None:
        if self.backend not in MeshDecomposition.BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"choose from {MeshDecomposition.BACKENDS}")
        if self.dense_dimension_limit is not None and self.dense_dimension_limit < 0:
            raise ValueError("dense_dimension_limit must be non-negative")


@dataclass
class CompiledProgram:
    """A model compiled onto simulated photonic hardware.

    The program is a dataflow graph (:attr:`graph`) of photonic stage nodes
    and electronic ops; :meth:`forward_signals` executes it batch-first on
    complex amplitudes and :meth:`predict_logits` runs the full optical
    pipeline (assignment, encoding, meshes, detector readout).
    """

    graph: GraphProgram
    target: HardwareTarget
    options: CompileOptions
    encoder: DCComplexEncoder = field(default_factory=DCComplexEncoder)
    #: content key in the artifact store this program was compiled against
    #: (None when no store participated), and whether it was a warm hit
    store_key: Optional[str] = None
    store_hit: bool = False

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return self.graph.num_classes

    @property
    def input_kind(self) -> str:
        return self.graph.input_kind

    @property
    def readout(self):
        return self.graph.readout

    @property
    def mzi_count(self) -> int:
        return self.graph.mzi_count

    @property
    def stages(self) -> List[Any]:
        """The stage chain of a purely sequential program.

        Raises ``TypeError`` for graph-shaped programs (skip additions /
        fan-out), which have no sequential form.
        """
        try:
            return self.graph.chain_stages()
        except ValueError as error:
            raise TypeError(str(error)) from error

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def plan(self, options: Optional[Any] = None):
        """The program's :class:`~repro.core.runtime.ExecutionPlan`.

        Compiled once and cached on the graph; every ``forward`` /
        ``predict_logits`` call executes it.  Call this eagerly to pay the
        plan compilation (eager dense matrices, buffer-lifetime analysis)
        before the first request -- the serving layer does so when a program
        enters the cache.  Pass :class:`~repro.core.runtime.PlanOptions` to
        compile a fresh plan with a different fusion policy.
        """
        return self.graph.plan(options)

    def forward_signals(self, complex_inputs: np.ndarray) -> np.ndarray:
        """Propagate complex input amplitudes through the program graph.

        Executes the cached execution plan (see :meth:`plan`).  Batch-first:
        ``complex_inputs`` is ``(batch, n)`` for flat programs or ``(batch,
        channels, height, width)`` for convolutional ones.  When nodes carry
        trials-batched (noise-ensemble) meshes the signal gains a leading
        trials axis at the first mesh node and every realization propagates
        consistently through the rest of the graph.
        """
        return self.graph.forward(complex_inputs)

    forward = forward_signals
    __call__ = forward_signals

    def encode_images(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        """The complex light the program graph consumes for a raw image batch.

        Applies the assignment scheme and the optical encoder, flattening the
        assigned maps first for flat-input programs.  This is the front half
        of :meth:`predict_logits`; the harnesses use it to drive the graph
        executors directly on encoded signals.
        """
        assignment = scheme.assign(images)
        if self.input_kind == "image":
            return self.encoder.encode(assignment.real, assignment.imag)
        flattened_real = assignment.real.reshape(assignment.real.shape[0], -1)
        flattened_imag = assignment.imag.reshape(assignment.imag.shape[0], -1)
        return self.encoder.encode(flattened_real, flattened_imag)

    def predict_logits(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        """Run the full optical pipeline: assignment, encoding, meshes, readout."""
        signal = self.forward_signals(self.encode_images(images, scheme))
        return self.readout(signal)

    def classify(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        return self.predict_logits(images, scheme).argmax(axis=-1)

    # ------------------------------------------------------------------ #
    # hardware non-idealities
    # ------------------------------------------------------------------ #
    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "CompiledProgram":
        """Return a copy whose mesh nodes carry phase noise / quantization.

        ``trials`` draws an ensemble of noise realizations per mesh; the
        copy's logits and predictions then carry a leading trials axis, so a
        whole Monte-Carlo robustness sweep runs in one batched forward pass.
        A noise model with an *array* ``sigma`` additionally prepends a sigma
        axis, folding a whole sigma sweep into the same pass.
        """
        target = replace(self.target, noise=noise,
                         quantization_bits=quantization_bits, trials=trials)
        return CompiledProgram(
            graph=self.graph.with_noise(noise, quantization_bits, trials=trials),
            target=target, options=self.options, encoder=self.encoder,
            store_key=self.store_key, store_hit=self.store_hit)

    def with_scenario(self, scenario: Any, times: Optional[Any] = None,
                      trials: Optional[int] = None,
                      quantization_bits: Optional[int] = None) -> "CompiledProgram":
        """Return a copy degraded by a hardware scenario (see ``repro.scenarios``).

        ``scenario`` is a scenario instance, a ``{"name", "params"}`` config
        dict, or a list of configs (composite).  Without ``times`` the copy
        is evaluated at the scenario's current clock; with ``times`` (a 1-D
        grid of seconds) the copy's meshes carry the whole degradation
        trajectory as a leading time axis, composing with ``trials`` exactly
        like a sigma sweep.  The scenario rides the same seam as
        :meth:`with_noise`, so every engine backend runs it unchanged.
        """
        from repro.scenarios import build_scenario
        from repro.scenarios.base import ScenarioTrajectory

        scenario = build_scenario(scenario)
        noise = scenario if times is None else ScenarioTrajectory(scenario, times)
        return self.with_noise(noise=noise, quantization_bits=quantization_bits,
                               trials=trials)


def compile(model, target: Optional[HardwareTarget] = None,
            options: Optional[CompileOptions] = None,
            store: Optional[Any] = None,
            store_refresh: bool = False) -> CompiledProgram:
    """Compile a trained complex model onto simulated photonic hardware.

    Lowers the model through the ``@register_lowering`` rule registry into a
    photonic dataflow graph (fully connected and convolutional trunks become
    stage chains; residual models gain explicit fan-out and electronic
    skip-add nodes), deploys every weight via SVD with same-size unitaries
    decomposed as one batched stack, and bakes the target's non-idealities in.
    The model is switched to eval mode.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ArtifactStore`.  A warm entry for the
        content key of ``(model weights, target, options)`` skips
        decomposition entirely -- the stored phases and memory-mapped dense
        matrices are deployed in its place; a miss falls through to live
        compilation and (unless the store is read-only) publishes the fresh
        decomposition.  Targets carrying a live noise model bypass the store
        (noise is injected after the stored clean decomposition anyway, so
        only the clean step is ever persisted).
    store_refresh:
        Skip the store read and rewrite the entry from a live compile --
        the redeploy-with-changed-weights escape hatch
        (:meth:`repro.serve.cache.ProgramCache.invalidate` sets it).
    """
    target = HardwareTarget() if target is None else target
    options = CompileOptions() if options is None else options

    def lower(deploy_fn=None) -> GraphProgram:
        return lower_to_graph(model, method=target.method,
                              backend=options.backend,
                              dense_dimension_limit=options.dense_dimension_limit,
                              batch_unitaries=options.batch_unitaries,
                              deploy_fn=deploy_fn)

    key = store.try_key_for(model, target, options) if store is not None else None
    graph = None
    hit = False
    if key is not None and not store_refresh:
        artifact = store.load(key, options)
        if artifact is not None:
            from repro.store.errors import ArtifactError
            try:
                graph = lower(artifact.deploy_fn())
                hit = True
            except ArtifactError as error:
                import logging

                logging.getLogger("repro.store").warning(
                    "store entry %s does not fit this model (%s); quarantining "
                    "and recompiling live", key[:12], error)
                store.quarantine(key)
                graph = None
    if graph is None:
        if key is not None and not store.readonly:
            from repro.photonics.svd_mapping import svd_decompose_many

            captured: List[Any] = []

            def capturing(weights):
                matrices = svd_decompose_many(
                    weights, method=target.method,
                    batch_unitaries=options.batch_unitaries,
                    backend=options.backend,
                    dense_dimension_limit=options.dense_dimension_limit)
                captured.extend(matrices)
                return matrices

            graph = lower(capturing)
            if store_refresh:
                store.delete(key)
            store.save(key, captured, model=model, target=target,
                       options=options)
        else:
            graph = lower()
    program = CompiledProgram(graph=graph, target=target, options=options,
                              store_key=key, store_hit=hit)
    if target.noise is not None or target.quantization_bits is not None:
        program = program.with_noise(noise=target.noise,
                                     quantization_bits=target.quantization_bits,
                                     trials=target.trials)
    return program
