"""End-to-end OplixNet pipeline (the workflow of Fig. 2).

:class:`OplixNet` ties the pieces together for one experiment configuration:

1. generate the dataset stand-in,
2. build the SCVNN student (with its data-assignment scheme and decoder), the
   CVNN teacher and the reference models,
3. train with SCVNN-CVNN mutual learning (or plain cross-entropy),
4. report accuracy, the MZI area comparison against the conventional ONN, and
5. optionally deploy the trained FCNN student onto the simulated photonic
   circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.assignment import AssignmentScheme, get_scheme
from repro.core.area_analysis import compare_area, model_area_report
from repro.core.compile import CompiledProgram, CompileOptions, HardwareTarget
from repro.core.compile import compile as compile_model
from repro.core.config import ExperimentConfig
from repro.core.distillation import MutualLearningResult, MutualLearningTrainer
from repro.core.training import Trainer, TrainingHistory, evaluate_accuracy
from repro.data import ArrayDataset, DataLoader, synthetic_cifar10, synthetic_cifar100, synthetic_mnist
from repro.nn.module import Module


@dataclass
class PipelineResult:
    """Everything the pipeline produces for one configuration."""

    student_accuracy: float
    teacher_accuracy: Optional[float]
    rvnn_accuracy: Optional[float]
    baseline_accuracy: Optional[float]
    area: Dict[str, float]
    student_history: Optional[TrainingHistory] = None
    mutual_result: Optional[MutualLearningResult] = None


class OplixNet:
    """The OplixNet framework driver for a single experiment configuration."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._datasets: Optional[Tuple[ArrayDataset, ArrayDataset]] = None

    # ------------------------------------------------------------------ #
    # data
    # ------------------------------------------------------------------ #
    def datasets(self) -> Tuple[ArrayDataset, ArrayDataset]:
        """Build (and cache) the train/test datasets for this configuration."""
        if self._datasets is None:
            cfg = self.config
            height, width = cfg.image_size
            if cfg.dataset == "mnist":
                self._datasets = synthetic_mnist(height=height, width=width,
                                                 train_samples=cfg.train_samples,
                                                 test_samples=cfg.test_samples,
                                                 num_classes=cfg.num_classes, seed=cfg.seed)
            elif cfg.dataset == "cifar10":
                self._datasets = synthetic_cifar10(height=height, width=width,
                                                   train_samples=cfg.train_samples,
                                                   test_samples=cfg.test_samples, seed=cfg.seed)
            elif cfg.dataset == "cifar100":
                self._datasets = synthetic_cifar100(height=height, width=width,
                                                    train_samples=cfg.train_samples,
                                                    test_samples=cfg.test_samples,
                                                    num_classes=cfg.num_classes, seed=cfg.seed)
            else:
                raise ValueError(f"unknown dataset {cfg.dataset!r}")
        return self._datasets

    def loaders(self) -> Tuple[DataLoader, DataLoader]:
        train, test = self.datasets()
        cfg = self.config
        train_loader = DataLoader(train, batch_size=cfg.training.batch_size, shuffle=True,
                                  rng=np.random.default_rng(cfg.training.seed))
        test_loader = DataLoader(test, batch_size=cfg.training.batch_size, shuffle=False)
        return train_loader, test_loader

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #
    def _spec(self, flavour: str, assignment: Optional[str] = None,
              decoder: Optional[str] = None, depth: Optional[int] = None):
        from repro.models import ModelSpec  # imported lazily to avoid a cycle

        cfg = self.config
        return ModelSpec(
            architecture=cfg.architecture,
            flavour=flavour,
            input_shape=cfg.input_shape,
            num_classes=cfg.num_classes,
            assignment=assignment,
            decoder=decoder if decoder is not None else cfg.decoder,
            depth=depth if depth is not None else cfg.depth,
            width_divider=cfg.width_divider,
            lenet_kernel=cfg.lenet_kernel,
            lenet_padding=cfg.lenet_padding,
        )

    @staticmethod
    def _build(spec, rng) -> Module:
        from repro.models import build_model  # imported lazily to avoid a cycle

        return build_model(spec, rng=rng)

    def build_student(self) -> Module:
        """The proposed SCVNN with the configured assignment and decoder."""
        return self._build(self._spec("scvnn", assignment=self.config.assignment),
                           np.random.default_rng(self.config.seed + 1))

    def build_teacher(self) -> Module:
        """The CVNN mutual-learning teacher (larger depth when configured)."""
        return self._build(self._spec("cvnn", decoder="photodiode",
                                      depth=self.config.teacher_depth),
                           np.random.default_rng(self.config.seed + 2))

    def build_baseline_cvnn(self) -> Module:
        """The conventional ONN baseline ("Orig." of Table II)."""
        return self._build(self._spec("cvnn", decoder="photodiode"),
                           np.random.default_rng(self.config.seed + 3))

    def build_rvnn(self) -> Module:
        """The real-valued software reference."""
        return self._build(self._spec("rvnn"),
                           np.random.default_rng(self.config.seed + 4))

    def student_scheme(self) -> AssignmentScheme:
        return get_scheme(self.config.assignment)

    # ------------------------------------------------------------------ #
    # training entry points
    # ------------------------------------------------------------------ #
    def train_student(self, mutual_learning: bool = True, verbose: bool = False):
        """Train the SCVNN (optionally with CVNN mutual learning).

        Returns ``(student model, history-or-mutual-result)``.
        """
        train_loader, test_loader = self.loaders()
        student = self.build_student()
        if mutual_learning:
            teacher = self.build_teacher()
            trainer = MutualLearningTrainer(student, teacher, self.config.training,
                                            student_scheme=self.student_scheme())
            result = trainer.fit(train_loader, test_loader, verbose=verbose)
            return student, result
        trainer = Trainer(student, self.config.training, scheme=self.student_scheme())
        history = trainer.fit(train_loader, test_loader, verbose=verbose)
        return student, history

    def train_reference(self, flavour: str, verbose: bool = False):
        """Train one of the reference models ("rvnn" or "cvnn") without distillation."""
        train_loader, test_loader = self.loaders()
        if flavour == "rvnn":
            model, scheme = self.build_rvnn(), None
        elif flavour == "cvnn":
            model, scheme = self.build_baseline_cvnn(), get_scheme("conventional")
        else:
            raise ValueError("flavour must be 'rvnn' or 'cvnn'")
        trainer = Trainer(model, self.config.training, scheme=scheme)
        history = trainer.fit(train_loader, test_loader, verbose=verbose)
        return model, history

    # ------------------------------------------------------------------ #
    # analysis / deployment
    # ------------------------------------------------------------------ #
    def area_summary(self) -> Dict[str, float]:
        """MZI area of the proposed SCVNN versus the conventional ONN baseline."""
        return compare_area(self.build_student(), self.build_baseline_cvnn())

    def run(self, mutual_learning: bool = True, train_references: bool = False,
            verbose: bool = False) -> PipelineResult:
        """Run the full pipeline and gather every headline number."""
        _train_loader, test_loader = self.loaders()
        student, outcome = self.train_student(mutual_learning=mutual_learning, verbose=verbose)
        student_accuracy = evaluate_accuracy(student, test_loader, self.student_scheme())

        teacher_accuracy = None
        history = None
        mutual = None
        if isinstance(outcome, MutualLearningResult):
            mutual = outcome
            teacher_accuracy = outcome.teacher_test_accuracy
        else:
            history = outcome

        rvnn_accuracy = None
        baseline_accuracy = None
        if train_references:
            _rvnn_model, rvnn_history = self.train_reference("rvnn", verbose=verbose)
            rvnn_accuracy = rvnn_history.final_test_accuracy
            _cvnn_model, cvnn_history = self.train_reference("cvnn", verbose=verbose)
            baseline_accuracy = cvnn_history.final_test_accuracy

        return PipelineResult(
            student_accuracy=student_accuracy,
            teacher_accuracy=teacher_accuracy,
            rvnn_accuracy=rvnn_accuracy,
            baseline_accuracy=baseline_accuracy,
            area=self.area_summary(),
            student_history=history,
            mutual_result=mutual,
        )

    def deploy(self, student: Module, method: str = "clements",
               options: Optional[CompileOptions] = None) -> CompiledProgram:
        """Compile a trained student onto the simulated photonic circuit.

        Routes through :func:`repro.compile`, so fully connected,
        convolutional and residual students all deploy; ``options`` selects
        the execution policy (dense/column backend, batched decomposition).
        """
        return compile_model(student, target=HardwareTarget(method=method),
                             options=options)
