"""Training-step plan compiler: tape-to-plan lowering for the whole step.

:mod:`repro.core.runtime` lowers an *inference* DAG to a flat slot-reuse
instruction list and wins 2.5-4x over graph-walking dispatch.  This module
extends the idea to the full training step.  The autograd tape of one eager
``Trainer.train_step`` is recorded once per batch shape via
:func:`repro.tensor.tensor.trace_tape`, then lowered to three flat instruction
lists executed against preallocated buffers:

* **forward**: one emitter per traced node recomputes ``node.data`` *in place*
  into the very array the trace produced -- the traced tensors' own arrays are
  the activation buffers, so every backward closure (which reads
  ``parent.data``/``weight.data`` and the op's cache dict at call time) replays
  against fresh values without being rebuilt.  View nodes (reshape, transpose,
  slicing, the complex pair unpacking) whose data shares memory with their
  parent cost *zero* instructions: the compile-time view stays valid because
  buffers are never rebound.
* **backward**: the original eager closures are reused in the exact order
  ``Tensor.backward`` would process them (reversed topological order), but the
  per-step topological sort, the ``pending`` dict and every gradient
  allocation are gone: gradients accumulate via first-write ``np.copyto`` /
  in-place ``np.add`` into persistent slots recycled through a shape-keyed
  buffer pool.  ReLU backward is fused with its forward emitter (the
  activation mask is computed once per step and shared), and the complex
  pair-unpacking / slicing adjoints turn into direct slot writes instead of
  zeros-plus-scatter.
* **update**: the optimizer tail (optional global-norm clip, then
  ``begin_step`` + one ``step_parameter`` per contributing parameter) runs the
  very same in-place kernels as ``Optimizer.step``, reading ``optimizer.lr``
  at call time so scheduler changes apply to the next planned step.

Replay is bit-identical to the eager tape except for the sign of floating
zeros in scatter-style adjoints (the eager path adds ``-0.0`` into zeros,
producing ``+0.0``); the parity tests therefore pin trajectories with
``rtol=0, atol=0``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import TapeEntry, TapeTrace, Tensor, _unbroadcast


class PlanUnsupported(RuntimeError):
    """The traced step cannot be lowered; the caller must stay on the eager tape."""


# --------------------------------------------------------------------------- #
# small helpers
# --------------------------------------------------------------------------- #
_VIEW_OPS = ("reshape", "transpose", "getitem", "pick")


def _is_basic_index(index) -> bool:
    """True for indexing that numpy resolves to a (possibly strided) view."""
    basic = (int, np.integer, slice, type(None), type(Ellipsis))
    if isinstance(index, basic):
        return True
    if isinstance(index, tuple):
        return all(isinstance(part, basic) for part in index)
    return False


class _BufferPool:
    """Shape/dtype-keyed free list of gradient slots."""

    def __init__(self):
        self._free: Dict[Tuple, List[np.ndarray]] = {}
        self.allocated = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        stack = self._free.get(key)
        if stack:
            return stack.pop()
        self.allocated += 1
        return np.empty(shape, dtype)

    def release(self, array: np.ndarray) -> None:
        self._free.setdefault((array.shape, array.dtype.str), []).append(array)


class _FusedForward:
    """Two forward emitters merged into one instruction (producer + activation)."""

    __slots__ = ("first", "second")

    def __init__(self, first: Callable[[], None], second: Callable[[], None]):
        self.first = first
        self.second = second

    def __call__(self) -> None:
        self.first()
        self.second()


# --------------------------------------------------------------------------- #
# forward emitters
#
# Every emitter recomputes the traced node's data IN PLACE into the array the
# trace produced, replicating the eager op's float operations exactly (same
# ufuncs, same order) so replay is bit-identical.  Emitters read parent data
# through the parent Tensor at call time and refresh the op's cache dict /
# captured intermediate arrays in place, keeping the reused backward closures
# coherent.
# --------------------------------------------------------------------------- #
def _ufunc_binary(ufunc):
    def factory(entry: TapeEntry, ctx) -> Callable[[], None]:
        a, b = entry.parents
        buf = entry.tensor.data

        def run():
            ufunc(a.data, b.data, out=buf)

        return run

    return factory


def _ufunc_unary(ufunc):
    def factory(entry: TapeEntry, ctx) -> Callable[[], None]:
        (a,) = entry.parents
        buf = entry.tensor.data

        def run():
            ufunc(a.data, out=buf)

        return run

    return factory


def _f_relu(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    mask = ctx.relu_masks.get(id(entry.tensor))
    if mask is None:
        def run():
            np.maximum(a.data, 0.0, out=buf)
    else:
        # the backward instruction reuses this mask: one forward/backward
        # instruction pair sharing the activation test
        def run():
            np.maximum(a.data, 0.0, out=buf)
            np.greater(a.data, 0, out=mask)

    return run


def _f_sigmoid(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data

    def run():
        np.negative(a.data, out=buf)
        np.exp(buf, out=buf)
        np.add(buf, 1.0, out=buf)
        np.divide(1.0, buf, out=buf)

    return run


def _f_power(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    exponent = entry.params["exponent"]

    def run():
        buf[...] = a.data ** exponent

    return run


def _f_leaky_relu(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    slope = entry.params["negative_slope"]

    def run():
        buf[...] = np.where(a.data > 0, a.data, slope * a.data)

    return run


def _f_clip(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    low, high = entry.params["low"], entry.params["high"]

    def run():
        np.clip(a.data, low, high, out=buf)

    return run


def _f_matmul(entry: TapeEntry, ctx) -> Callable[[], None]:
    a, b = entry.parents
    buf = entry.tensor.data

    def run():
        np.matmul(a.data, b.data, out=buf)

    return run


def _f_sum(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    axis, keepdims = entry.params["axis"], entry.params["keepdims"]

    def run():
        np.sum(a.data, axis=axis, keepdims=keepdims, out=buf)

    return run


def _f_mean(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    axis, keepdims = entry.params["axis"], entry.params["keepdims"]

    def run():
        np.mean(a.data, axis=axis, keepdims=keepdims, out=buf)

    return run


def _f_var(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    axis, keepdims = entry.params["axis"], entry.params["keepdims"]
    mean_buf = entry.params["mean"]  # shared with the backward closure

    def run():
        np.mean(a.data, axis=axis, keepdims=True, out=mean_buf)
        np.mean((a.data - mean_buf) ** 2, axis=axis, keepdims=keepdims, out=buf)

    return run


def _f_minmax(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    axis, keepdims = entry.params["axis"], entry.params["keepdims"]
    fn = entry.params["fn"]

    def run():
        fn(a.data, axis=axis, keepdims=keepdims, out=buf)

    return run


def _f_logsumexp(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    axis, keepdims = entry.params["axis"], entry.params["keepdims"]
    exps, sum_exps = entry.params["exps"], entry.params["sum_exps"]

    if keepdims:
        def run():
            shifted_max = a.data.max(axis=axis, keepdims=True)
            np.subtract(a.data, shifted_max, out=exps)
            np.exp(exps, out=exps)
            np.sum(exps, axis=axis, keepdims=True, out=sum_exps)
            np.log(sum_exps, out=buf)
            np.add(buf, shifted_max, out=buf)
    else:
        squeeze_axis = axis if axis is not None else tuple(range(a.data.ndim))

        def run():
            shifted_max = a.data.max(axis=axis, keepdims=True)
            np.subtract(a.data, shifted_max, out=exps)
            np.exp(exps, out=exps)
            np.sum(exps, axis=axis, keepdims=True, out=sum_exps)
            buf[...] = np.squeeze(np.log(sum_exps) + shifted_max, axis=squeeze_axis)

    return run


def _f_reshape(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    shape = entry.params["shape"]

    def run():
        buf[...] = a.data.reshape(shape)

    return run


def _f_getitem(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    index = entry.params["index"]

    def run():
        buf[...] = a.data[index]

    return run


def _f_concatenate(entry: TapeEntry, ctx) -> Callable[[], None]:
    buf = entry.tensor.data
    axis = entry.params["axis"]
    offsets = entry.params["offsets"]
    slots = []
    for parent, start, stop in zip(entry.parents, offsets[:-1], offsets[1:]):
        index = [slice(None)] * buf.ndim
        index[axis] = slice(int(start), int(stop))
        slots.append((buf[tuple(index)], parent))

    def run():
        for slot, parent in slots:
            slot[...] = parent.data

    return run


def _f_stack(entry: TapeEntry, ctx) -> Callable[[], None]:
    buf = entry.tensor.data
    axis = entry.params["axis"]
    slots = []
    for position, parent in enumerate(entry.parents):
        index = [slice(None)] * buf.ndim
        index[axis] = position
        slots.append((buf[tuple(index)], parent))

    def run():
        for slot, parent in slots:
            slot[...] = parent.data

    return run


def _f_pad(entry: TapeEntry, ctx) -> Callable[[], None]:
    (a,) = entry.parents
    buf = entry.tensor.data
    width = entry.params["width"]
    interior = tuple(
        slice(int(before), int(before) + dim)
        for (before, _after), dim in zip(width, a.data.shape)
    )
    # the border stays whatever np.pad wrote at trace time (the constant);
    # only the interior changes per step
    slot = buf[interior]

    def run():
        slot[...] = a.data

    return run


def _f_conv2d(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    has_bias = entry.params["has_bias"]
    inputs, weight = entry.parents[0], entry.parents[1]
    bias = entry.parents[2] if has_bias else None
    kernel = entry.params["kernel"]
    stride, padding = entry.params["stride"], entry.params["padding"]
    cache = entry.params["cache"]
    buf = node.data
    batch, out_channels, out_h, out_w = node.shape

    def run():
        columns, _ = F.im2col(inputs.data, kernel, stride, padding)
        cache["columns"] = columns
        weight_matrix = weight.data.reshape(out_channels, -1)
        out_matrix = weight_matrix @ columns
        shaped = out_matrix.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
        if has_bias:
            np.add(shaped, bias.data.reshape(1, out_channels, 1, 1), out=buf)
        else:
            np.copyto(buf, shaped)

    return run


def _f_max_pool2d(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    (inputs,) = entry.parents
    kernel, stride = entry.params["kernel"], entry.params["stride"]
    cache = entry.params["cache"]
    buf = node.data
    batch, channels, height, width = inputs.shape
    out_h, out_w = node.shape[2], node.shape[3]
    pool_shape = (batch * channels, 1, height, width)

    def run():
        reshaped = inputs.data.reshape(pool_shape)
        columns, _ = F.im2col(reshaped, kernel, stride, (0, 0))
        max_idx = columns.argmax(axis=0)
        cache["columns"] = columns
        cache["max_idx"] = max_idx
        out_cols = columns[max_idx, np.arange(columns.shape[1])]
        buf[...] = (out_cols.reshape(out_h, out_w, batch * channels)
                    .transpose(2, 0, 1).reshape(batch, channels, out_h, out_w))

    return run


def _f_avg_pool2d(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    (inputs,) = entry.parents
    kernel, stride = entry.params["kernel"], entry.params["stride"]
    buf = node.data
    batch, channels, height, width = inputs.shape
    out_h, out_w = node.shape[2], node.shape[3]
    pool_shape = (batch * channels, 1, height, width)

    def run():
        reshaped = inputs.data.reshape(pool_shape)
        columns, _ = F.im2col(reshaped, kernel, stride, (0, 0))
        out_cols = columns.mean(axis=0)
        buf[...] = (out_cols.reshape(out_h, out_w, batch * channels)
                    .transpose(2, 0, 1).reshape(batch, channels, out_h, out_w))

    return run


def _f_batch_norm(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    affine = entry.params["affine"]
    inputs = entry.parents[0]
    weight = entry.parents[1] if affine else None
    bias = entry.parents[2] if affine else None
    axes, shape = entry.params["axes"], entry.params["shape"]
    eps, cache = entry.params["eps"], entry.params["cache"]
    num_features = entry.params["num_features"]
    stats_hook = entry.params["stats_hook"]
    buf = node.data
    x_shape = inputs.data.shape
    dtype = buf.dtype
    # persistent intermediates published into the closure's cache once: the
    # eager helper reallocates all five per call, the plan reuses them.  For
    # the non-affine form the node's own buffer IS the normalised output,
    # exactly as in the eager helper.
    mean = np.empty_like(cache["mean"])
    var = np.empty_like(cache["var"])
    sq = np.empty_like(cache["sq"])
    sub = np.empty(x_shape, dtype)
    norm = np.empty(x_shape, dtype) if affine else buf
    scratch = np.empty(x_shape, dtype)
    cache.update(mean=mean, sub=sub, var=var, sq=sq, norm=norm)

    def run():
        x = inputs.data
        np.mean(x, axis=axes, keepdims=True, out=mean)
        np.subtract(x, mean, out=sub)
        np.power(sub, 2, out=scratch)
        np.mean(scratch, axis=axes, keepdims=True, out=var)
        np.add(var, eps, out=sq)
        np.sqrt(sq, out=sq)
        np.divide(sub, sq, out=norm)
        if affine:
            np.multiply(norm, weight.data.reshape(shape), out=buf)
            np.add(buf, bias.data.reshape(shape), out=buf)
        if stats_hook is not None:
            stats_hook(mean.reshape(num_features), var.reshape(num_features))

    return run


def _f_complex_linear(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    has_bias = entry.params["has_bias"]
    x_real, x_imag, weight_real, weight_imag = entry.parents[:4]
    bias_real = entry.parents[4] if has_bias else None
    bias_imag = entry.parents[5] if has_bias else None
    in_features = entry.params["in_features"]
    out_features = entry.params["out_features"]
    buf = node.data
    dtype = buf.dtype
    rows = x_real.data.size // in_features
    # persistent scratch for the three Karatsuba products: the eager op
    # allocates a/b/c (plus the two operand sums) on every call
    a = np.empty((rows, out_features), dtype)
    b = np.empty((rows, out_features), dtype)
    c = np.empty((rows, out_features), dtype)
    x_sum = np.empty((rows, in_features), dtype)
    w_sum = np.empty((out_features, in_features), dtype)
    out_real = buf[0].reshape(rows, out_features)
    out_imag = buf[1].reshape(rows, out_features)

    def run():
        xr = x_real.data.reshape(-1, in_features)
        xi = x_imag.data.reshape(-1, in_features)
        wr, wi = weight_real.data, weight_imag.data
        np.matmul(xr, wr.T, out=a)
        np.matmul(xi, wi.T, out=b)
        np.add(xr, xi, out=x_sum)
        np.add(wr, wi, out=w_sum)
        np.matmul(x_sum, w_sum.T, out=c)
        np.subtract(a, b, out=out_real)
        np.subtract(c, a, out=out_imag)
        np.subtract(out_imag, b, out=out_imag)
        if has_bias:
            np.add(out_real, bias_real.data, out=out_real)
            np.add(out_imag, bias_imag.data, out=out_imag)

    return run


def _f_complex_conv2d(entry: TapeEntry, ctx) -> Callable[[], None]:
    node = entry.tensor
    has_bias = entry.params["has_bias"]
    x_real, x_imag, weight_real, weight_imag = entry.parents[:4]
    bias_real = entry.parents[4] if has_bias else None
    bias_imag = entry.parents[5] if has_bias else None
    product = entry.params["product"]
    kernel_h, kernel_w = entry.params["kernel"]
    stride_h, stride_w = entry.params["stride"]
    pad_h, pad_w = entry.params["padding"]
    patch = entry.params["patch"]
    in_channels = entry.params["in_channels"]
    out_channels = entry.params["out_channels"]
    matrix_shape = entry.params["matrix_shape"]
    out_h, out_w = entry.params["out_hw"]
    batch, _two_ic, height, width = entry.params["stacked_shape"]
    cache = entry.params["cache"]
    buf = node.data
    dtype = buf.dtype

    # persistent im2col workspace: the input planes land directly in the
    # interior of a zero-bordered padded buffer (replacing the per-step
    # concatenate + np.pad of the eager op) and the patch gather copies into
    # a reused column matrix, extracting exactly the elements `im2col` reads.
    # The padded buffer is stored channel-major (C, Hp, Wp, batch) so the
    # window gather's innermost axis is contiguous on both sides.
    padded = np.zeros((2 * in_channels, height + 2 * pad_h,
                       width + 2 * pad_w, batch), dtype)
    interior_real = padded[:in_channels, pad_h:pad_h + height, pad_w:pad_w + width, :]
    interior_imag = padded[in_channels:, pad_h:pad_h + height, pad_w:pad_w + width, :]
    n_cols = out_h * out_w * batch
    columns = np.empty((2 * patch, n_cols), dtype)
    cols_view = columns.reshape(2 * in_channels, kernel_h, kernel_w,
                                out_h, out_w, batch)
    cache["columns"] = columns
    buf_real, buf_imag = buf[0], buf[1]
    bias_shape = (1, out_channels, 1, 1)
    if product == "block":
        out_matrix = np.empty((2 * out_channels, n_cols), dtype)
        out_view = out_matrix.reshape(matrix_shape).transpose(0, 4, 1, 2, 3)
    else:
        a = np.empty((out_channels, n_cols), dtype)
        b = np.empty((out_channels, n_cols), dtype)
        c = np.empty((out_channels, n_cols), dtype)
        d = np.empty((out_channels, n_cols), dtype)
        cols_sum = np.empty((patch, n_cols), dtype)
        w_sum = np.empty((out_channels, patch), dtype)
        plane_shape = matrix_shape[1:]

    def run():
        interior_real[...] = x_real.data.transpose(1, 2, 3, 0)
        interior_imag[...] = x_imag.data.transpose(1, 2, 3, 0)
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kernel_h, kernel_w), axis=(1, 2))
        np.copyto(cols_view,
                  windows[:, ::stride_h, ::stride_w].transpose(0, 4, 5, 1, 2, 3))
        wr = weight_real.data.reshape(out_channels, -1)
        wi = weight_imag.data.reshape(out_channels, -1)
        if product == "block":
            w_block = cache["w_block"]  # persistent block matrix, refreshed in place
            w_block[:out_channels, :patch] = wr
            np.negative(wi, out=w_block[:out_channels, patch:])
            w_block[out_channels:, :patch] = wi
            w_block[out_channels:, patch:] = wr
            np.matmul(w_block, columns, out=out_matrix)
            np.copyto(buf, out_view)
        else:
            cols_real = columns[:patch]
            cols_imag = columns[patch:]
            np.matmul(wr, cols_real, out=a)
            np.matmul(wi, cols_imag, out=b)
            np.add(wr, wi, out=w_sum)
            np.add(cols_real, cols_imag, out=cols_sum)
            np.matmul(w_sum, cols_sum, out=c)
            np.subtract(a, b, out=d)
            np.copyto(buf_real, d.reshape(plane_shape).transpose(3, 0, 1, 2))
            np.subtract(c, a, out=c)
            np.subtract(c, b, out=c)
            np.copyto(buf_imag, c.reshape(plane_shape).transpose(3, 0, 1, 2))
        if has_bias:
            np.add(buf_real, bias_real.data.reshape(bias_shape), out=buf_real)
            np.add(buf_imag, bias_imag.data.reshape(bias_shape), out=buf_imag)

    return run


_FORWARD_EMITTERS: Dict[str, Callable] = {
    "add": _ufunc_binary(np.add),
    "sub": _ufunc_binary(np.subtract),
    "mul": _ufunc_binary(np.multiply),
    "div": _ufunc_binary(np.divide),
    "maximum": _ufunc_binary(np.maximum),
    "neg": _ufunc_unary(np.negative),
    "exp": _ufunc_unary(np.exp),
    "log": _ufunc_unary(np.log),
    "sqrt": _ufunc_unary(np.sqrt),
    "abs": _ufunc_unary(np.abs),
    "tanh": _ufunc_unary(np.tanh),
    "sin": _ufunc_unary(np.sin),
    "cos": _ufunc_unary(np.cos),
    "sigmoid": _f_sigmoid,
    "relu": _f_relu,
    "leaky_relu": _f_leaky_relu,
    "power": _f_power,
    "clip": _f_clip,
    "matmul": _f_matmul,
    "sum": _f_sum,
    "mean": _f_mean,
    "var": _f_var,
    "max": _f_minmax,
    "min": _f_minmax,
    "logsumexp": _f_logsumexp,
    "reshape": _f_reshape,
    "transpose": None,            # always a view; handled statically
    "getitem": _f_getitem,
    "pick": None,                 # always a view of the packed buffer
    "concatenate": _f_concatenate,
    "stack": _f_stack,
    "pad": _f_pad,
    "conv2d": _f_conv2d,
    "max_pool2d": _f_max_pool2d,
    "avg_pool2d": _f_avg_pool2d,
    "batch_norm": _f_batch_norm,
    "complex_linear": _f_complex_linear,
    "complex_conv2d": _f_complex_conv2d,
}


class _CompileContext:
    def __init__(self):
        self.relu_masks: Dict[int, np.ndarray] = {}


# --------------------------------------------------------------------------- #
# backward instruction factories
# --------------------------------------------------------------------------- #
def _b_generic(closure, grad_in: np.ndarray, targets: Tuple) -> Callable[[], None]:
    def run():
        grads = closure(grad_in)
        for position, slot, first, needs_reduce, parent_shape in targets:
            contribution = grads[position]
            if needs_reduce:
                contribution = _unbroadcast(contribution, parent_shape)
            if first:
                np.copyto(slot, contribution)
            else:
                np.add(slot, contribution, out=slot)
    return run


def _b_relu(grad_in: np.ndarray, mask: np.ndarray, slot: np.ndarray,
            first: bool) -> Callable[[], None]:
    if first:
        def run():
            np.multiply(grad_in, mask, out=slot)
    else:
        def run():
            np.add(slot, grad_in * mask, out=slot)
    return run


def _b_pick(grad_in: np.ndarray, slot: np.ndarray, index: int,
            zero_indices: Tuple[int, ...]) -> Callable[[], None]:
    if zero_indices:
        def run():
            np.copyto(slot[index], grad_in)
            for missing in zero_indices:
                slot[missing].fill(0.0)
    else:
        def run():
            np.copyto(slot[index], grad_in)
    return run


def _b_getitem(grad_in: np.ndarray, slot: np.ndarray, index,
               first: bool) -> Callable[[], None]:
    if first:
        def run():
            slot.fill(0.0)
            slot[index] += grad_in
    else:
        def run():
            slot[index] += grad_in
    return run


# --------------------------------------------------------------------------- #
# specialized backward builders
#
# The generic instruction calls the eager closure (which allocates its result
# arrays) and then copies into the persistent slots.  For the three dominant
# ops the builders below replay the closure's float operations ufunc-by-ufunc
# -- same operations, same order, so bit-identical -- against compile-time
# scratch, writing gradients directly into the slots.  Each builder may return
# ``None`` (an accumulation pattern it does not cover), in which case the
# caller falls back to the generic closure instruction.
# --------------------------------------------------------------------------- #
def _slots_by_position(targets):
    """Map parent position -> (slot, first); None when any target broadcasts."""
    by_pos = {}
    for position, slot, first, needs_reduce, _shape in targets:
        if needs_reduce:
            return None
        by_pos[position] = (slot, first)
    return by_pos


def _b_batch_norm_build(entry: TapeEntry, grad_in: np.ndarray,
                        targets) -> Optional[Callable[[], None]]:
    by_pos = _slots_by_position(targets)
    if by_pos is None or 0 not in by_pos:
        return None
    if any(position in by_pos and not by_pos[position][1] for position in (1, 2)):
        return None  # an accumulated affine-parameter gradient: keep the closure
    params = entry.params
    affine = params["affine"]
    cache = params["cache"]
    axes_tuple = params["axes_tuple"]
    shape = params["shape"]
    count = params["count"]
    weight = entry.parents[1] if affine else None
    x_shape = entry.parents[0].data.shape
    x_slot, x_first = by_pos[0]
    w_slot = by_pos[1][0] if 1 in by_pos else None
    b_slot = by_pos[2][0] if 2 in by_pos else None
    dtype = grad_in.dtype
    s1 = np.empty(x_shape, dtype)
    s2 = np.empty(x_shape, dtype)
    reduced_shape = cache["mean"].shape
    m1 = np.empty(reduced_shape, dtype)
    m_sq = np.empty(reduced_shape, dtype)

    def run():
        sub, sq = cache["sub"], cache["sq"]
        if affine:
            np.multiply(grad_in, weight.data.reshape(shape), out=s1)
            g_norm = s1
            if w_slot is not None:
                np.multiply(grad_in, cache["norm"], out=s2)
                np.sum(s2, axis=axes_tuple, keepdims=True, out=m1)
                np.copyto(w_slot, m1.reshape(w_slot.shape))
            if b_slot is not None:
                np.sum(grad_in, axis=axes_tuple, keepdims=True, out=m1)
                np.copyto(b_slot, m1.reshape(b_slot.shape))
        else:
            g_norm = grad_in
        # four of the closure's full-size passes fold into small per-channel
        # ops without changing a single result bit: negation commutes exactly
        # with IEEE division and with every partial sum of the pairwise
        # reduction, scaling by 2.0 is exact, and dividing the per-channel
        # sums by ``count`` before broadcasting divides the same values
        np.divide(g_norm, sq, out=s2)                       # g_sub
        np.multiply(g_norm, sub, out=s1)
        np.power(sq, 2, out=m_sq)
        np.negative(m_sq, out=m_sq)
        np.divide(s1, m_sq, out=s1)
        np.sum(s1, axis=axes_tuple, keepdims=True, out=m1)  # g_sq
        np.multiply(m1, 0.5, out=m1)
        np.divide(m1, sq, out=m1)                           # g_var
        # engine accumulation order: variance, then centring, then mean term
        np.multiply(m1, 2.0, out=m1)
        np.multiply(np.broadcast_to(m1, x_shape), sub, out=s1)
        np.divide(s1, count, out=s1)
        if x_first:
            np.add(s1, s2, out=x_slot)
            np.sum(s2, axis=axes_tuple, keepdims=True, out=m1)
            np.negative(m1, out=m1)
            np.divide(m1, count, out=m1)
            np.add(x_slot, np.broadcast_to(m1, x_shape), out=x_slot)
        else:
            np.add(s1, s2, out=s1)
            np.sum(s2, axis=axes_tuple, keepdims=True, out=m1)
            np.negative(m1, out=m1)
            np.divide(m1, count, out=m1)
            np.add(s1, np.broadcast_to(m1, x_shape), out=s1)
            np.add(x_slot, s1, out=x_slot)

    return run


def _b_complex_linear_build(entry: TapeEntry, grad_in: np.ndarray,
                            targets) -> Optional[Callable[[], None]]:
    by_pos = _slots_by_position(targets)
    if by_pos is None:
        return None
    if any(position in by_pos and not by_pos[position][1]
           for position in (2, 3, 4, 5)):
        return None  # accumulated weight/bias gradients: keep the closure
    x_real, x_imag, weight_real, weight_imag = entry.parents[:4]
    in_features = entry.params["in_features"]
    out_features = entry.params["out_features"]
    dtype = grad_in.dtype
    rows = grad_in[0].size // out_features
    grad_r = grad_in[0].reshape(rows, out_features)
    grad_i = grad_in[1].reshape(rows, out_features)
    needs_input = 0 in by_pos or 1 in by_pos
    needs_weight = 2 in by_pos or 3 in by_pos
    grad_sum = np.empty((rows, out_features), dtype) if (needs_input or needs_weight) else None
    if needs_input:
        p1 = np.empty((rows, in_features), dtype)
        p2 = np.empty((rows, in_features), dtype)
        w_diff = np.empty((out_features, in_features), dtype)
        t_in = np.empty((rows, in_features), dtype)
    if needs_weight:
        q1 = np.empty((out_features, in_features), dtype)
        q2 = np.empty((out_features, in_features), dtype)
        x_diff = np.empty((rows, in_features), dtype)
        t_w = np.empty((out_features, in_features), dtype)

    def slot_view(position):
        if position not in by_pos:
            return None, True
        slot, first = by_pos[position]
        return slot.reshape(-1, slot.shape[-1]) if slot.ndim != 2 else slot, first

    xr_slot, xr_first = slot_view(0)
    xi_slot, xi_first = slot_view(1)
    wr_slot = by_pos[2][0] if 2 in by_pos else None
    wi_slot = by_pos[3][0] if 3 in by_pos else None
    br_slot = by_pos[4][0] if 4 in by_pos else None
    bi_slot = by_pos[5][0] if 5 in by_pos else None

    def write(slot, first, ufunc, left, right, scratch):
        if first:
            ufunc(left, right, out=slot)
        else:
            ufunc(left, right, out=scratch)
            np.add(slot, scratch, out=slot)

    def run():
        if grad_sum is not None:
            np.add(grad_r, grad_i, out=grad_sum)
        if needs_input:
            bwr, bwi = weight_real.data, weight_imag.data
            np.matmul(grad_r, bwr, out=p1)
            np.matmul(grad_i, bwi, out=p2)
            if xr_slot is not None:
                write(xr_slot, xr_first, np.add, p1, p2, t_in)
            if xi_slot is not None:
                np.subtract(bwr, bwi, out=w_diff)
                np.matmul(grad_sum, w_diff, out=t_in)
                np.subtract(t_in, p1, out=t_in)
                if xi_first:
                    np.add(t_in, p2, out=xi_slot)
                else:
                    np.add(t_in, p2, out=t_in)
                    np.add(xi_slot, t_in, out=xi_slot)
        if needs_weight:
            bxr = x_real.data.reshape(-1, in_features)
            bxi = x_imag.data.reshape(-1, in_features)
            np.matmul(grad_r.T, bxr, out=q1)
            np.matmul(grad_i.T, bxi, out=q2)
            if wr_slot is not None:
                np.add(q1, q2, out=wr_slot)
            if wi_slot is not None:
                np.subtract(bxr, bxi, out=x_diff)
                np.matmul(grad_sum.T, x_diff, out=t_w)
                np.subtract(t_w, q1, out=t_w)
                np.add(t_w, q2, out=wi_slot)
        if br_slot is not None:
            np.sum(grad_r, axis=0, out=br_slot)
        if bi_slot is not None:
            np.sum(grad_i, axis=0, out=bi_slot)

    return run


def _make_col2im_planes(input_shape, split_channels, kernel_size, stride,
                        padding, dtype):
    """Persistent-buffer col2im for plan replay, split at ``split_channels``.

    Returns ``run(columns) -> (top_plane, bottom_plane)`` where the planes are
    views of shape ``(batch, split, height, width)`` /
    ``(batch, channels - split, height, width)``.  Mirrors the strategy
    selection and the per-element accumulation order of
    :func:`F._col2im_fast` exactly, so the scattered gradients are
    bit-identical; the shifted-accumulation strategy additionally stores its
    accumulator channel-major ``(C, Hp, Wp, batch)``, which makes both sides
    of every shifted add near-contiguous (measured ~12x faster on the
    ResNet stage-1 geometry) without touching any element's add order.
    """
    batch, channels, height, width = input_shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h, out_w = F._checked_output_size(input_shape, kernel_size, stride, padding)

    if (pad_h == 0 and pad_w == 0 and stride_h == kernel_h and stride_w == kernel_w
            and out_h * kernel_h == height and out_w * kernel_w == width):
        # exact tiling: the adjoint is a permutation, not a scatter
        image = np.empty(input_shape, dtype=dtype)
        tiles = image.reshape(batch, channels, out_h, kernel_h, out_w, kernel_w)
        planes = (image[:, :split_channels], image[:, split_channels:])

        def run(columns):
            windows = columns.reshape(channels, kernel_h, kernel_w,
                                      out_h, out_w, batch)
            tiles[...] = windows.transpose(5, 0, 3, 1, 4, 2)
            return planes

        return run

    block = batch * channels * out_h * out_w
    if block < F.COL2IM_BINCOUNT_BLOCK_LIMIT:
        # the bincount scatter allocates its own flat output; reuse as-is
        def run(columns):
            image = F._col2im_fast(columns, input_shape, kernel_size,
                                   stride, padding)
            return image[:, :split_channels], image[:, split_channels:]

        return run

    accumulator = np.empty((channels, height + 2 * pad_h, width + 2 * pad_w,
                            batch), dtype=dtype)
    interior = accumulator[:, pad_h:pad_h + height, pad_w:pad_w + width, :]
    planes = (interior[:split_channels].transpose(3, 0, 1, 2),
              interior[split_channels:].transpose(3, 0, 1, 2))

    def run(columns):
        accumulator.fill(0.0)
        windows = columns.reshape(channels, kernel_h, kernel_w,
                                  out_h, out_w, batch)
        for offset_h in range(kernel_h):
            stop_h = offset_h + stride_h * out_h
            for offset_w in range(kernel_w):
                accumulator[:, offset_h:stop_h:stride_h,
                            offset_w:offset_w + stride_w * out_w:stride_w, :] \
                    += windows[:, offset_h, offset_w]
        return planes

    return run


def _b_complex_conv2d_build(entry: TapeEntry, grad_in: np.ndarray,
                            targets) -> Optional[Callable[[], None]]:
    by_pos = _slots_by_position(targets)
    if by_pos is None:
        return None
    if any(position in by_pos and not by_pos[position][1]
           for position in (2, 3, 4, 5)):
        return None  # accumulated weight/bias gradients: keep the closure
    params = entry.params
    product = params["product"]
    cache = params["cache"]
    patch = params["patch"]
    in_channels = params["in_channels"]
    out_channels = params["out_channels"]
    kernel, stride, padding = params["kernel"], params["stride"], params["padding"]
    stacked_shape = params["stacked_shape"]
    x_real, x_imag, weight_real, weight_imag = entry.parents[:4]
    dtype = grad_in.dtype
    n_cols = grad_in[0].size // out_channels
    grad_source = grad_in.transpose(0, 2, 3, 4, 1)
    grad_matrix = np.empty((2 * out_channels, n_cols), dtype)
    grad_view = grad_matrix.reshape(grad_source.shape)
    grad_r = grad_matrix[:out_channels]
    grad_i = grad_matrix[out_channels:]
    needs_input = 0 in by_pos or 1 in by_pos
    needs_weight = 2 in by_pos or 3 in by_pos
    if needs_input:
        dcols = np.empty((2 * patch, n_cols), dtype)
        if F.reference_kernels_enabled():
            def col2im_fn(columns):
                image = F.col2im_reference(columns, stacked_shape, kernel,
                                           stride, padding)
                return image[:, :in_channels], image[:, in_channels:]
        else:
            col2im_fn = _make_col2im_planes(stacked_shape, in_channels,
                                            kernel, stride, padding, dtype)
    if product == "block":
        if needs_weight:
            dw_block = np.empty((2 * out_channels, 2 * patch), dtype)
    else:
        grad_sum = np.empty((out_channels, n_cols), dtype) if (needs_input or needs_weight) else None
        if needs_weight:
            p1 = np.empty((out_channels, patch), dtype)
            p2 = np.empty((out_channels, patch), dtype)
            cols_diff = np.empty((patch, n_cols), dtype)
            t_w = np.empty((out_channels, patch), dtype)
        if needs_input:
            q1 = np.empty((patch, n_cols), dtype)
            q2 = np.empty((patch, n_cols), dtype)
            w_diff = np.empty((out_channels, patch), dtype)

    xr_slot, xr_first = by_pos.get(0, (None, True))
    xi_slot, xi_first = by_pos.get(1, (None, True))
    wr_slot = by_pos[2][0].reshape(out_channels, patch) if 2 in by_pos else None
    wi_slot = by_pos[3][0].reshape(out_channels, patch) if 3 in by_pos else None
    br_slot = by_pos[4][0] if 4 in by_pos else None
    bi_slot = by_pos[5][0] if 5 in by_pos else None

    def run():
        np.copyto(grad_view, grad_source)
        if product == "block":
            if needs_weight:
                np.matmul(grad_matrix, cache["columns"].T, out=dw_block)
                if wr_slot is not None:
                    np.add(dw_block[:out_channels, :patch],
                           dw_block[out_channels:, patch:], out=wr_slot)
                if wi_slot is not None:
                    np.subtract(dw_block[out_channels:, :patch],
                                dw_block[:out_channels, patch:], out=wi_slot)
            if needs_input:
                np.matmul(cache["w_block"].T, grad_matrix, out=dcols)
        else:
            cols = cache["columns"]
            if grad_sum is not None:
                np.add(grad_r, grad_i, out=grad_sum)
            if needs_weight:
                np.matmul(grad_r, cols[:patch].T, out=p1)
                np.matmul(grad_i, cols[patch:].T, out=p2)
                if wr_slot is not None:
                    np.add(p1, p2, out=wr_slot)
                if wi_slot is not None:
                    np.subtract(cols[:patch], cols[patch:], out=cols_diff)
                    np.matmul(grad_sum, cols_diff.T, out=t_w)
                    np.subtract(t_w, p1, out=t_w)
                    np.add(t_w, p2, out=wi_slot)
            if needs_input:
                bwr = weight_real.data.reshape(out_channels, -1)
                bwi = weight_imag.data.reshape(out_channels, -1)
                np.matmul(bwr.T, grad_r, out=q1)
                np.matmul(bwi.T, grad_i, out=q2)
                np.add(q1, q2, out=dcols[:patch])
                np.subtract(bwr, bwi, out=w_diff)
                np.matmul(w_diff.T, grad_sum, out=dcols[patch:])
                np.subtract(dcols[patch:], q1, out=dcols[patch:])
                np.add(dcols[patch:], q2, out=dcols[patch:])
        if needs_input:
            dx_real, dx_imag = col2im_fn(dcols)
            if xr_slot is not None:
                if xr_first:
                    np.copyto(xr_slot, dx_real)
                else:
                    np.add(xr_slot, dx_real, out=xr_slot)
            if xi_slot is not None:
                if xi_first:
                    np.copyto(xi_slot, dx_imag)
                else:
                    np.add(xi_slot, dx_imag, out=xi_slot)
        if br_slot is not None:
            np.sum(grad_r, axis=1, out=br_slot)
        if bi_slot is not None:
            np.sum(grad_i, axis=1, out=bi_slot)

    return run


_BACKWARD_BUILDERS: Dict[str, Callable] = {
    "batch_norm": _b_batch_norm_build,
    "complex_linear": _b_complex_linear_build,
    "complex_conv2d": _b_complex_conv2d_build,
}


# --------------------------------------------------------------------------- #
# the compiled plan
# --------------------------------------------------------------------------- #
class TrainStepPlan:
    """A lowered training step: refresh inputs, replay, update, in place."""

    def __init__(self, input_buffers, input_meta, param_bindings, unused_params,
                 forward, backward, optimizer, grad_clip, update_indices,
                 loss_node, logits_node, stats):
        self._input_buffers = input_buffers
        self.input_meta = input_meta
        self._param_bindings = param_bindings
        self._unused_params = unused_params
        self._forward = forward
        self._backward = backward
        self._optimizer = optimizer
        self._grad_clip = grad_clip
        self._update_indices = update_indices
        self._loss = loss_node
        self._logits = logits_node
        self.stats = stats

    def execute(self, input_values: Dict[str, np.ndarray], update: bool = True):
        """Run one planned step; returns ``(loss, predicted labels)``.

        ``input_values`` maps the traced input keys (``input`` or
        ``input_real``/``input_imag``, plus ``cross_entropy_targets``) to the
        new batch's arrays.  With ``update=False`` the optimizer tail is
        skipped and the parameter gradients are left bound on ``p.grad``.
        """
        for key, buffer in self._input_buffers:
            np.copyto(buffer, input_values[key])
        for parameter, buffer in self._param_bindings:
            parameter.grad = buffer
        for parameter in self._unused_params:
            parameter.grad = None
        for instruction in self._forward:
            instruction()
        for instruction in self._backward:
            instruction()
        if update:
            optimizer = self._optimizer
            if self._grad_clip:
                optimizer.clip_grad_norm(self._grad_clip)
            optimizer.begin_step()
            for index in self._update_indices:
                optimizer.step_parameter(index)
        return float(self._loss.data), self._logits.data.argmax(axis=1)


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def compile_train_step(trace: TapeTrace, loss: Tensor, logits: Tensor,
                       optimizer, grad_clip: Optional[float] = None) -> TrainStepPlan:
    """Lower one traced training step to a :class:`TrainStepPlan`.

    Raises :class:`PlanUnsupported` when the trace cannot be replayed (a
    volatile op such as dropout, an untagged custom node, or a buffer-aliasing
    pattern the emitters cannot reproduce).
    """
    if trace.volatile:
        raise PlanUnsupported("volatile trace: " + "; ".join(sorted(set(trace.volatile))))

    entries: Dict[int, TapeEntry] = {id(e.tensor): e for e in trace.entries}
    params_index = {id(p): i for i, p in enumerate(optimizer.parameters)}
    input_ids = {id(tensor): key for key, (tensor, _meta) in trace.inputs.items()}

    # ------------------------------------------------------------------ #
    # reachability: every traced node whose data feeds the loss
    # ------------------------------------------------------------------ #
    needed: Dict[int, TapeEntry] = {}
    stack = [loss]
    seen = {id(loss)}
    while stack:
        tensor = stack.pop()
        entry = entries.get(id(tensor))
        if entry is None:
            continue  # leaf: parameter, marked input, or step-invariant constant
        needed[id(tensor)] = entry
        for parent in entry.parents:
            if id(parent) not in seen:
                seen.add(id(parent))
                stack.append(parent)

    if id(loss) not in needed or id(logits) not in needed:
        raise PlanUnsupported("loss or logits tensor is not part of the traced graph")

    # dynamic: recomputation is needed only for nodes depending on per-step
    # data (marked inputs) or on parameters mutated by the update tail;
    # trace entries are in creation order, which is topological, so one
    # forward sweep settles every node
    dynamic_ids = set(input_ids) | set(params_index)
    for entry in trace.entries:
        if any(id(parent) in dynamic_ids for parent in entry.parents):
            dynamic_ids.add(id(entry.tensor))

    # ------------------------------------------------------------------ #
    # backward analysis along the exact eager schedule
    # ------------------------------------------------------------------ #
    topo = loss._topological_order()
    for node in topo:
        if not node._parents:
            continue
        entry = entries.get(id(node))
        if entry is None:
            raise PlanUnsupported("graph node created outside the traced step")
        if entry.op is None:
            raise PlanUnsupported("graph contains an op without a replay emitter")
        if entry.op not in _FORWARD_EMITTERS:
            raise PlanUnsupported(f"no replay emitter for op {entry.op!r}")

    ctx = _CompileContext()
    pool = _BufferPool()
    grad_slot: Dict[int, np.ndarray] = {}
    contributed = {id(loss)}
    param_buffers: Dict[int, np.ndarray] = {}
    backward_instructions: List[Callable[[], None]] = []
    specialized_backward = 0

    # which pick indices of each packed tensor will receive gradients: the
    # missing halves must be zeroed so the packed closure sees them silent
    picks_by_packed: Dict[int, set] = {}
    topo_ids = {id(node) for node in topo}
    for node in topo:
        entry = entries.get(id(node))
        if entry is not None and entry.op == "pick":
            packed = entry.parents[0]
            picks_by_packed.setdefault(id(packed), set()).add(entry.params["index"])

    seed = np.ones_like(loss.data)
    grad_slot[id(loss)] = seed

    def acquire_slot(parent: Tensor, dtype) -> np.ndarray:
        pid = id(parent)
        if pid in params_index:
            buffer = np.empty(parent.data.shape, parent.data.dtype)
            param_buffers[pid] = buffer
            return buffer
        return pool.acquire(parent.data.shape, dtype)

    for node in reversed(topo):
        nid = id(node)
        if nid not in contributed:
            continue
        grad_in = grad_slot[nid]
        if node._backward is None or not node._parents:
            continue  # leaf (parameter): its slot is the persistent grad buffer
        entry = entries[nid]
        closure = entry.backward

        # one compile-time dry run discovers the closure's None pattern and
        # contribution shapes (closures are pure functions of grad and of the
        # forward state, so structure is shape-stable)
        dry = closure(np.zeros_like(node.data))

        emitted = False
        if entry.op == "pick":
            packed = entry.parents[0]
            pid = id(packed)
            first = pid not in contributed
            if first:
                contributed.add(pid)
                grad_slot[pid] = acquire_slot(packed, node.data.dtype)
            index = entry.params["index"]
            zero_indices = tuple(
                i for i in range(packed.data.shape[0])
                if i not in picks_by_packed[pid]
            ) if first else ()
            backward_instructions.append(
                _b_pick(grad_in, grad_slot[pid], index, zero_indices))
            emitted = True
        elif entry.op == "getitem" and _is_basic_index(entry.params["index"]):
            parent = entry.parents[0]
            pid = id(parent)
            first = pid not in contributed
            if first:
                contributed.add(pid)
                grad_slot[pid] = acquire_slot(parent, node.data.dtype)
            backward_instructions.append(
                _b_getitem(grad_in, grad_slot[pid], entry.params["index"], first))
            emitted = True
        elif entry.op == "relu":
            parent = entry.parents[0]
            pid = id(parent)
            first = pid not in contributed
            if first:
                contributed.add(pid)
                grad_slot[pid] = acquire_slot(parent, node.data.dtype)
            mask = ctx.relu_masks.setdefault(
                nid, np.empty(parent.data.shape, dtype=bool))
            backward_instructions.append(
                _b_relu(grad_in, mask, grad_slot[pid], first))
            emitted = True

        if not emitted:
            targets = []
            for position, (parent, contribution) in enumerate(zip(entry.parents, dry)):
                if contribution is None or not parent.requires_grad:
                    continue
                if id(parent) not in topo_ids:
                    continue
                pid = id(parent)
                first = pid not in contributed
                if first:
                    contributed.add(pid)
                    grad_slot[pid] = acquire_slot(parent, contribution.dtype)
                needs_reduce = contribution.shape != parent.data.shape
                targets.append((position, grad_slot[pid], first, needs_reduce,
                                parent.data.shape))
            builder = _BACKWARD_BUILDERS.get(entry.op)
            instruction = builder(entry, grad_in, targets) if builder else None
            if instruction is None:
                instruction = _b_generic(closure, grad_in, tuple(targets))
            else:
                specialized_backward += 1
            backward_instructions.append(instruction)

        if nid not in params_index and grad_in is not seed:
            pool.release(grad_in)

    # ------------------------------------------------------------------ #
    # forward instructions in creation order (a valid topological order)
    # ------------------------------------------------------------------ #
    forward_instructions: List[Callable[[], None]] = []
    forward_node_ids: List[int] = []
    static_views = 0
    view_origin: Dict[int, int] = {}  # static-view node -> producing buffer's node
    for entry in trace.entries:
        nid = id(entry.tensor)
        if nid not in needed or nid not in dynamic_ids:
            continue
        op = entry.op
        if op is None or op not in _FORWARD_EMITTERS:
            raise PlanUnsupported(f"no replay emitter for op {op!r}")
        if op in _VIEW_OPS and np.may_share_memory(entry.tensor.data,
                                                   entry.parents[0].data):
            # compile-time view of a stable buffer: zero per-step cost
            static_views += 1
            parent_id = id(entry.parents[0])
            view_origin[nid] = view_origin.get(parent_id, parent_id)
            continue
        factory = _FORWARD_EMITTERS[op]
        if factory is None:
            raise PlanUnsupported(f"op {op!r} produced a non-view output")
        if op not in _VIEW_OPS:
            for parent in entry.parents:
                if np.may_share_memory(entry.tensor.data, parent.data):
                    raise PlanUnsupported(
                        f"op {op!r} output aliases its input; in-place replay "
                        "would corrupt the operand")
        forward_instructions.append(factory(entry, ctx))
        forward_node_ids.append(nid)

    # fuse producer -> activation chains into single instruction objects: an
    # activation only reads its producer's buffer and every instruction writes
    # only its own, so a relu can always be hoisted next to its producer (even
    # across the sibling-plane instructions of the complex pair layout)
    fused = 0
    fused_forward: List[Callable[[], None]] = []
    position_of: Dict[int, int] = {}
    for nid, instruction in zip(forward_node_ids, forward_instructions):
        entry = entries[nid]
        if entry.op == "relu":
            parent_id = id(entry.parents[0])
            source = view_origin.get(parent_id, parent_id)
            at = position_of.get(source)
            if at is not None:
                fused_forward[at] = _FusedForward(fused_forward[at], instruction)
                position_of[nid] = at
                fused += 1
                continue
        position_of[nid] = len(fused_forward)
        fused_forward.append(instruction)

    # ------------------------------------------------------------------ #
    # inputs and the optimizer tail
    # ------------------------------------------------------------------ #
    input_buffers = []
    input_meta = {}
    for key, (tensor, meta) in trace.inputs.items():
        if id(tensor) in entries:
            raise PlanUnsupported(f"marked input {key!r} is not a leaf")
        if id(tensor) not in seen:
            continue  # traced but unused by this model
        input_buffers.append((key, tensor.data))
        input_meta[key] = meta

    param_bindings = []
    update_indices = []
    unused_params = []
    for parameter in optimizer.parameters:
        buffer = param_buffers.get(id(parameter))
        if buffer is None:
            unused_params.append(parameter)
        else:
            param_bindings.append((parameter, buffer))
            update_indices.append(params_index[id(parameter)])

    if not param_bindings:
        raise PlanUnsupported("no parameter receives a gradient in the traced step")

    stats = {
        "forward_instructions": len(fused_forward),
        "backward_instructions": len(backward_instructions),
        "fused_activations": fused,
        "specialized_backward": specialized_backward,
        "static_views": static_views,
        "pooled_grad_buffers": pool.allocated,
        "parameter_gradients": len(param_bindings),
        "traced_nodes": len(trace.entries),
    }
    return TrainStepPlan(
        input_buffers=tuple(input_buffers),
        input_meta=input_meta,
        param_bindings=tuple(param_bindings),
        unused_params=tuple(unused_params),
        forward=tuple(fused_forward),
        backward=tuple(backward_instructions),
        optimizer=optimizer,
        grad_clip=grad_clip,
        update_indices=tuple(update_indices),
        loss_node=loss,
        logits_node=logits,
        stats=stats,
    )
