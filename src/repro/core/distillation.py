"""SCVNN-CVNN mutual learning (Section III-C of the paper).

The split network (student) and a larger complex-valued network with
conventional assignment (teacher) are trained *jointly* from scratch, each
minimising its own cross-entropy plus a KL term towards the other's softened
predictions (deep mutual learning, Zhang et al. CVPR 2018):

.. math::

    L_{SCVNN} = L_{CE} + \\alpha \\, KL(p_{CVNN} \\,\\|\\, p_{SCVNN}), \\qquad
    L_{CVNN}  = L_{CE} + \\alpha \\, KL(p_{SCVNN} \\,\\|\\, p_{CVNN})

Both networks see the *same* images each step, but through their own data
assignment (the student through SI/CL/..., the teacher through the
conventional amplitude-only assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.assignment import AssignmentScheme, get_scheme
from repro.core.config import TrainingConfig
from repro.core.training import (
    Trainer,
    TrainingHistory,
    apply_parameter_constraints,
    evaluate_accuracy,
    prepare_batch,
)
from repro.data.loader import DataLoader
from repro.nn.losses import cross_entropy, kl_divergence
from repro.nn.module import Module


@dataclass
class MutualLearningResult:
    """Histories and final accuracies of a mutual-learning run."""

    student_history: TrainingHistory = field(default_factory=TrainingHistory)
    teacher_history: TrainingHistory = field(default_factory=TrainingHistory)
    student_test_accuracy: float = 0.0
    teacher_test_accuracy: float = 0.0


class MutualLearningTrainer:
    """Joint trainer for the SCVNN student and its CVNN teacher.

    Parameters
    ----------
    student, teacher:
        The two models.  The teacher is typically a larger network of the same
        family (e.g. CVNN ResNet-56 for an SCVNN ResNet-32 student).
    config:
        Shared hyper-parameters; ``distillation_alpha`` is the paper's alpha.
    student_scheme:
        Data assignment of the student (e.g. spatial interlace).
    teacher_scheme:
        Data assignment of the teacher; defaults to the conventional
        amplitude-only assignment.
    """

    def __init__(self, student: Module, teacher: Module, config: TrainingConfig,
                 student_scheme: AssignmentScheme,
                 teacher_scheme: Optional[AssignmentScheme] = None):
        self.student = student
        self.teacher = teacher
        self.config = config
        self.student_scheme = student_scheme
        self.teacher_scheme = teacher_scheme if teacher_scheme is not None else get_scheme("conventional")
        self.student_trainer = Trainer(student, config, scheme=student_scheme)
        self.teacher_trainer = Trainer(teacher, config, scheme=self.teacher_scheme)

    def _mutual_step(self, images: np.ndarray, labels: np.ndarray) -> tuple:
        """One joint update of both networks; returns their batch losses."""
        alpha = self.config.distillation_alpha
        temperature = self.config.distillation_temperature

        # student update (teacher logits act as a constant target)
        self.student_trainer.optimizer.zero_grad()
        student_logits = self.student(prepare_batch(images, self.student_scheme))
        teacher_logits = self.teacher(prepare_batch(images, self.teacher_scheme))
        student_loss = cross_entropy(student_logits, labels,
                                     label_smoothing=self.config.label_smoothing)
        if alpha > 0:
            student_loss = student_loss + alpha * kl_divergence(
                student_logits, teacher_logits.detach(), temperature=temperature)
        student_loss.backward()
        if self.config.grad_clip:
            self.student_trainer.optimizer.clip_grad_norm(self.config.grad_clip)
        self.student_trainer.optimizer.step()
        apply_parameter_constraints(self.student)

        # teacher update (student logits act as a constant target)
        self.teacher_trainer.optimizer.zero_grad()
        teacher_logits = self.teacher(prepare_batch(images, self.teacher_scheme))
        student_logits_fixed = student_logits.detach()
        teacher_loss = cross_entropy(teacher_logits, labels,
                                     label_smoothing=self.config.label_smoothing)
        if alpha > 0:
            teacher_loss = teacher_loss + alpha * kl_divergence(
                teacher_logits, student_logits_fixed, temperature=temperature)
        teacher_loss.backward()
        if self.config.grad_clip:
            self.teacher_trainer.optimizer.clip_grad_norm(self.config.grad_clip)
        self.teacher_trainer.optimizer.step()
        apply_parameter_constraints(self.teacher)

        return float(student_loss.data), float(teacher_loss.data)

    def fit(self, train_loader: DataLoader, test_loader: Optional[DataLoader] = None,
            verbose: bool = False) -> MutualLearningResult:
        """Run the joint training schedule."""
        result = MutualLearningResult()
        self.student.train()
        self.teacher.train()
        for epoch in range(self.config.epochs):
            student_loss_sum = teacher_loss_sum = 0.0
            batches = 0
            for images, labels in train_loader:
                student_loss, teacher_loss = self._mutual_step(images, labels)
                student_loss_sum += student_loss
                teacher_loss_sum += teacher_loss
                batches += 1
            result.student_history.train_loss.append(student_loss_sum / max(batches, 1))
            result.teacher_history.train_loss.append(teacher_loss_sum / max(batches, 1))
            if test_loader is not None:
                student_acc = evaluate_accuracy(self.student, test_loader, self.student_scheme)
                teacher_acc = evaluate_accuracy(self.teacher, test_loader, self.teacher_scheme)
                result.student_history.test_accuracy.append(student_acc)
                result.teacher_history.test_accuracy.append(teacher_acc)
            for trainer in (self.student_trainer, self.teacher_trainer):
                if trainer.scheduler is not None:
                    trainer.scheduler.step()
            if verbose:
                student_acc = (result.student_history.test_accuracy[-1]
                               if result.student_history.test_accuracy else float("nan"))
                print(f"epoch {epoch + 1:3d}: student_loss={result.student_history.train_loss[-1]:.4f} "
                      f"student_acc={student_acc:.4f}")
        if test_loader is not None:
            result.student_test_accuracy = result.student_history.final_test_accuracy
            result.teacher_test_accuracy = result.teacher_history.final_test_accuracy
        return result
