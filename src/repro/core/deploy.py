"""Deployment of trained complex models onto simulated photonic hardware.

``deploy_linear_model`` maps every complex weight matrix of a trained
:class:`~repro.models.fcnn.ComplexFCNN` (trunk and decoder head) onto MZI
meshes via SVD (the "Paras -> phase mapping -> deploy phases" arrow of Fig. 2)
and returns a :class:`DeployedModel` whose forward pass is executed purely
with component transfer matrices -- complex light amplitudes propagating
through meshes, electro-optic CReLU nonlinearities, and photodiode / coherent
detection at the output.

The deployed circuit should agree with the software model to numerical
precision; the integration tests check exactly that, as well as the graceful
degradation under phase noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.decoders import (
    CoherentDecoderHead,
    DecoderHead,
    LinearDecoderHead,
    MergeDecoderHead,
    PhotodiodeHead,
    UnitaryDecoderHead,
)
from repro.nn.complex import ComplexLinear
from repro.photonics.circuit import PhotonicLinearLayer, split_relu
from repro.photonics.encoders import DCComplexEncoder
from repro.photonics.noise import PhaseNoiseModel


def _complex_bias(layer: ComplexLinear) -> Optional[np.ndarray]:
    if layer.bias_real is None:
        return None
    return layer.bias_real.data + 1j * layer.bias_imag.data


def _deploy_complex_linear(layer: ComplexLinear, name: str, method: str) -> PhotonicLinearLayer:
    return PhotonicLinearLayer.from_weight(layer.complex_weight(), bias=_complex_bias(layer),
                                           method=method, name=name)


@dataclass
class DeployedStage:
    """One photonic linear layer plus whether a CReLU follows it."""

    layer: PhotonicLinearLayer
    activation_after: bool = False


@dataclass
class DeployedModel:
    """A complex model executing on simulated photonic hardware."""

    stages: List[DeployedStage]
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    encoder: DCComplexEncoder = field(default_factory=DCComplexEncoder)

    @property
    def mzi_count(self) -> int:
        return sum(stage.layer.mzi_count for stage in self.stages)

    def forward_signals(self, complex_inputs: np.ndarray) -> np.ndarray:
        """Propagate complex input amplitudes through every photonic stage.

        When the stages carry trials-batched (noise-ensemble) meshes the
        signal gains a leading trials axis at the first stage and every
        realization propagates consistently through the rest of the chain.
        """
        signal = np.asarray(complex_inputs, dtype=complex)
        for stage in self.stages:
            signal = stage.layer(signal)
            if stage.activation_after:
                signal = split_relu(signal)
        return signal

    def predict_logits(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        """Run the full optical pipeline: assignment, encoding, meshes, readout."""
        assignment = scheme.assign(images)
        flattened_real = assignment.real.reshape(assignment.real.shape[0], -1)
        flattened_imag = assignment.imag.reshape(assignment.imag.shape[0], -1)
        light = self.encoder.encode(flattened_real, flattened_imag)
        signal = self.forward_signals(light)
        return self.readout(signal)

    def classify(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        return self.predict_logits(images, scheme).argmax(axis=-1)

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "DeployedModel":
        """Return a copy whose meshes carry phase noise / quantization.

        ``trials`` draws an ensemble of noise realizations per mesh; the
        copy's logits and predictions then carry a leading trials axis, so a
        whole Monte-Carlo robustness sweep runs in one batched forward pass.
        """
        stages = [DeployedStage(layer=stage.layer.with_noise(noise, quantization_bits,
                                                             trials=trials),
                                activation_after=stage.activation_after)
                  for stage in self.stages]
        return DeployedModel(stages=stages, readout=self.readout,
                             num_classes=self.num_classes, encoder=self.encoder)


def _head_stages_and_readout(head: DecoderHead, method: str):
    """Deploy a decoder head: extra photonic stages plus the detector readout.

    The per-class electronic calibration (scale + offset of the photocurrents)
    trained with the head is replicated digitally inside the readout closure --
    it lives in the electrical domain and costs no optical area.
    """
    num_classes = head.num_classes
    scale, bias = head.calibration.as_arrays()

    def calibrated(logits: np.ndarray) -> np.ndarray:
        return logits * scale + bias

    def paired_power(signal: np.ndarray) -> np.ndarray:
        power = np.abs(signal) ** 2
        summed = power[..., :num_classes] + power[..., num_classes:2 * num_classes]
        return calibrated(np.sqrt(summed + 1e-12))

    if isinstance(head, MergeDecoderHead):
        stages = [DeployedStage(_deploy_complex_linear(head.merged_layer, "head.merged", method))]
        return stages, paired_power
    if isinstance(head, LinearDecoderHead):
        stages = [
            DeployedStage(_deploy_complex_linear(head.last_layer, "head.last", method)),
            DeployedStage(_deploy_complex_linear(head.decoder_layer, "head.decoder", method)),
        ]
        return stages, paired_power
    if isinstance(head, UnitaryDecoderHead):
        last = _deploy_complex_linear(head.last_layer, "head.last", method)
        unitary_weight = head.unitary.complex_weight()
        # the zero-padded modes carry no light, so deploying the first C columns
        # of the unitary as a 2C x C matrix is exactly equivalent
        unitary_stage = PhotonicLinearLayer.from_weight(
            unitary_weight[:, :head.num_classes], method=method, name="head.unitary")
        return [DeployedStage(last), DeployedStage(unitary_stage)], paired_power
    if isinstance(head, CoherentDecoderHead):
        stages = [DeployedStage(_deploy_complex_linear(head.last_layer, "head.last", method))]

        def coherent_readout(signal: np.ndarray) -> np.ndarray:
            from repro.photonics.detectors import CoherentDetector

            return calibrated(CoherentDetector().detect(signal).real)

        return stages, coherent_readout
    if isinstance(head, PhotodiodeHead):
        stages = [DeployedStage(_deploy_complex_linear(head.last_layer, "head.last", method))]

        def power_readout(signal: np.ndarray) -> np.ndarray:
            return calibrated(np.abs(signal))

        return stages, power_readout
    raise TypeError(f"cannot deploy decoder head of type {type(head).__name__}")


def deploy_linear_model(model, method: str = "clements") -> DeployedModel:
    """Deploy a trained :class:`~repro.models.fcnn.ComplexFCNN` onto photonic hardware.

    Convolutional models are lowered layer by layer to the same matrix-vector
    products, but streaming im2col patches through meshes is orders of
    magnitude slower in simulation, so deployment is provided for the fully
    connected family (the paper's Fig. 2 workflow demonstrator).
    """
    from repro.models.fcnn import ComplexFCNN  # imported lazily to avoid a cycle

    if not isinstance(model, ComplexFCNN):
        raise TypeError("deploy_linear_model supports ComplexFCNN models; "
                        "use model_area_report for CNN area accounting")
    model.eval()
    stages: List[DeployedStage] = []
    for index, layer in enumerate(model.trunk):
        if isinstance(layer, ComplexLinear):
            stages.append(DeployedStage(
                _deploy_complex_linear(layer, f"trunk.{index}", method), activation_after=True))
    head_stages, readout = _head_stages_and_readout(model.head, method)
    stages.extend(head_stages)
    return DeployedModel(stages=stages, readout=readout, num_classes=model.num_classes)
