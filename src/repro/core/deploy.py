"""Deployment of trained complex models onto simulated photonic hardware.

``deploy_model`` lowers any supported complex model -- fully connected
(:class:`~repro.models.fcnn.ComplexFCNN`) or convolutional
(:class:`~repro.models.lenet.ComplexLeNet5`) -- onto MZI meshes through the
compiler-style pass of :mod:`repro.core.lowering` (the "Paras -> phase
mapping -> deploy phases" arrow of Fig. 2) and returns a
:class:`DeployedModel` whose forward pass is executed purely with component
transfer matrices -- complex light amplitudes propagating through meshes,
im2col patch streams for convolutions, electro-optic CReLU nonlinearities and
photodiode / coherent detection at the output.

The deployed circuit should agree with the software model to numerical
precision; the integration tests check exactly that, as well as the graceful
degradation under phase noise.  Everything is batch-first: a whole image
batch (and, with ``with_noise(trials=...)``, a whole Monte-Carlo ensemble of
noise realizations) propagates as one vectorized pass through the compiled
mesh engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.lowering import LinearStage, PhotonicStage, lower_model
from repro.photonics.encoders import DCComplexEncoder
from repro.photonics.noise import PhaseNoiseModel

#: historical name for the linear stage of a lowered program
DeployedStage = LinearStage


@dataclass
class DeployedModel:
    """A complex model executing on simulated photonic hardware.

    ``stages`` is the lowered photonic program: linear mesh stages, im2col
    convolution stages and structural (pooling / flatten) stages, applied in
    order.  ``input_kind`` records whether the program consumes flat feature
    vectors or image maps (convolutional trunks).
    """

    stages: List[PhotonicStage]
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    input_kind: str = "flat"
    encoder: DCComplexEncoder = field(default_factory=DCComplexEncoder)

    @property
    def mzi_count(self) -> int:
        return sum(stage.mzi_count for stage in self.stages)

    def forward_signals(self, complex_inputs: np.ndarray) -> np.ndarray:
        """Propagate complex input amplitudes through every photonic stage.

        Batch-first: ``complex_inputs`` is ``(batch, n)`` for flat programs or
        ``(batch, channels, height, width)`` for convolutional ones.  When the
        stages carry trials-batched (noise-ensemble) meshes the signal gains a
        leading trials axis at the first mesh stage and every realization
        propagates consistently through the rest of the chain.
        """
        signal = np.asarray(complex_inputs, dtype=complex)
        for stage in self.stages:
            signal = stage.forward(signal)
        return signal

    forward = forward_signals
    __call__ = forward_signals

    def predict_logits(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        """Run the full optical pipeline: assignment, encoding, meshes, readout."""
        assignment = scheme.assign(images)
        if self.input_kind == "image":
            light = self.encoder.encode(assignment.real, assignment.imag)
        else:
            flattened_real = assignment.real.reshape(assignment.real.shape[0], -1)
            flattened_imag = assignment.imag.reshape(assignment.imag.shape[0], -1)
            light = self.encoder.encode(flattened_real, flattened_imag)
        signal = self.forward_signals(light)
        return self.readout(signal)

    def classify(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        return self.predict_logits(images, scheme).argmax(axis=-1)

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "DeployedModel":
        """Return a copy whose meshes carry phase noise / quantization.

        ``trials`` draws an ensemble of noise realizations per mesh; the
        copy's logits and predictions then carry a leading trials axis, so a
        whole Monte-Carlo robustness sweep runs in one batched forward pass.
        A noise model with an *array* ``sigma`` additionally prepends a sigma
        axis, folding a whole sigma sweep into the same pass.
        """
        stages = [stage.with_noise(noise, quantization_bits, trials=trials)
                  for stage in self.stages]
        return DeployedModel(stages=stages, readout=self.readout,
                             num_classes=self.num_classes,
                             input_kind=self.input_kind, encoder=self.encoder)


def deploy_model(model, method: str = "clements") -> DeployedModel:
    """Deploy a trained complex model onto simulated photonic hardware.

    Fully connected models map every ``ComplexLinear`` (trunk and decoder
    head) onto an SVD pair of MZI meshes; convolutional models are lowered
    layer by layer -- each ``ComplexConv2d`` kernel becomes its im2col matrix
    on meshes and the forward pass streams complex patch batches through the
    compiled mesh engine.  See :func:`repro.core.lowering.lower_model` for
    the supported model families.
    """
    program = lower_model(model, method=method)
    return DeployedModel(stages=program.stages, readout=program.readout,
                         num_classes=program.num_classes,
                         input_kind=program.input_kind)


def deploy_linear_model(model, method: str = "clements") -> DeployedModel:
    """Historical name of :func:`deploy_model` (it predates conv lowering).

    Kept as an alias; both fully connected and convolutional complex models
    deploy through the same lowering pipeline.
    """
    return deploy_model(model, method=method)
