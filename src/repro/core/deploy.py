"""Deprecated deployment shims over the :func:`repro.compile` pipeline.

``deploy_model`` / ``deploy_linear_model`` predate the graph-shaped compiler
(:mod:`repro.core.compile`).  They are kept as thin shims so every historical
experiment, benchmark and CLI path keeps working: each one compiles the model
through ``repro.compile`` and flattens the resulting chain program back into
a :class:`DeployedModel`.  New code should call ``repro.compile`` directly --
it additionally handles graph-shaped (residual) models, exposes the
dense/column execution policy per compile instead of via module globals, and
batches the unitary decomposition of same-size weights.

The deployed circuit agrees with the software model to numerical precision;
the integration tests check exactly that, as well as the graceful
degradation under phase noise.  Everything is batch-first: a whole image
batch (and, with ``with_noise(trials=...)``, a whole Monte-Carlo ensemble of
noise realizations) propagates as one vectorized pass through the compiled
mesh engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.lowering import LinearStage, PhotonicStage
from repro.photonics.encoders import DCComplexEncoder
from repro.photonics.noise import PhaseNoiseModel

#: historical name for the linear stage of a lowered program
DeployedStage = LinearStage


@dataclass
class DeployedModel:
    """A chain-shaped complex model executing on simulated photonic hardware.

    ``stages`` is the lowered photonic program: linear mesh stages, im2col
    convolution stages and structural (pooling / flatten) stages, applied in
    order.  ``input_kind`` records whether the program consumes flat feature
    vectors or image maps (convolutional trunks).  Residual models have no
    stage-chain form; they compile to the graph-shaped
    :class:`~repro.core.compile.CompiledProgram` instead.
    """

    stages: List[PhotonicStage]
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    input_kind: str = "flat"
    encoder: DCComplexEncoder = field(default_factory=DCComplexEncoder)

    @property
    def mzi_count(self) -> int:
        return sum(stage.mzi_count for stage in self.stages)

    def forward_signals(self, complex_inputs: np.ndarray) -> np.ndarray:
        """Propagate complex input amplitudes through every photonic stage.

        Batch-first: ``complex_inputs`` is ``(batch, n)`` for flat programs or
        ``(batch, channels, height, width)`` for convolutional ones.  When the
        stages carry trials-batched (noise-ensemble) meshes the signal gains a
        leading trials axis at the first mesh stage and every realization
        propagates consistently through the rest of the chain.
        """
        signal = np.asarray(complex_inputs, dtype=complex)
        for stage in self.stages:
            signal = stage.forward(signal)
        return signal

    forward = forward_signals
    __call__ = forward_signals

    def predict_logits(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        """Run the full optical pipeline: assignment, encoding, meshes, readout."""
        assignment = scheme.assign(images)
        if self.input_kind == "image":
            light = self.encoder.encode(assignment.real, assignment.imag)
        else:
            flattened_real = assignment.real.reshape(assignment.real.shape[0], -1)
            flattened_imag = assignment.imag.reshape(assignment.imag.shape[0], -1)
            light = self.encoder.encode(flattened_real, flattened_imag)
        signal = self.forward_signals(light)
        return self.readout(signal)

    def classify(self, images: np.ndarray, scheme: AssignmentScheme) -> np.ndarray:
        return self.predict_logits(images, scheme).argmax(axis=-1)

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "DeployedModel":
        """Return a copy whose meshes carry phase noise / quantization.

        ``trials`` draws an ensemble of noise realizations per mesh; the
        copy's logits and predictions then carry a leading trials axis, so a
        whole Monte-Carlo robustness sweep runs in one batched forward pass.
        A noise model with an *array* ``sigma`` additionally prepends a sigma
        axis, folding a whole sigma sweep into the same pass.
        """
        stages = [stage.with_noise(noise, quantization_bits, trials=trials)
                  for stage in self.stages]
        return DeployedModel(stages=stages, readout=self.readout,
                             num_classes=self.num_classes,
                             input_kind=self.input_kind, encoder=self.encoder)


def _deploy_via_compile(model, method: str) -> DeployedModel:
    from repro.core.compile import HardwareTarget, compile as compile_model

    program = compile_model(model, target=HardwareTarget(method=method))
    try:
        stages = program.graph.chain_stages()
    except ValueError as error:
        raise TypeError(
            f"model of type {type(model).__name__} compiles to a graph-shaped "
            "program (skip additions / fan-out) that DeployedModel cannot "
            "represent; use repro.compile(model) instead") from error
    return DeployedModel(stages=stages, readout=program.readout,
                         num_classes=program.num_classes,
                         input_kind=program.input_kind, encoder=program.encoder)


def deploy_model(model, method: str = "clements") -> DeployedModel:
    """Deprecated: deploy a sequential complex model onto photonic hardware.

    Thin shim over :func:`repro.compile` kept for backwards compatibility;
    the compiled stages are identical to the new API's (the shim merely
    re-wraps the chain program).  Use ``repro.compile`` directly for new code
    and for residual models.
    """
    warnings.warn("deploy_model() is deprecated; use repro.compile(model, "
                  "target=HardwareTarget(method=...)) instead",
                  DeprecationWarning, stacklevel=2)
    return _deploy_via_compile(model, method)


def deploy_linear_model(model, method: str = "clements") -> DeployedModel:
    """Deprecated historical name of :func:`deploy_model` (predates conv lowering)."""
    warnings.warn("deploy_linear_model() is deprecated; use repro.compile(model, "
                  "target=HardwareTarget(method=...)) instead",
                  DeprecationWarning, stacklevel=2)
    return _deploy_via_compile(model, method)
