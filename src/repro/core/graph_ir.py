"""Graph intermediate representation of compiled photonic programs.

A compiled model is a directed acyclic graph of named :class:`GraphNode`\\ s.
Each node wraps an *op* -- either a photonic stage from
:mod:`repro.core.lowering` (mesh-deployed linear / convolution layers,
structural pooling and flatten stages) or one of the electronic ops defined
here -- and names the nodes whose outputs it consumes.  Edges are explicit:
a node referenced by several consumers fans its signal out (an optical
splitter / electronic broadcast), which is how residual architectures express
their skip connections:

* :class:`ElectronicAdd` -- skip-connection addition.  Photocurrents (or
  digitised amplitudes) of the two branches are summed in the electronic
  domain, costing no optical area.
* :class:`ElectronicBatchNorm` -- an eval-mode split batch norm folded to a
  per-channel affine map on the real and imaginary parts independently.
  Split normalisation is widely-linear (not complex-linear), so it cannot be
  absorbed into an MZI mesh; like biases it lives in the electronic domain.
* :class:`ElectronicActivation` -- a CReLU that could not be folded into a
  preceding mesh stage (e.g. the activation after a skip addition), applied
  electro-optically as its own node.

This module holds the graph *definition*; *execution* lives in
:mod:`repro.core.runtime`.  :meth:`GraphProgram.plan` compiles the DAG once
into an :class:`~repro.core.runtime.ExecutionPlan` -- a flat instruction list
with precomputed buffer lifetimes, eager dense transfer matrices and fused
electronic affine ops -- and :meth:`GraphProgram.forward` is a thin wrapper
over executing that (cached) plan.  The original interpreted node-walk is
kept as :meth:`GraphProgram.forward_reference`, the executable specification
the test-suite pins every plan against to 1e-12.  Chain-shaped graphs
(purely sequential models) can be flattened back to a stage list with
:meth:`GraphProgram.chain_stages`, which is what keeps the deprecated
``DeployedModel`` shims working on top of the new compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.circuit import split_relu
from repro.photonics.noise import PhaseNoiseModel

#: name of the implicit source node every graph reads its input signal from
INPUT = "input"


# --------------------------------------------------------------------------- #
# electronic ops
# --------------------------------------------------------------------------- #
@dataclass
class ElectronicAdd:
    """Sum the signals of several producer nodes (skip-connection addition).

    Leading trials/sigma axes broadcast: an identity skip branch that never
    passed through a noisy mesh broadcasts against the trials-batched main
    branch exactly like numpy broadcasting.
    """

    mzi_count: int = 0

    def forward(self, *signals: np.ndarray) -> np.ndarray:
        if not signals:
            raise ValueError("ElectronicAdd needs at least one input signal")
        total = np.asarray(signals[0], dtype=complex)
        for signal in signals[1:]:
            total = total + np.asarray(signal, dtype=complex)
        return total

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "ElectronicAdd":
        return self


@dataclass
class ElectronicActivation:
    """Electro-optic CReLU applied as its own graph node."""

    mzi_count: int = 0

    def forward(self, signal: np.ndarray) -> np.ndarray:
        return split_relu(signal)

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "ElectronicActivation":
        return self


@dataclass
class ElectronicBatchNorm:
    """Eval-mode split batch norm as a per-channel electronic affine map.

    ``real_scale``/``real_shift`` act on the real part and
    ``imag_scale``/``imag_shift`` on the imaginary part (split normalisation
    treats the two as independent real channels).  With ``spatial=True`` the
    channel axis is ``-3`` of an image signal ``(..., C, H, W)``; otherwise
    the parameters act on the trailing feature axis.
    """

    real_scale: np.ndarray
    real_shift: np.ndarray
    imag_scale: np.ndarray
    imag_shift: np.ndarray
    spatial: bool = True

    mzi_count: int = 0

    def __post_init__(self) -> None:
        self.real_scale = np.asarray(self.real_scale, dtype=float)
        self.real_shift = np.asarray(self.real_shift, dtype=float)
        self.imag_scale = np.asarray(self.imag_scale, dtype=float)
        self.imag_shift = np.asarray(self.imag_shift, dtype=float)

    def _shaped(self, params: np.ndarray) -> np.ndarray:
        return params[:, None, None] if self.spatial else params

    def forward(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=complex)
        real = signal.real * self._shaped(self.real_scale) + self._shaped(self.real_shift)
        imag = signal.imag * self._shaped(self.imag_scale) + self._shaped(self.imag_shift)
        return real + 1j * imag

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "ElectronicBatchNorm":
        return self


# --------------------------------------------------------------------------- #
# graph structure
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphNode:
    """One op of the program plus the names of the nodes it consumes."""

    name: str
    op: Any
    inputs: Tuple[str, ...]


@dataclass
class GraphProgram:
    """A topologically ordered photonic/electronic dataflow graph.

    ``nodes`` must be in execution order (every input of a node refers to
    :data:`INPUT` or an earlier node); ``output`` names the node whose signal
    the program returns.  ``readout`` converts the complex output amplitudes
    to real logits (photodiode / coherent detection plus calibration) and
    ``input_kind`` records what the first stage consumes (``"flat"`` feature
    vectors or ``"image"`` maps).
    """

    nodes: List[GraphNode]
    output: str
    readout: Callable[[np.ndarray], np.ndarray]
    num_classes: int
    input_kind: str = "flat"
    _last_use: Dict[str, int] = field(default_factory=dict, repr=False)
    _plan: Optional[Any] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        defined = {INPUT}
        for node in self.nodes:
            if node.name in defined:
                raise ValueError(f"duplicate graph node name {node.name!r}")
            missing = [name for name in node.inputs if name not in defined]
            if missing:
                raise ValueError(f"node {node.name!r} consumes undefined "
                                 f"producers {missing} (not topologically ordered?)")
            defined.add(node.name)
        if self.output not in defined:
            raise ValueError(f"output node {self.output!r} is not defined")
        self._last_use = {}
        for index, node in enumerate(self.nodes):
            for name in node.inputs:
                self._last_use[name] = index
        self._last_use[self.output] = len(self.nodes)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def node(self, name: str) -> GraphNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no graph node named {name!r}")

    @property
    def mzi_count(self) -> int:
        return sum(node.op.mzi_count for node in self.nodes)

    @property
    def is_chain(self) -> bool:
        """True when the graph is a straight line from input to output."""
        previous = INPUT
        for node in self.nodes:
            if node.inputs != (previous,):
                return False
            previous = node.name
        return bool(self.nodes) and self.output == self.nodes[-1].name

    def chain_stages(self) -> List[Any]:
        """Flatten a chain-shaped graph back to an ordered stage/op list.

        Raises ``ValueError`` for graphs with fan-out or multi-input nodes
        (residual programs have no stage-chain form -- execute the graph).
        """
        if not self.is_chain:
            raise ValueError("program is graph-shaped (fan-out / skip-add nodes); "
                             "it has no sequential stage-chain form")
        return [node.op for node in self.nodes]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def plan(self, options: Optional[Any] = None):
        """The graph compiled to an :class:`~repro.core.runtime.ExecutionPlan`.

        The default plan (``options=None``) is compiled once and cached on
        the program, and recompiled when a baked mesh's phases were mutated
        in place through ``update_phases`` (plans fold phases into dense
        matrices, so they track each mesh's phase version); explicit
        :class:`~repro.core.runtime.PlanOptions` always compile a fresh plan.
        """
        from repro.core.runtime import compile_plan

        if options is not None:
            return compile_plan(self, options)
        if self._plan is None or self._plan.is_stale():
            self._plan = compile_plan(self)
        return self._plan

    def forward(self, signal: np.ndarray) -> np.ndarray:
        """Execute the graph on a batch of complex input amplitudes.

        Thin wrapper over executing the cached :meth:`plan`.  Batch-first
        like every stage: trials-batched (noise-ensemble) mesh nodes prepend
        their trials axes and the electronic nodes broadcast over them.
        """
        return self.plan().execute(signal)

    def forward_reference(self, signal: np.ndarray) -> np.ndarray:
        """The original interpreted node-walk, kept as the parity reference.

        Walks the DAG node by node, refcounting intermediate signals and
        freeing each after its last consumer -- exactly what
        :meth:`forward` did before the plan runtime existed.  The test-suite
        pins plan execution against this walk to 1e-12.
        """
        values: Dict[str, np.ndarray] = {INPUT: np.asarray(signal, dtype=complex)}
        for index, node in enumerate(self.nodes):
            values[node.name] = node.op.forward(*(values[name] for name in node.inputs))
            for name in node.inputs:
                if self._last_use.get(name, -1) == index:
                    del values[name]
        return values[self.output]

    __call__ = forward

    # ------------------------------------------------------------------ #
    # hardware non-idealities
    # ------------------------------------------------------------------ #
    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "GraphProgram":
        """A copy of the graph whose mesh nodes carry noise / quantization."""
        nodes = [GraphNode(name=node.name,
                           op=node.op.with_noise(noise, quantization_bits, trials=trials),
                           inputs=node.inputs)
                 for node in self.nodes]
        return GraphProgram(nodes=nodes, output=self.output, readout=self.readout,
                            num_classes=self.num_classes, input_kind=self.input_kind)


class GraphBuilder:
    """Incrementally assemble a :class:`GraphProgram` in topological order."""

    def __init__(self) -> None:
        self._nodes: List[GraphNode] = []
        self._by_name: Dict[str, GraphNode] = {}

    def add(self, name: str, op: Any, inputs: Sequence[str]) -> str:
        """Append a node; a colliding name is uniquified with a numeric suffix."""
        unique = name
        suffix = 1
        while unique == INPUT or unique in self._by_name:
            unique = f"{name}#{suffix}"
            suffix += 1
        node = GraphNode(name=unique, op=op, inputs=tuple(inputs))
        self._nodes.append(node)
        self._by_name[unique] = node
        return unique

    def op_of(self, name: str) -> Optional[Any]:
        """The op of a previously added node (None for :data:`INPUT`)."""
        node = self._by_name.get(name)
        return None if node is None else node.op

    def ops(self) -> List[Any]:
        """The ops added so far, in emission order."""
        return [node.op for node in self._nodes]

    def nodes(self) -> List[GraphNode]:
        """A copy of the node list added so far, in emission order."""
        return list(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def build(self, output: str, readout: Callable[[np.ndarray], np.ndarray],
              num_classes: int, input_kind: str = "flat") -> GraphProgram:
        return GraphProgram(nodes=list(self._nodes), output=output, readout=readout,
                            num_classes=num_classes, input_kind=input_kind)
