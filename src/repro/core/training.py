"""Supervised training loop shared by every experiment.

The :class:`Trainer` hides the difference between real and complex models: a
data-assignment scheme turns each numpy image batch into either a real tensor
(RVNN) or a :class:`~repro.nn.complex.ComplexTensor` (CVNN / SCVNN), and the
model maps it to real logits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.config import TrainingConfig
from repro.data.loader import DataLoader
from repro.nn.complex import ComplexTensor
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.optim import SGD, Adam, CosineAnnealingLR, MultiStepLR
from repro.tensor.tensor import Tensor, no_grad


def prepare_batch(images: np.ndarray, scheme: Optional[AssignmentScheme]):
    """Convert a numpy image batch into the input the model expects.

    With a scheme, the batch is packed into a :class:`ComplexTensor` (complex
    models); without one it is wrapped as a real :class:`Tensor` (RVNN).
    """
    if scheme is None:
        return Tensor(np.asarray(images, dtype=float))
    result = scheme.assign(images)
    return ComplexTensor(Tensor(result.real), Tensor(result.imag))


def apply_parameter_constraints(model: Module) -> None:
    """Re-project constrained modules (e.g. unitary decoders) after an update."""
    for module in model.modules():
        project = getattr(module, "project_to_unitary", None)
        if callable(project):
            project()


def evaluate_accuracy(model: Module, loader: DataLoader,
                      scheme: Optional[AssignmentScheme] = None) -> float:
    """Top-1 accuracy of ``model`` over ``loader``."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for images, labels in loader:
            logits = model(prepare_batch(images, scheme))
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == labels).sum())
            total += labels.shape[0]
    model.train()
    return correct / total if total else 0.0


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by the trainer."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


class Trainer:
    """Standard cross-entropy trainer.

    Parameters
    ----------
    model:
        The network to train (real or complex flavour).
    config:
        Training hyper-parameters.
    scheme:
        Data-assignment scheme for complex models; ``None`` for real models.
    """

    def __init__(self, model: Module, config: TrainingConfig,
                 scheme: Optional[AssignmentScheme] = None):
        self.model = model
        self.config = config
        self.scheme = scheme
        self.optimizer = self._build_optimizer()
        self.scheduler = self._build_scheduler()

    def _build_optimizer(self):
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(params, lr=self.config.learning_rate,
                        weight_decay=self.config.weight_decay)
        return SGD(params, lr=self.config.learning_rate, momentum=self.config.momentum,
                   weight_decay=self.config.weight_decay)

    def _build_scheduler(self):
        if self.config.scheduler == "cosine":
            return CosineAnnealingLR(self.optimizer, total_epochs=self.config.epochs)
        if self.config.scheduler == "multistep" and self.config.milestones:
            return MultiStepLR(self.optimizer, milestones=self.config.milestones)
        return None

    def train_step(self, images: np.ndarray, labels: np.ndarray):
        """One optimizer update; returns ``(batch loss, predicted labels)``."""
        self.optimizer.zero_grad()
        logits = self.model(prepare_batch(images, self.scheme))
        loss = cross_entropy(logits, labels, label_smoothing=self.config.label_smoothing)
        loss.backward()
        if self.config.grad_clip:
            self.optimizer.clip_grad_norm(self.config.grad_clip)
        self.optimizer.step()
        apply_parameter_constraints(self.model)
        return float(loss.data), logits.data.argmax(axis=1)

    def fit(self, train_loader: DataLoader, test_loader: Optional[DataLoader] = None,
            verbose: bool = False) -> TrainingHistory:
        """Run the full training schedule."""
        history = TrainingHistory()
        self.model.train()
        for epoch in range(self.config.epochs):
            epoch_loss = 0.0
            batches = 0
            correct = 0
            seen = 0
            for images, labels in train_loader:
                loss, predictions = self.train_step(images, labels)
                epoch_loss += loss
                batches += 1
                correct += int((predictions == labels).sum())
                seen += labels.shape[0]
            history.train_loss.append(epoch_loss / max(batches, 1))
            history.train_accuracy.append(correct / max(seen, 1))
            if test_loader is not None:
                history.test_accuracy.append(evaluate_accuracy(self.model, test_loader, self.scheme))
            if self.scheduler is not None:
                self.scheduler.step()
            if verbose:
                test_acc = history.test_accuracy[-1] if history.test_accuracy else float("nan")
                print(f"epoch {epoch + 1:3d}: loss={history.train_loss[-1]:.4f} "
                      f"train_acc={history.train_accuracy[-1]:.4f} test_acc={test_acc:.4f}")
        return history
