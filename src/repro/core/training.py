"""Supervised training loop shared by every experiment.

The :class:`Trainer` hides the difference between real and complex models: a
data-assignment scheme turns each numpy image batch into either a real tensor
(RVNN) or a :class:`~repro.nn.complex.ComplexTensor` (CVNN / SCVNN), and the
model maps it to real logits.

The hot path is compiled: the first step at each ``(image, label)`` batch
shape runs eagerly under :func:`~repro.tensor.tensor.trace_tape` and is
lowered by :mod:`repro.core.train_plan` to a flat instruction plan
(forward + backward + optimizer update on preallocated buffers).  Later
steps with the same shapes replay the plan; anything the tracer cannot
lower (dropout, custom ops) falls back to the eager tape transparently.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.assignment import AssignmentScheme
from repro.core.config import TrainingConfig
from repro.core.train_plan import PlanUnsupported, TrainStepPlan, compile_train_step
from repro.data.loader import DataLoader
from repro.nn.complex import ComplexTensor
from repro.nn.losses import cross_entropy, smoothed_targets
from repro.nn.module import Module
from repro.optim import SGD, Adam, CosineAnnealingLR, MultiStepLR
from repro.tensor.tensor import Tensor, mark_trace_input, no_grad, trace_tape


def prepare_batch(images: np.ndarray, scheme: Optional[AssignmentScheme]):
    """Convert a numpy image batch into the input the model expects.

    With a scheme, the batch is packed into a :class:`ComplexTensor` (complex
    models); without one it is wrapped as a real :class:`Tensor` (RVNN).  The
    wrapped tensors are marked as trace inputs so a recorded step knows which
    leaf buffers to refresh per batch.
    """
    if scheme is None:
        tensor = Tensor(np.asarray(images, dtype=float))
        mark_trace_input(tensor, "input", {})
        return tensor
    result = scheme.assign(images)
    real = Tensor(result.real)
    imag = Tensor(result.imag)
    mark_trace_input(real, "input_real", {})
    mark_trace_input(imag, "input_imag", {})
    return ComplexTensor(real, imag)


def apply_parameter_constraints(model: Module) -> None:
    """Re-project constrained modules (e.g. unitary decoders) after an update."""
    for module in model.modules():
        project = getattr(module, "project_to_unitary", None)
        if callable(project):
            project()


def evaluate_accuracy(model: Module, loader: DataLoader,
                      scheme: Optional[AssignmentScheme] = None) -> float:
    """Top-1 accuracy of ``model`` over ``loader``."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for images, labels in loader:
            logits = model(prepare_batch(images, scheme))
            predictions = logits.data.argmax(axis=1)
            correct += int((predictions == labels).sum())
            total += labels.shape[0]
    model.train()
    return correct / total if total else 0.0


@dataclass
class TrainingHistory:
    """Per-epoch metrics collected by the trainer."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    #: wall-clock seconds spent in the training batches of each epoch
    epoch_time: List[float] = field(default_factory=list)
    #: training throughput of each epoch (samples / epoch_time)
    samples_per_second: List[float] = field(default_factory=list)

    @property
    def best_test_accuracy(self) -> float:
        return max(self.test_accuracy) if self.test_accuracy else 0.0

    @property
    def final_test_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


def _plan_enabled_from_env(default: bool) -> bool:
    """Resolve the ``REPRO_TRAIN_PLAN`` override (``0``/``1``)."""
    value = os.environ.get("REPRO_TRAIN_PLAN")
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "off", "no", "")


class Trainer:
    """Standard cross-entropy trainer.

    Parameters
    ----------
    model:
        The network to train (real or complex flavour).
    config:
        Training hyper-parameters.
    scheme:
        Data-assignment scheme for complex models; ``None`` for real models.
    compile_train_step:
        Override ``config.compile_train_step``.  ``None`` keeps the config
        value; the ``REPRO_TRAIN_PLAN`` environment variable (``0`` or ``1``)
        beats both.
    """

    #: distinct batch shapes the trainer keeps compiled plans for; typically a
    #: run only ever sees two (the full batch and the smaller final batch)
    MAX_PLANS = 8

    def __init__(self, model: Module, config: TrainingConfig,
                 scheme: Optional[AssignmentScheme] = None,
                 compile_train_step: Optional[bool] = None):
        self.model = model
        self.config = config
        self.scheme = scheme
        self.optimizer = self._build_optimizer()
        self.scheduler = self._build_scheduler()
        if compile_train_step is None:
            compile_train_step = config.compile_train_step
        self._plan_enabled = _plan_enabled_from_env(compile_train_step)
        self._plans: Dict[Tuple, TrainStepPlan] = {}
        self._plan_fallback_reason: Optional[str] = None

    def _build_optimizer(self):
        params = self.model.parameters()
        if self.config.optimizer == "adam":
            return Adam(params, lr=self.config.learning_rate,
                        weight_decay=self.config.weight_decay)
        return SGD(params, lr=self.config.learning_rate, momentum=self.config.momentum,
                   weight_decay=self.config.weight_decay)

    def _build_scheduler(self):
        if self.config.scheduler == "cosine":
            return CosineAnnealingLR(self.optimizer, total_epochs=self.config.epochs)
        if self.config.scheduler == "multistep" and self.config.milestones:
            return MultiStepLR(self.optimizer, milestones=self.config.milestones)
        return None

    # ------------------------------------------------------------------ #
    # the training step: compiled plan when possible, eager tape otherwise
    # ------------------------------------------------------------------ #
    @property
    def plan_stats(self) -> dict:
        """Diagnostics of the plan compiler: per-shape stats and fallbacks."""
        return {
            "enabled": self._plan_enabled,
            "compiled": len(self._plans),
            "fallback_reason": self._plan_fallback_reason,
            "plans": {str(key): plan.stats for key, plan in self._plans.items()},
        }

    def train_step(self, images: np.ndarray, labels: np.ndarray):
        """One optimizer update; returns ``(batch loss, predicted labels)``."""
        if self._plan_enabled and self.model.training:
            return self._planned_step(images, labels)
        return self._eager_step(images, labels)

    def _eager_step(self, images: np.ndarray, labels: np.ndarray):
        """The reference step: graph walk, closure backward, optimizer loop."""
        self.optimizer.zero_grad()
        logits = self.model(prepare_batch(images, self.scheme))
        loss = cross_entropy(logits, labels, label_smoothing=self.config.label_smoothing)
        loss.backward()
        if self.config.grad_clip:
            self.optimizer.clip_grad_norm(self.config.grad_clip)
        self.optimizer.step()
        apply_parameter_constraints(self.model)
        return float(loss.data), logits.data.argmax(axis=1)

    def _planned_step(self, images: np.ndarray, labels: np.ndarray):
        key = (np.shape(images), np.shape(labels))
        plan = self._plans.get(key)
        if plan is None:
            if self._plan_fallback_reason is not None or len(self._plans) >= self.MAX_PLANS:
                return self._eager_step(images, labels)
            return self._trace_step(key, images, labels)
        loss, predictions = plan.execute(self._plan_inputs(images, labels, plan.input_meta))
        apply_parameter_constraints(self.model)
        return loss, predictions

    def _trace_step(self, key, images: np.ndarray, labels: np.ndarray):
        """Run one eager step under the tape tracer and lower it to a plan."""
        self.optimizer.zero_grad()
        with trace_tape() as trace:
            logits = self.model(prepare_batch(images, self.scheme))
            loss = cross_entropy(logits, labels,
                                 label_smoothing=self.config.label_smoothing)
        loss.backward()
        if self.config.grad_clip:
            self.optimizer.clip_grad_norm(self.config.grad_clip)
        self.optimizer.step()
        apply_parameter_constraints(self.model)
        try:
            self._plans[key] = compile_train_step(trace, loss, logits, self.optimizer,
                                                  grad_clip=self.config.grad_clip)
        except PlanUnsupported as reason:
            # models the tracer cannot replay keep the eager path for good
            self._plan_fallback_reason = str(reason)
        return float(loss.data), logits.data.argmax(axis=1)

    def _plan_inputs(self, images: np.ndarray, labels: np.ndarray,
                     input_meta: dict) -> Dict[str, np.ndarray]:
        """The per-batch arrays a compiled plan copies into its input leaves."""
        values: Dict[str, np.ndarray] = {}
        if self.scheme is None:
            values["input"] = np.asarray(images, dtype=float)
        else:
            result = self.scheme.assign(images)
            values["input_real"] = result.real
            values["input_imag"] = result.imag
        target_meta = input_meta.get("cross_entropy_targets")
        if target_meta is not None:
            values["cross_entropy_targets"] = smoothed_targets(
                np.asarray(labels).astype(int).reshape(-1),
                target_meta["num_classes"],
                target_meta["label_smoothing"],
                target_meta["dtype"],
            )
        return values

    def fit(self, train_loader: DataLoader, test_loader: Optional[DataLoader] = None,
            verbose: bool = False) -> TrainingHistory:
        """Run the full training schedule."""
        history = TrainingHistory()
        self.model.train()
        for epoch in range(self.config.epochs):
            epoch_loss = 0.0
            batches = 0
            correct = 0
            seen = 0
            epoch_start = time.perf_counter()
            for images, labels in train_loader:
                loss, predictions = self.train_step(images, labels)
                epoch_loss += loss
                batches += 1
                correct += int((predictions == labels).sum())
                seen += labels.shape[0]
            elapsed = time.perf_counter() - epoch_start
            history.epoch_time.append(elapsed)
            history.samples_per_second.append(seen / elapsed if elapsed > 0 else 0.0)
            history.train_loss.append(epoch_loss / max(batches, 1))
            history.train_accuracy.append(correct / max(seen, 1))
            if test_loader is not None:
                history.test_accuracy.append(evaluate_accuracy(self.model, test_loader, self.scheme))
            if self.scheduler is not None:
                self.scheduler.step()
            if verbose:
                test_acc = history.test_accuracy[-1] if history.test_accuracy else float("nan")
                print(f"epoch {epoch + 1:3d}: loss={history.train_loss[-1]:.4f} "
                      f"train_acc={history.train_accuracy[-1]:.4f} test_acc={test_acc:.4f} "
                      f"({history.samples_per_second[-1]:.1f} samples/s)")
        return history
