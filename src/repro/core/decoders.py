"""Learnable optical complex-to-real decoder heads (Section III-D, Fig. 6).

The output of a split/complex ONN is a vector of complex light amplitudes, but
photodiodes can only measure optical power.  A *decoder head* is the trailing
part of the network that turns complex activations into real logits:

* :class:`MergeDecoderHead` (proposed "Merge") -- the decoder is merged into
  the last layer: the final complex layer produces ``2 * num_classes``
  outputs; the photodiode currents of outputs ``k`` and ``k + num_classes``
  are summed electrically to give logit ``k``.  Extra MZI cost relative to the
  bare last layer: ``#MZI(2C x F) - #MZI(C x F)``.
* :class:`LinearDecoderHead` ("Linear") -- the bare last layer (``C`` complex
  outputs) is followed by an extra learnable complex linear layer expanding to
  ``2C`` detectable outputs.  Extra cost: ``#MZI(2C x C)``.
* :class:`UnitaryDecoderHead` ("Unitary") -- the bare last layer's outputs are
  zero-padded to ``2C`` modes and passed through a learnable ``2C x 2C``
  *unitary* (a single MZI mesh, no attenuator column), then detected.  Extra
  cost: ``2C (2C - 1) / 2`` MZIs.
* :class:`CoherentDecoderHead` ("Coherent", baseline of [16]) -- no extra
  optics; the complex outputs are read with coherent detection (reference
  beam, two extra phase settings, digital post-processing) and the real part
  is used as the logit.
* :class:`PhotodiodeHead` -- the conventional ONN readout [10]: photodiodes
  measure the power of each complex output and the phase is discarded.  Used
  by the CVNN teacher / "Orig." baseline.

For the paper's FCNN (last layer 10 x 50 complex, C = 10) the extra MZIs are
155 (merge) < 190 (unitary) < 245 (linear) < -- which reproduces the paper's
ordering: the merge decoder has the most weight parameters but the lowest
optical area of the learnable decoders.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.complex import ComplexLinear, ComplexTensor
from repro.nn.module import Module, Parameter
from repro.photonics.area import mzi_count_matrix, mzi_count_unitary
from repro.tensor import ops
from repro.tensor.random import complex_init, default_rng
from repro.tensor.tensor import Tensor

DECODER_CHOICES = ("merge", "linear", "unitary", "coherent", "photodiode")


def _paired_power_logits(outputs: ComplexTensor, num_classes: int) -> Tensor:
    """Amplitude of the summed optical power of outputs ``k`` and ``k + C``.

    The photocurrents of the two photodiodes assigned to class ``k`` are summed
    electrically and the readout reports the corresponding amplitude
    ``sqrt(|z_k|^2 + |z_{k+C}|^2)`` (the paper's photodiode decoders detect
    amplitudes); the electronic calibration then scales/offsets each class.
    """
    power = outputs.power()
    summed = power[:, :num_classes] + power[:, num_classes:2 * num_classes]
    return (summed + 1e-12).sqrt()


class ElectronicCalibration(Module):
    """Per-class affine calibration of the detected photocurrents.

    Photodiode currents are non-negative; the electronic readout that follows
    them (trans-impedance amplifier + ADC offset) can scale and shift each
    channel for free, so every decoder head ends with this learnable affine
    map.  It costs no optical area and is replicated digitally when the model
    is deployed.
    """

    def __init__(self, num_classes: int):
        super().__init__()
        self.scale = Parameter(np.ones(num_classes))
        self.bias = Parameter(np.zeros(num_classes))

    def forward(self, logits: Tensor) -> Tensor:
        return logits * self.scale + self.bias

    def as_arrays(self):
        """Return (scale, bias) numpy arrays for digital replication at deployment."""
        return self.scale.data.copy(), self.bias.data.copy()


class UnitaryLinear(Module):
    """A complex linear layer constrained to stay (approximately) unitary.

    The weight is an unconstrained complex matrix during the backward pass;
    after every optimizer step the trainer calls :meth:`project_to_unitary`,
    which replaces it with the nearest unitary matrix (polar projection via
    SVD).  On hardware the layer is a single MZI mesh of ``n(n-1)/2`` MZIs.
    """

    def __init__(self, features: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if features <= 0:
            raise ValueError("features must be positive")
        self.features = int(features)
        rng = default_rng(rng)
        real, imag = complex_init((features, features), rng=rng)
        self.weight_real = Parameter(real)
        self.weight_imag = Parameter(imag)
        self.project_to_unitary()

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        out_real = (inputs.real @ self.weight_real.transpose()
                    - inputs.imag @ self.weight_imag.transpose())
        out_imag = (inputs.real @ self.weight_imag.transpose()
                    + inputs.imag @ self.weight_real.transpose())
        return ComplexTensor(out_real, out_imag)

    def complex_weight(self) -> np.ndarray:
        return self.weight_real.data + 1j * self.weight_imag.data

    def project_to_unitary(self) -> None:
        """Replace the weight with the nearest unitary matrix (polar factor)."""
        left, _sigma, right = np.linalg.svd(self.complex_weight())
        unitary = left @ right
        # in-place so optimizer scratch and compiled plans keep their aliases
        self.weight_real.data[...] = unitary.real
        self.weight_imag.data[...] = unitary.imag

    def unitarity_error(self) -> float:
        """Frobenius distance of ``W^H W`` from the identity."""
        weight = self.complex_weight()
        return float(np.linalg.norm(weight.conj().T @ weight - np.eye(self.features)))


class DecoderHead(Module):
    """Base class of the trailing (last layer + decoder) part of a complex model.

    Subclasses map complex trunk features of width ``in_features`` to real
    logits of width ``num_classes`` and report the MZI cost of everything they
    add on top of the bare last layer.
    """

    name = "base"

    def __init__(self, in_features: int, num_classes: int):
        super().__init__()
        if in_features <= 0 or num_classes <= 0:
            raise ValueError("in_features and num_classes must be positive")
        self.in_features = int(in_features)
        self.num_classes = int(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # area accounting
    # ------------------------------------------------------------------ #
    def base_last_layer_mzis(self) -> int:
        """MZIs of the bare last layer (``C x F`` complex matrix)."""
        return mzi_count_matrix(self.num_classes, self.in_features)

    def total_mzis(self) -> int:
        """MZIs of the last layer plus any decoder optics."""
        raise NotImplementedError

    def extra_mzis(self) -> int:
        """MZIs added on top of the bare last layer (the coherent baseline)."""
        return self.total_mzis() - self.base_last_layer_mzis()

    @property
    def needs_post_processing(self) -> bool:
        return False

    @property
    def extra_readout_latency(self) -> bool:
        return False


class MergeDecoderHead(DecoderHead):
    """Proposed merge decoder: last layer widened to ``2C`` complex outputs."""

    name = "merge"

    def __init__(self, in_features: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, num_classes)
        self.merged_layer = ComplexLinear(in_features, 2 * num_classes, rng=rng)
        self.calibration = ElectronicCalibration(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        outputs = self.merged_layer(features)
        return self.calibration(_paired_power_logits(outputs, self.num_classes))

    def total_mzis(self) -> int:
        return mzi_count_matrix(2 * self.num_classes, self.in_features)


class LinearDecoderHead(DecoderHead):
    """Bare last layer followed by an extra complex linear decoder layer."""

    name = "linear"

    def __init__(self, in_features: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, num_classes)
        self.last_layer = ComplexLinear(in_features, num_classes, rng=rng)
        self.decoder_layer = ComplexLinear(num_classes, 2 * num_classes, rng=rng)
        self.calibration = ElectronicCalibration(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        outputs = self.decoder_layer(self.last_layer(features))
        return self.calibration(_paired_power_logits(outputs, self.num_classes))

    def total_mzis(self) -> int:
        return (mzi_count_matrix(self.num_classes, self.in_features)
                + mzi_count_matrix(2 * self.num_classes, self.num_classes))


class UnitaryDecoderHead(DecoderHead):
    """Bare last layer, zero-padding to ``2C`` modes, then a learnable unitary."""

    name = "unitary"

    def __init__(self, in_features: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, num_classes)
        self.last_layer = ComplexLinear(in_features, num_classes, rng=rng)
        self.unitary = UnitaryLinear(2 * num_classes, rng=rng)
        self.calibration = ElectronicCalibration(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        outputs = self.last_layer(features)
        zeros_real = Tensor(np.zeros((outputs.shape[0], self.num_classes)))
        zeros_imag = Tensor(np.zeros((outputs.shape[0], self.num_classes)))
        padded = ComplexTensor(
            ops.concatenate([outputs.real, zeros_real], axis=1),
            ops.concatenate([outputs.imag, zeros_imag], axis=1),
        )
        decoded = self.unitary(padded)
        return self.calibration(_paired_power_logits(decoded, self.num_classes))

    def total_mzis(self) -> int:
        return (mzi_count_matrix(self.num_classes, self.in_features)
                + mzi_count_unitary(2 * self.num_classes))


class CoherentDecoderHead(DecoderHead):
    """Coherent-detection baseline [16]: logits are the real parts of the outputs.

    No extra optics, but the readout needs a reference beam, two additional
    reference phase settings (thermo-optic settling time) and a digital
    subtraction step -- the practical drawbacks the learnable decoders remove.
    """

    name = "coherent"

    def __init__(self, in_features: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, num_classes)
        self.last_layer = ComplexLinear(in_features, num_classes, rng=rng)
        self.calibration = ElectronicCalibration(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        outputs = self.last_layer(features)
        return self.calibration(outputs.real)

    def total_mzis(self) -> int:
        return self.base_last_layer_mzis()

    @property
    def needs_post_processing(self) -> bool:
        return True

    @property
    def extra_readout_latency(self) -> bool:
        return True


class PhotodiodeHead(DecoderHead):
    """Conventional ONN readout [10]: photodiode power detection, phase discarded."""

    name = "photodiode"

    def __init__(self, in_features: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(in_features, num_classes)
        self.last_layer = ComplexLinear(in_features, num_classes, rng=rng)
        self.calibration = ElectronicCalibration(num_classes)

    def forward(self, features: ComplexTensor) -> Tensor:
        outputs = self.last_layer(features)
        return self.calibration(outputs.magnitude())

    def total_mzis(self) -> int:
        return self.base_last_layer_mzis()


_DECODER_CLASSES = {
    "merge": MergeDecoderHead,
    "linear": LinearDecoderHead,
    "unitary": UnitaryDecoderHead,
    "coherent": CoherentDecoderHead,
    "photodiode": PhotodiodeHead,
}


def build_decoder_head(name: str, in_features: int, num_classes: int,
                       rng: Optional[np.random.Generator] = None) -> DecoderHead:
    """Instantiate a decoder head by name ("merge", "linear", "unitary", ...)."""
    key = name.lower()
    if key not in _DECODER_CLASSES:
        raise KeyError(f"unknown decoder {name!r}; choose from {DECODER_CHOICES}")
    return _DECODER_CLASSES[key](in_features, num_classes, rng=rng)
