"""Plan-based executor for compiled photonic programs.

:mod:`repro.core.graph_ir` defines *what* a compiled program computes -- a
DAG of photonic stages and electronic ops.  This module decides *how* it
executes: :func:`compile_plan` lowers a :class:`~repro.core.graph_ir.GraphProgram`
once into an :class:`ExecutionPlan`, a flat topologically-ordered instruction
list, so the per-request hot path does none of the interpretation work the
node-walk repeats on every call:

* **Slot-reuse buffer allocation.**  Buffer lifetimes are precomputed from
  the graph's last-use table and mapped onto a small set of reusable slots by
  a linear scan -- the per-call consumer refcounting (and its dict churn) of
  the node-walk disappears.
* **Eager dense transfer matrices.**  A mesh stage whose two SVD meshes both
  execute on the dense path is folded into a *single* effective complex
  matrix ``scale * U @ diag(S) @ V`` at plan time; the stage becomes one
  matmul (plus electronic bias and optional in-place CReLU) instead of two
  mesh applications with an intermediate.  Linear stages that must run on
  the rotation-chain path (forced ``"column"``/``"cchain"`` backends,
  trials-batched noise ensembles) lower to a :class:`ChainInstruction` --
  two mesh applications that resolve to the native ``cchain`` kernel when
  it is loaded, with bias/CReLU applied in place -- and their dense caches
  are still warmed eagerly where the policy allows.
* **Electronic-affine peephole.**  Chains of adjacent electronic affine ops
  (eval-mode batch norms folded to per-channel scale/shift) whose
  intermediate value has no other consumer are composed into a single
  ``a * x + b`` instruction per real/imag channel.
* **Preallocated output buffers.**  Fused matmul instructions write through
  ``out=`` (:func:`repro.photonics.engine.apply_dense` is the same idiom at
  the engine level) into per-instruction buffers that persist across calls,
  so steady-state execution does no per-request allocation on the interior
  of the hot path.  The instruction producing the program output never
  writes into pooled storage -- the returned array is always safe to keep.

The original node-walk survives as
:meth:`~repro.core.graph_ir.GraphProgram.forward_reference`; the test-suite
pins every plan against it to 1e-12.

A plan that reuses buffers is not safe for *concurrent* execution; a lock
serializes `execute` calls (the serving layer batches requests onto a single
executor thread anyway, see :mod:`repro.serve`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.graph_ir import INPUT, ElectronicBatchNorm, GraphNode
from repro.core.lowering import Conv2dStage, FlattenStage, LinearStage


@dataclass(frozen=True)
class PlanOptions:
    """Policy knobs of the plan compiler.

    Parameters
    ----------
    fuse_matrices:
        Fold mesh stages whose meshes run on the dense path into single
        effective weight matrices (one matmul per stage).
    fuse_affine:
        Compose chains of adjacent electronic affine ops into single
        ``a * x + b`` instructions.
    reuse_buffers:
        Keep per-instruction output buffers across calls and write fused
        matmuls through ``out=`` so steady-state execution allocates nothing
        on the interior of the hot path.
    """

    fuse_matrices: bool = True
    fuse_affine: bool = True
    reuse_buffers: bool = True


# --------------------------------------------------------------------------- #
# instructions
# --------------------------------------------------------------------------- #
def _inplace_crelu(signal: np.ndarray) -> np.ndarray:
    """CReLU on a complex buffer without allocating (clamps both planes)."""
    np.maximum(signal.real, 0.0, out=signal.real)
    np.maximum(signal.imag, 0.0, out=signal.imag)
    return signal


def _pooled_matmul(states: np.ndarray, weight_t: np.ndarray,
                   pool: Optional[Dict[int, np.ndarray]], index: int,
                   pooled: bool) -> np.ndarray:
    """``states @ weight_t``, writing into the instruction's persistent buffer.

    The shared hot-path matmul of the fused instructions: when the plan
    reuses buffers (and this instruction may pool -- the program-output one
    must not) the product lands in ``pool[index]``, reallocated only when
    the batch shape changes.  Trials-batched effective matrices (ndim > 2)
    broadcast through a plain matmul.
    """
    if pool is not None and pooled and weight_t.ndim == 2:
        shape = states.shape[:-1] + (weight_t.shape[-1],)
        out = pool.get(index)
        if out is None or out.shape != shape:
            out = np.empty(shape, dtype=complex)
            pool[index] = out
        return np.matmul(states, weight_t, out=out)
    return np.matmul(states, weight_t)


@dataclass
class CallInstruction:
    """Generic fallback: invoke the node op's batch-first ``forward``."""

    op: Any
    in_slots: Tuple[int, ...]
    out_slot: int

    def run(self, buffers: List[Optional[np.ndarray]],
            pool: Optional[Dict[int, np.ndarray]]) -> None:
        buffers[self.out_slot] = self.op.forward(
            *(buffers[slot] for slot in self.in_slots))


@dataclass
class MatmulInstruction:
    """A mesh stage folded into one dense matmul: ``x @ W.T (+ bias) (CReLU)``.

    ``weight_t`` is the pre-transposed effective matrix (C-contiguous, so the
    matmul needs no per-call transpose); ``index`` keys this instruction's
    persistent output buffer in the plan's pool.  The program-output
    instruction runs with ``pooled=False`` so the returned array never
    aliases plan-owned storage.
    """

    weight_t: np.ndarray
    bias: Optional[np.ndarray]
    activation: bool
    in_slot: int
    out_slot: int
    index: int
    pooled: bool = True

    def run(self, buffers: List[Optional[np.ndarray]],
            pool: Optional[Dict[int, np.ndarray]]) -> None:
        outputs = _pooled_matmul(buffers[self.in_slot], self.weight_t, pool,
                                 self.index, self.pooled)
        if self.bias is not None:
            outputs += self.bias
        if self.activation:
            _inplace_crelu(outputs)
        buffers[self.out_slot] = outputs


@dataclass
class ConvInstruction:
    """A convolution stage folded into one im2col matmul.

    Delegates the im2col / reshape geometry to the stage's own
    :meth:`~repro.core.lowering.Conv2dStage.extract_patches` /
    :meth:`~repro.core.lowering.Conv2dStage.assemble_maps`, so the fused and
    fallback executors share one copy of it; only the two mesh applications
    are replaced by the fused effective matrix.  The reshape back to feature
    maps can be a *view* of the matmul buffer, so -- like
    :class:`MatmulInstruction` -- an instruction whose result can reach the
    program output runs with ``pooled=False`` to keep the returned array off
    plan-owned storage.
    """

    stage: Conv2dStage
    weight_t: np.ndarray
    in_slot: int
    out_slot: int
    index: int
    pooled: bool = True

    def run(self, buffers: List[Optional[np.ndarray]],
            pool: Optional[Dict[int, np.ndarray]]) -> None:
        flat, batch, out_h, out_w = self.stage.extract_patches(buffers[self.in_slot])
        outputs = _pooled_matmul(flat, self.weight_t, pool, self.index, self.pooled)
        bias = self.stage.layer.bias
        if bias is not None:
            outputs += bias
        outputs = self.stage.assemble_maps(outputs, batch, out_h, out_w)
        if self.stage.activation_after:
            _inplace_crelu(outputs)
        buffers[self.out_slot] = outputs


@dataclass
class ChainInstruction:
    """A linear mesh stage executing on the rotation-chain path, unfused.

    Chosen for linear stages the plan may *not* fold into a dense matmul --
    forced ``"column"``/``"cchain"`` backends, dimensions above the dense
    limit, trials-batched noise ensembles.  The two mesh applications route
    through :meth:`~repro.photonics.mzi_mesh.MeshDecomposition.apply`, which
    resolves to the native ``cchain`` kernel when it is loaded (one C call
    per mesh) or the numpy column program otherwise; the electronic bias and
    CReLU are applied in place on the fresh chain output, saving the two
    interior allocations of the generic call path.  ``backend`` records the
    resolution at plan-compile time so :meth:`ExecutionPlan.describe` shows
    where the kernel lands.
    """

    stage: LinearStage
    backend: str
    in_slot: int
    out_slot: int

    def run(self, buffers: List[Optional[np.ndarray]],
            pool: Optional[Dict[int, np.ndarray]]) -> None:
        outputs = self.stage.layer.photonic_matrix.apply(buffers[self.in_slot])
        bias = self.stage.layer.bias
        if bias is not None:
            outputs += bias
        if self.stage.activation_after:
            _inplace_crelu(outputs)
        buffers[self.out_slot] = outputs


@dataclass
class AffineInstruction:
    """One or more folded batch norms as a single split ``a * x + b``.

    ``op`` is the (possibly chain-composed, see :func:`_fuse_affine_nodes`)
    :class:`~repro.core.graph_ir.ElectronicBatchNorm` -- delegating to its
    ``forward`` keeps the split-affine semantics in exactly one place.
    """

    op: ElectronicBatchNorm
    in_slot: int
    out_slot: int

    def run(self, buffers: List[Optional[np.ndarray]],
            pool: Optional[Dict[int, np.ndarray]]) -> None:
        buffers[self.out_slot] = self.op.forward(buffers[self.in_slot])


# --------------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------------- #
@dataclass
class ExecutionPlan:
    """A compiled program lowered to a flat instruction list over buffer slots.

    Execute with :meth:`execute` (also ``__call__``).  With
    ``options.reuse_buffers`` the plan owns per-instruction interior buffers
    that persist across calls; a lock serializes concurrent execution.
    """

    instructions: List[Any]
    slot_count: int
    output_slot: int
    options: PlanOptions
    fused_matmuls: int = 0
    fused_affine_chains: int = 0
    chain_stages: int = 0
    baked_meshes: List[Tuple[Any, int]] = field(default_factory=list, repr=False,
                                                compare=False)
    _pool: Dict[int, np.ndarray] = field(default_factory=dict, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    def is_stale(self) -> bool:
        """Whether a baked mesh's phases moved since the plan was compiled.

        Fused instructions bake mesh phases into effective dense matrices, so
        an in-place :meth:`~repro.photonics.mzi_mesh.MeshDecomposition.update_phases`
        on a deployed mesh must force a plan rebuild --
        :meth:`~repro.core.graph_ir.GraphProgram.forward` checks this before
        every execution (a handful of integer compares).
        """
        return any(mesh.phase_version != version
                   for mesh, version in self.baked_meshes)

    def describe(self) -> str:
        """One-line summary used by the serving CLI and the benchmarks."""
        kinds: Dict[str, int] = {}
        for instruction in self.instructions:
            name = type(instruction).__name__
            kinds[name] = kinds.get(name, 0) + 1
        parts = ", ".join(f"{count} {name}" for name, count in sorted(kinds.items()))
        return (f"{self.instruction_count} instructions over {self.slot_count} "
                f"buffer slots ({parts})")

    def execute(self, signal: np.ndarray) -> np.ndarray:
        """Run the plan on a batch of complex input amplitudes.

        Batch-first, exactly like the node-walk it replaces: trials-batched
        mesh stages prepend their trials axes and electronic ops broadcast
        over them.
        """
        buffers: List[Optional[np.ndarray]] = [None] * self.slot_count
        buffers[0] = np.asarray(signal, dtype=complex)
        if self.options.reuse_buffers:
            with self._lock:
                for instruction in self.instructions:
                    instruction.run(buffers, self._pool)
                return buffers[self.output_slot]
        for instruction in self.instructions:
            instruction.run(buffers, None)
        return buffers[self.output_slot]

    __call__ = execute


# --------------------------------------------------------------------------- #
# plan compilation
# --------------------------------------------------------------------------- #
def _stage_fusible(stage: Any) -> bool:
    """Whether a mesh stage may fold into one eager dense matrix.

    Both SVD meshes must execute on the dense path under their own backend
    policy -- a forced ``"column"`` backend keeps simulating the column
    program, and trials-batched (noise-ensemble) meshes under ``"auto"``
    stay on the vectorized column path.
    """
    matrix = stage.layer.photonic_matrix
    return (matrix.left_mesh.uses_dense_path()
            and matrix.right_mesh.uses_dense_path())


def _materialize_dense_caches(stage: Any) -> None:
    """Eagerly build the dense transfer matrices an unfused stage will use."""
    matrix = stage.layer.photonic_matrix
    for mesh in (matrix.left_mesh, matrix.right_mesh):
        if mesh.uses_dense_path():
            mesh._dense_matrix(0.0)


def _effective_weight_t(stage: Any) -> np.ndarray:
    """Pre-transposed effective matrix ``(scale * U @ diag(S) @ V).T``.

    Delegates to the :class:`~repro.photonics.svd_mapping.PhotonicMatrix`
    cache so repeated plan builds reuse one reconstruction -- and so the
    artifact store can seed it with a memory-mapped precomputed copy that
    warm plan builds pick up without touching the meshes at all.
    """
    return stage.layer.photonic_matrix.effective_weight_t()


def _fuse_affine_nodes(nodes: List[GraphNode],
                       output: str) -> Tuple[List[GraphNode], str]:
    """Compose chains of adjacent electronic affine ops into single nodes.

    A folded batch norm feeding *only* another folded batch norm of the same
    layout composes exactly: ``a2 * (a1 * x + b1) + b2`` is one affine map.
    Producers that fan out (or are the program output) keep their node.
    """
    consumers: Dict[str, int] = {}
    for node in nodes:
        for name in node.inputs:
            consumers[name] = consumers.get(name, 0) + 1
    fused: List[GraphNode] = []
    by_name: Dict[str, GraphNode] = {}
    renamed: Dict[str, str] = {}
    for node in nodes:
        inputs = tuple(renamed.get(name, name) for name in node.inputs)
        if isinstance(node.op, ElectronicBatchNorm) and len(inputs) == 1:
            producer = by_name.get(inputs[0])
            if (producer is not None
                    and isinstance(producer.op, ElectronicBatchNorm)
                    and producer.op.spatial == node.op.spatial
                    and consumers.get(node.inputs[0], 0) == 1
                    and node.inputs[0] != output):
                first, second = producer.op, node.op
                composed = ElectronicBatchNorm(
                    real_scale=second.real_scale * first.real_scale,
                    real_shift=second.real_scale * first.real_shift + second.real_shift,
                    imag_scale=second.imag_scale * first.imag_scale,
                    imag_shift=second.imag_scale * first.imag_shift + second.imag_shift,
                    spatial=first.spatial)
                merged = GraphNode(name=producer.name, op=composed,
                                   inputs=producer.inputs)
                fused[fused.index(producer)] = merged
                by_name[producer.name] = merged
                renamed[node.name] = producer.name
                continue
        kept = GraphNode(name=node.name, op=node.op, inputs=inputs)
        fused.append(kept)
        by_name[kept.name] = kept
    return fused, renamed.get(output, output)


def compile_plan(graph: Any, options: Optional[PlanOptions] = None) -> ExecutionPlan:
    """Lower a :class:`~repro.core.graph_ir.GraphProgram` to an execution plan.

    The graph's nodes are already topologically ordered; this pass runs the
    affine peephole, picks an instruction per node (fused matmul / fused
    conv / affine / generic call), and maps node outputs onto reusable buffer
    slots from the precomputed last-use table.
    """
    options = PlanOptions() if options is None else options
    nodes = list(graph.nodes)
    output = graph.output
    fused_affine = 0
    if options.fuse_affine:
        before = len(nodes)
        nodes, output = _fuse_affine_nodes(nodes, output)
        fused_affine = before - len(nodes)

    last_use: Dict[str, int] = {}
    for index, node in enumerate(nodes):
        for name in node.inputs:
            last_use[name] = index
    last_use[output] = len(nodes)

    # values that can reach the program output through a chain of
    # view-producing ops (FlattenStage reshapes) must not live in pooled
    # storage either -- the caller's returned array would alias the pool
    producers: Dict[str, GraphNode] = {node.name: node for node in nodes}
    escapes = {output}
    cursor = producers.get(output)
    while (cursor is not None and isinstance(cursor.op, FlattenStage)
           and len(cursor.inputs) == 1):
        escapes.add(cursor.inputs[0])
        cursor = producers.get(cursor.inputs[0])

    slot_of: Dict[str, int] = {INPUT: 0}
    free_slots: List[int] = []
    slot_count = 1
    instructions: List[Any] = []
    fused_matmuls = 0
    chain_stages = 0
    baked_meshes: List[Tuple[Any, int]] = []

    def bake(stage: Any) -> np.ndarray:
        matrix = stage.layer.photonic_matrix
        for mesh in (matrix.left_mesh, matrix.right_mesh):
            baked_meshes.append((mesh, mesh.phase_version))
        return _effective_weight_t(stage)
    for index, node in enumerate(nodes):
        in_slots = tuple(slot_of[name] for name in node.inputs)
        # release slots whose value has no later consumer; rebinding the
        # output below never mutates the arrays an instruction is reading
        for name in set(node.inputs):
            if last_use.get(name, -1) == index:
                free_slots.append(slot_of.pop(name))
        if free_slots:
            out_slot = free_slots.pop()
        else:
            out_slot = slot_count
            slot_count += 1
        slot_of[node.name] = out_slot

        op = node.op
        may_pool = node.name not in escapes
        if options.fuse_matrices and isinstance(op, LinearStage) and _stage_fusible(op):
            instructions.append(MatmulInstruction(
                weight_t=bake(op), bias=op.layer.bias,
                activation=op.activation_after, in_slot=in_slots[0],
                out_slot=out_slot, index=index, pooled=may_pool))
            fused_matmuls += 1
        elif options.fuse_matrices and isinstance(op, Conv2dStage) and _stage_fusible(op):
            instructions.append(ConvInstruction(
                stage=op, weight_t=bake(op),
                in_slot=in_slots[0], out_slot=out_slot, index=index,
                pooled=may_pool))
            fused_matmuls += 1
        elif isinstance(op, ElectronicBatchNorm):
            instructions.append(AffineInstruction(
                op=op, in_slot=in_slots[0], out_slot=out_slot))
        elif isinstance(op, LinearStage):
            # unfused mesh stage: runs on the rotation-chain path (native
            # cchain kernel when loaded, numpy column program otherwise);
            # meshes whose own policy still allows dense get warmed eagerly
            _materialize_dense_caches(op)
            matrix = op.layer.photonic_matrix
            resolved = sorted({matrix.left_mesh.resolve_backend(),
                               matrix.right_mesh.resolve_backend()})
            instructions.append(ChainInstruction(
                stage=op, backend="+".join(resolved),
                in_slot=in_slots[0], out_slot=out_slot))
            chain_stages += 1
        else:
            if isinstance(op, Conv2dStage):
                _materialize_dense_caches(op)
            instructions.append(CallInstruction(op=op, in_slots=in_slots,
                                                out_slot=out_slot))

    return ExecutionPlan(instructions=instructions, slot_count=slot_count,
                         output_slot=slot_of[output], options=options,
                         fused_matmuls=fused_matmuls,
                         fused_affine_chains=fused_affine,
                         chain_stages=chain_stages,
                         baked_meshes=baked_meshes)
