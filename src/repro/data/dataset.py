"""Dataset abstractions."""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError

    @property
    def num_classes(self) -> int:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays of images and integer labels.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)`` (or any per-sample shape).
    labels:
        Integer array of shape ``(N,)``.
    transform:
        Optional callable applied to each image on access.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray,
                 transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 num_classes: Optional[int] = None):
        images = np.asarray(images)
        labels = np.asarray(labels).astype(int).reshape(-1)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) disagree on sample count"
            )
        self.images = images
        self.labels = labels
        self.transform = transform
        self._num_classes = int(num_classes) if num_classes is not None else int(labels.max()) + 1 if labels.size else 0

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        return image, int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def image_shape(self) -> Tuple[int, ...]:
        return tuple(self.images.shape[1:])


class Subset(Dataset):
    """A view of a dataset restricted to a list of indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(int(i) for i in indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None) -> Tuple[Subset, Subset]:
    """Randomly partition ``dataset`` into train and test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    indices = rng.permutation(len(dataset))
    split = int(round(len(dataset) * (1.0 - test_fraction)))
    return Subset(dataset, indices[:split]), Subset(dataset, indices[split:])
