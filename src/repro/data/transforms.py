"""Per-sample image transforms (applied inside datasets / loaders)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class ToFloat:
    """Convert to float64 in ``[0, 1]`` if the input is an integer image."""

    def __call__(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if np.issubdtype(image.dtype, np.integer):
            return image.astype(float) / 255.0
        return image.astype(float)


class Normalize:
    """Channel-wise standardisation ``(x - mean) / std`` for ``(C, H, W)`` images."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, dtype=float).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=float).reshape(-1, 1, 1)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std


class FlattenImage:
    """Flatten a ``(C, H, W)`` image to a vector (used by FCNN pipelines)."""

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return np.asarray(image).reshape(-1)


class RandomHorizontalFlip:
    """Flip the image left-right with the given probability."""

    def __init__(self, probability: float = 0.5, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = float(probability)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.probability:
            return image[..., ::-1].copy()
        return image


class RandomCrop:
    """Zero-pad by ``padding`` pixels and crop back to the original size."""

    def __init__(self, padding: int = 4, rng: Optional[np.random.Generator] = None):
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = int(padding)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return image
        channels, height, width = image.shape
        padded = np.pad(image, ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
                        mode="constant")
        top = self._rng.integers(0, 2 * self.padding + 1)
        left = self._rng.integers(0, 2 * self.padding + 1)
        return padded[:, top:top + height, left:left + width]
