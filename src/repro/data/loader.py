"""Mini-batch data loader."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches of numpy arrays.

    Yields ``(images, labels)`` with images stacked along a new batch axis.
    Datasets that expose contiguous ``images`` / ``labels`` arrays with no
    per-item transform (:class:`~repro.data.dataset.ArrayDataset`) are
    batched with one fancy-index gather per batch instead of a per-item
    Python loop plus ``np.stack``; everything else takes the per-item path.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = True,
                 drop_last: bool = False, rng: Optional[np.random.Generator] = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def _contiguous_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The dataset's backing arrays, when batch gathers are equivalent.

        Requires the :class:`~repro.data.dataset.ArrayDataset` per-item
        access path (subclasses that override ``__getitem__`` fall back to
        it), plain ``images`` / ``labels`` ndarrays covering the whole
        dataset, and no per-item ``transform`` -- a subset view or a
        transforming dataset must keep going through ``__getitem__``.
        """
        from repro.data.dataset import ArrayDataset

        if not (isinstance(self.dataset, ArrayDataset)
                and type(self.dataset).__getitem__ is ArrayDataset.__getitem__):
            return None
        images = self.dataset.images
        labels = self.dataset.labels
        if (isinstance(images, np.ndarray) and isinstance(labels, np.ndarray)
                and self.dataset.transform is None
                and images.shape[:1] == labels.shape[:1]
                and images.shape[0] == len(self.dataset)):
            return images, labels
        return None

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        arrays = self._contiguous_arrays()
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            if arrays is not None:
                images_array, labels_array = arrays
                yield (images_array[batch_indices],
                       np.asarray(labels_array[batch_indices], dtype=int))
            else:
                images, labels = zip(*(self.dataset[int(i)] for i in batch_indices))
                yield np.stack(images), np.asarray(labels, dtype=int)
