"""Mini-batch data loader."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches of numpy arrays.

    Yields ``(images, labels)`` with images stacked along a new batch axis.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, shuffle: bool = True,
                 drop_last: bool = False, rng: Optional[np.random.Generator] = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        count = len(self.dataset)
        if self.drop_last:
            return count // self.batch_size
        return (count + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            images, labels = zip(*(self.dataset[int(i)] for i in batch_indices))
            yield np.stack(images), np.asarray(labels, dtype=int)
