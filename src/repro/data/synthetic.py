"""Procedurally generated image-classification datasets.

These generators stand in for MNIST, CIFAR-10 and CIFAR-100 (unavailable in the
offline reproduction environment).  They are engineered to preserve the two
statistical properties that the OplixNet data-assignment study depends on:

1. **Spatial smoothness** -- each image is a low-pass-filtered random field, so
   vertically adjacent pixels are strongly correlated.  This is what makes the
   paper's *spatial interlace* assignment (packing neighbouring pixels into one
   complex value) lose less information than *spatial symmetric* (packing
   pixels from opposite image corners).
2. **Channel correlation** -- colour channels share a common luminance
   component plus smaller channel-specific detail, so the *channel lossless*
   assignment (packing two colour channels into one complex channel) retains
   class information while the lossy *channel remapping* discards some.

Every dataset is generated deterministically from a seed.  Train and test
splits share class prototypes but use disjoint sample noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset


@dataclass
class SyntheticImageConfig:
    """Configuration of a synthetic image-classification dataset.

    Attributes
    ----------
    num_classes:
        Number of target classes.
    channels, height, width:
        Image geometry (``channels`` is 1 for the MNIST stand-in, 3 for the
        CIFAR stand-ins).
    train_samples, test_samples:
        Total number of samples in each split (balanced over classes).
    smoothness:
        Gaussian blur sigma applied to the random fields; larger values give
        stronger local pixel correlation.
    channel_correlation:
        Fraction (0..1) of each channel that comes from the shared luminance
        field; the rest is channel-specific detail.
    prototype_strength:
        Scale of the class prototype relative to the per-sample variation.
    sample_variation:
        Scale of the smooth per-sample variation field added to the prototype
        (larger values make classes harder to separate).
    noise_level:
        Standard deviation of the white observation noise added per sample.
    jitter:
        Maximum circular shift (pixels) applied per sample, emulating small
        translations.
    seed:
        Seed controlling prototypes and sample noise.
    """

    num_classes: int = 10
    channels: int = 1
    height: int = 28
    width: int = 28
    train_samples: int = 2000
    test_samples: int = 400
    smoothness: float = 2.0
    channel_correlation: float = 0.75
    prototype_strength: float = 1.0
    sample_variation: float = 0.4
    noise_level: float = 0.25
    jitter: int = 2
    seed: int = 0

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if min(self.channels, self.height, self.width) <= 0:
            raise ValueError("image dimensions must be positive")
        if not 0.0 <= self.channel_correlation <= 1.0:
            raise ValueError("channel_correlation must be in [0, 1]")
        if self.train_samples < self.num_classes or self.test_samples < self.num_classes:
            raise ValueError("need at least one sample per class in each split")


class SyntheticImageDataset:
    """Factory producing train/test :class:`~repro.data.dataset.ArrayDataset` pairs."""

    def __init__(self, config: SyntheticImageConfig):
        self.config = config
        self._prototypes = self._build_prototypes()

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def _smooth_field(self, rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
        field_values = rng.normal(size=shape)
        smoothed = ndimage.gaussian_filter(field_values, sigma=self.config.smoothness, mode="wrap")
        std = smoothed.std()
        return smoothed / (std + 1e-12)

    def _build_prototypes(self) -> np.ndarray:
        """One smooth multi-channel prototype per class."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        prototypes = np.zeros((cfg.num_classes, cfg.channels, cfg.height, cfg.width))
        for class_index in range(cfg.num_classes):
            luminance = self._smooth_field(rng, (cfg.height, cfg.width))
            for channel in range(cfg.channels):
                detail = self._smooth_field(rng, (cfg.height, cfg.width))
                prototypes[class_index, channel] = (
                    cfg.channel_correlation * luminance
                    + (1.0 - cfg.channel_correlation) * detail
                )
        return prototypes * cfg.prototype_strength

    def _generate_split(self, total: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        rng = np.random.default_rng(seed)
        labels = np.arange(total) % cfg.num_classes
        rng.shuffle(labels)
        images = np.zeros((total, cfg.channels, cfg.height, cfg.width))
        for index, label in enumerate(labels):
            sample = self._prototypes[label].copy()
            if cfg.jitter > 0:
                shift_y = int(rng.integers(-cfg.jitter, cfg.jitter + 1))
                shift_x = int(rng.integers(-cfg.jitter, cfg.jitter + 1))
                sample = np.roll(sample, (shift_y, shift_x), axis=(1, 2))
            # smooth per-sample variation keeps the local-correlation structure
            variation = np.stack([
                self._smooth_field(rng, (cfg.height, cfg.width)) for _ in range(cfg.channels)
            ])
            sample = sample + cfg.sample_variation * variation
            sample = sample + cfg.noise_level * rng.normal(size=sample.shape)
            images[index] = sample
        return images, labels

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def splits(self) -> Tuple[ArrayDataset, ArrayDataset]:
        """Return ``(train, test)`` datasets."""
        cfg = self.config
        train_images, train_labels = self._generate_split(cfg.train_samples, cfg.seed + 1)
        test_images, test_labels = self._generate_split(cfg.test_samples, cfg.seed + 2)
        train = ArrayDataset(train_images, train_labels, num_classes=cfg.num_classes)
        test = ArrayDataset(test_images, test_labels, num_classes=cfg.num_classes)
        return train, test

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototypes of shape ``(num_classes, channels, height, width)``."""
        return self._prototypes


def synthetic_mnist(height: int = 28, width: int = 28, train_samples: int = 2000,
                    test_samples: int = 400, num_classes: int = 10,
                    seed: int = 0) -> Tuple[ArrayDataset, ArrayDataset]:
    """MNIST stand-in: single channel, strong spatial smoothness.

    The default 28x28 size matches the paper's FCNN input (784 features); the
    benchmark harness uses 14x14 variants for the smaller Fig. 7 models.
    """
    config = SyntheticImageConfig(
        num_classes=num_classes, channels=1, height=height, width=width,
        train_samples=train_samples, test_samples=test_samples,
        smoothness=2.5, channel_correlation=1.0, noise_level=0.3, seed=seed,
    )
    return SyntheticImageDataset(config).splits()


def synthetic_cifar10(height: int = 32, width: int = 32, train_samples: int = 2000,
                      test_samples: int = 400, seed: int = 10) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-10 stand-in: three correlated colour channels, 10 classes."""
    config = SyntheticImageConfig(
        num_classes=10, channels=3, height=height, width=width,
        train_samples=train_samples, test_samples=test_samples,
        smoothness=2.0, channel_correlation=0.6, prototype_strength=0.8,
        sample_variation=0.8, noise_level=0.6, seed=seed,
    )
    return SyntheticImageDataset(config).splits()


def synthetic_cifar100(height: int = 32, width: int = 32, train_samples: int = 4000,
                       test_samples: int = 800, num_classes: int = 100,
                       seed: int = 100) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-100 stand-in: three correlated colour channels, many classes.

    The benchmark harness typically reduces ``num_classes`` (e.g. to 20) so
    CPU-only training stays tractable; the full 100-class configuration is the
    default for parity with the paper.
    """
    config = SyntheticImageConfig(
        num_classes=num_classes, channels=3, height=height, width=width,
        train_samples=train_samples, test_samples=test_samples,
        smoothness=2.0, channel_correlation=0.6, prototype_strength=0.8,
        sample_variation=0.8, noise_level=0.6, seed=seed,
    )
    return SyntheticImageDataset(config).splits()
