"""Datasets, data loaders, transforms and synthetic dataset generators.

The execution environment has no copies of MNIST/CIFAR and no network access,
so the paper's datasets are replaced by procedurally generated stand-ins (see
``DESIGN.md`` for the substitution rationale):

* :func:`~repro.data.synthetic.synthetic_mnist` -- 1-channel "digit" images
  built from class-specific stroke/blob prototypes with smooth spatial
  correlation (what the spatial assignment schemes exploit).
* :func:`~repro.data.synthetic.synthetic_cifar10` /
  :func:`~repro.data.synthetic.synthetic_cifar100` -- 3-channel object images
  with correlated colour channels (what the channel assignment schemes
  exploit).
"""

from repro.data.dataset import Dataset, ArrayDataset, Subset, train_test_split
from repro.data.loader import DataLoader
from repro.data.transforms import (
    Compose,
    Normalize,
    FlattenImage,
    RandomHorizontalFlip,
    RandomCrop,
    ToFloat,
)
from repro.data.synthetic import (
    SyntheticImageConfig,
    SyntheticImageDataset,
    synthetic_mnist,
    synthetic_cifar10,
    synthetic_cifar100,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "train_test_split",
    "DataLoader",
    "Compose",
    "Normalize",
    "FlattenImage",
    "RandomHorizontalFlip",
    "RandomCrop",
    "ToFloat",
    "SyntheticImageConfig",
    "SyntheticImageDataset",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
]
