"""Area model: MZI / DC / PS counting for layers, decoders and whole models.

The paper measures "area" as the number of MZIs needed to realise every weight
matrix via SVD and unitary-to-interferometer mapping:

.. math::

    \\#\\mathrm{MZI}(m \\times n) = \\frac{n(n-1)}{2} + \\min(m, n) + \\frac{m(m-1)}{2}

Each MZI contains two directional couplers and (for the Fig. 7 comparison
against the OFFT baseline) one phase shifter; the tunable output phase screens
and attenuators are already included in the ``min(m, n)`` term of the formula.

Convolution layers are lowered to matrix-vector products over im2col patches,
so a CONV kernel of shape ``(C_out, C_in, k, k)`` is counted as an
``(C_out) x (C_in k^2)`` matrix -- its MZI cost depends only on channel counts
and kernel size, never on the spatial size of the feature map (this is why the
paper's channel assignment, not the spatial one, shrinks CNNs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

#: devices per MZI used in the Fig. 7 comparison ("the same MZI structure,
#: which contains 2 DCs and 1 PS")
MZI_DC_COUNT = 2
MZI_PS_COUNT = 1


def mzi_count_unitary(n: int) -> int:
    """MZIs required for an ``n x n`` unitary (Reck or Clements mesh)."""
    if n < 0:
        raise ValueError("dimension must be non-negative")
    return n * (n - 1) // 2


def mzi_count_matrix(rows: int, cols: int) -> int:
    """MZIs required for an ``rows x cols`` matrix deployed as ``U S V*``."""
    if rows < 0 or cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if rows == 0 or cols == 0:
        return 0
    return mzi_count_unitary(cols) + min(rows, cols) + mzi_count_unitary(rows)


@dataclass
class LayerArea:
    """Per-layer area accounting."""

    name: str
    rows: int
    cols: int
    mzis: int
    parameters: int

    @property
    def directional_couplers(self) -> int:
        return MZI_DC_COUNT * self.mzis

    @property
    def phase_shifters(self) -> int:
        return MZI_PS_COUNT * self.mzis


@dataclass
class AreaReport:
    """Aggregate area of a model (a list of matrix-shaped layers)."""

    layers: List[LayerArea] = field(default_factory=list)

    def add(self, layer: LayerArea) -> "AreaReport":
        self.layers.append(layer)
        return self

    @property
    def total_mzis(self) -> int:
        return sum(layer.mzis for layer in self.layers)

    @property
    def total_directional_couplers(self) -> int:
        return sum(layer.directional_couplers for layer in self.layers)

    @property
    def total_phase_shifters(self) -> int:
        return sum(layer.phase_shifters for layer in self.layers)

    @property
    def total_parameters(self) -> int:
        return sum(layer.parameters for layer in self.layers)

    def reduction_versus(self, baseline: "AreaReport") -> float:
        """Fractional MZI reduction relative to ``baseline`` (positive = smaller)."""
        if baseline.total_mzis == 0:
            raise ValueError("baseline has zero MZIs")
        return 1.0 - self.total_mzis / baseline.total_mzis

    def summary(self) -> str:
        lines = [f"{'layer':<28}{'rows':>7}{'cols':>7}{'#MZI':>12}{'#param':>12}"]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<28}{layer.rows:>7}{layer.cols:>7}{layer.mzis:>12}{layer.parameters:>12}"
            )
        lines.append(
            f"{'TOTAL':<28}{'':>7}{'':>7}{self.total_mzis:>12}{self.total_parameters:>12}"
        )
        return "\n".join(lines)


def count_linear_layer(name: str, out_features: int, in_features: int,
                       complex_valued: bool = False) -> LayerArea:
    """Area of a fully connected layer.

    ``complex_valued=True`` counts the layer as one complex matrix of the given
    size (the split ONN deploys the complex matrix directly on the mesh, which
    is what gives the ~75% saving); the parameter count doubles because each
    complex weight has independent real and imaginary parts.
    """
    mzis = mzi_count_matrix(out_features, in_features)
    parameters = out_features * in_features * (2 if complex_valued else 1)
    return LayerArea(name=name, rows=out_features, cols=in_features,
                     mzis=mzis, parameters=parameters)


def count_conv_layer(name: str, out_channels: int, in_channels: int,
                     kernel_size: Tuple[int, int],
                     complex_valued: bool = False) -> LayerArea:
    """Area of a convolution layer lowered to an im2col matrix product."""
    kernel_h, kernel_w = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
    rows = out_channels
    cols = in_channels * kernel_h * kernel_w
    mzis = mzi_count_matrix(rows, cols)
    parameters = rows * cols * (2 if complex_valued else 1)
    return LayerArea(name=name, rows=rows, cols=cols, mzis=mzis, parameters=parameters)
