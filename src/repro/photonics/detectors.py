"""Optical output detection (Section II-B / Fig. 6c of the paper).

* :class:`PhotodiodeDetector` -- direct detection of optical power (or
  amplitude); all phase information is lost.  This is what the conventional
  ONN and OplixNet's learnable decoders feed.
* :class:`CoherentDetector` -- the coherent detection baseline of [16]: a
  reference beam with a known amplitude interferes with the signal and the
  real/imaginary parts are recovered from several photodiode readings taken at
  different reference phase shifts.  The extra reference phase settings cost
  additional measurement time and a digital post-processing step, which is the
  drawback the learnable merge decoder removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.photonics.encoders import THERMAL_PS_SETTLING_TIME_S


@dataclass
class PhotodiodeDetector:
    """Square-law photodiode bank.

    Parameters
    ----------
    mode:
        ``"power"`` returns ``|z|^2`` (physical photocurrent), ``"amplitude"``
        returns ``|z|`` (power followed by a square-root readout).
    """

    mode: str = "amplitude"

    def detect(self, signals: np.ndarray) -> np.ndarray:
        signals = np.asarray(signals, dtype=complex)
        power = np.abs(signals) ** 2
        if self.mode == "power":
            return power
        if self.mode == "amplitude":
            return np.sqrt(power)
        raise ValueError(f"unknown photodiode mode {self.mode!r}")

    def detectors_required(self, num_outputs: int) -> int:
        return num_outputs

    def readout_latency(self, num_samples: int) -> float:
        """Direct detection happens at the photodetector rate (no extra steps)."""
        return 0.0


@dataclass
class CoherentDetector:
    """Coherent (homodyne-style) detection with a phase-swept reference beam.

    Recovery uses three intensity measurements:

    ``I_0   = |z + r|^2``, ``I_90 = |z + j r|^2`` and ``I_s = |z|^2``

    from which ``Re(z) = (I_0 - I_s - r^2) / (2 r)`` and
    ``Im(z) = (I_90 - I_s - r^2) / (2 r)``.  Each additional reference phase
    requires the thermo-optic reference shifter to settle, and the subtraction
    is digital post-processing.
    """

    reference_amplitude: float = 1.0

    def measure_intensities(self, signals: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        signals = np.asarray(signals, dtype=complex)
        reference = complex(self.reference_amplitude)
        i_zero = np.abs(signals + reference) ** 2
        i_ninety = np.abs(signals + 1j * reference) ** 2
        i_signal = np.abs(signals) ** 2
        return i_zero, i_ninety, i_signal

    def detect(self, signals: np.ndarray) -> np.ndarray:
        """Return the recovered complex field from the three intensity readings."""
        if self.reference_amplitude <= 0:
            raise ValueError("reference amplitude must be positive")
        i_zero, i_ninety, i_signal = self.measure_intensities(signals)
        ref_power = self.reference_amplitude ** 2
        real = (i_zero - i_signal - ref_power) / (2.0 * self.reference_amplitude)
        imag = (i_ninety - i_signal - ref_power) / (2.0 * self.reference_amplitude)
        return real + 1j * imag

    def detectors_required(self, num_outputs: int) -> int:
        """One photodiode per output per reference setting (3 settings)."""
        return 3 * num_outputs

    def readout_latency(self, num_samples: int) -> float:
        """Two extra reference phase settings must settle per sample."""
        return 2.0 * num_samples * THERMAL_PS_SETTLING_TIME_S

    @property
    def needs_post_processing(self) -> bool:
        return True
