"""Hardware non-ideality models: phase noise and phase quantization.

These extend the paper (motivated by its references [11], [13]) and are used
by the robustness ablation benchmark: the split ONN uses ~4x fewer MZIs, so
for the same per-device phase error it accumulates less total error.

Both models operate directly on the structure-of-arrays phase storage of
:class:`~repro.photonics.mzi_mesh.MeshDecomposition`.  ``PhaseNoiseModel``
additionally supports drawing a whole *ensemble* of realizations at once
(``trials=...``), producing a trials-batched mesh whose realizations all
propagate in one vectorized pass through the compiled engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.photonics.mzi_mesh import MeshDecomposition


def quantize_phases(mesh: MeshDecomposition, bits: int) -> MeshDecomposition:
    """Return a copy of ``mesh`` with every phase rounded to ``bits``-bit resolution.

    Phases are quantized uniformly over ``[0, 2*pi)``, modelling the finite
    resolution of the DAC driving each thermo-optic heater.  Works on
    trials-batched meshes as well (every realization is quantized).
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    step = 2.0 * math.pi / 2 ** bits

    def quantize(angles: np.ndarray) -> np.ndarray:
        return np.round(np.mod(angles, 2.0 * math.pi) / step) * step

    return mesh.with_phases(
        thetas=quantize(mesh.thetas),
        phis=quantize(mesh.phis),
        output_phases=np.exp(1j * quantize(np.angle(mesh.output_phases))),
    )


@dataclass
class PhaseNoiseModel:
    """Additive Gaussian phase error on every tunable phase shifter.

    Parameters
    ----------
    sigma:
        Standard deviation of the phase error in radians.  May be an *array*
        of standard deviations: ``perturb`` then prepends one axis per sigma
        axis to the mesh's trials shape, so a whole sigma sweep (and its
        Monte-Carlo trials) propagates as one vectorized ensemble.
    rng:
        Generator used to draw the errors (pass a seeded generator for
        reproducible robustness sweeps).
    """

    sigma: float = 0.0
    rng: Optional[np.random.Generator] = None

    @classmethod
    def seeded(cls, sigma, seed: int = 0) -> "PhaseNoiseModel":
        """A noise model with its own freshly seeded generator.

        Convenience for building reproducible
        :class:`~repro.core.compile.HardwareTarget` noise specifications
        without sharing a generator between targets (a shared generator makes
        logically independent compiles consume each other's draws).
        """
        return cls(sigma=sigma, rng=np.random.default_rng(seed))

    def perturb(self, mesh: MeshDecomposition,
                trials: Optional[int] = None) -> MeshDecomposition:
        """Return a noisy copy of ``mesh``.

        With ``trials=T`` the errors gain a leading axis of ``T`` independent
        realizations and the returned mesh is trials-batched: its ``apply``
        propagates all realizations in one vectorized pass.  ``trials=None``
        (default) draws a single realization, with the same draw order as the
        historical per-MZI implementation, so seeded sweeps stay reproducible.

        An array ``sigma`` of shape ``(S,)`` produces a mesh with trial shape
        ``(S,)`` (or ``(S, T)`` with ``trials``): the same standard-normal
        draws are scaled by each sigma (common random numbers), which is what
        the historical per-sigma loop with a re-seeded generator produced.
        """
        sigma = np.asarray(self.sigma, dtype=float)
        if np.any(sigma < 0):
            raise ValueError("sigma must be non-negative")
        if trials is not None and trials <= 0:
            raise ValueError("trials must be positive")
        if trials is not None and mesh.is_batched:
            raise ValueError("mesh already carries a trials axis")
        if sigma.ndim == 0 and sigma == 0:
            if trials is None:
                return mesh.with_phases()
            lead = (trials,)
            return mesh.with_phases(
                thetas=np.broadcast_to(mesh.thetas, lead + mesh.thetas.shape),
                phis=np.broadcast_to(mesh.phis, lead + mesh.phis.shape),
                output_phases=np.broadcast_to(mesh.output_phases,
                                              lead + mesh.output_phases.shape),
            )
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        lead = () if trials is None else (trials,)
        # interleaved (theta, phi) pairs keep the draw order of the historical
        # per-MZI loop, so fixed-seed single-trial sweeps are unchanged
        mzi_errors = rng.normal(0.0, 1.0, size=lead + (mesh.mzi_count, 2))
        phase_errors = rng.normal(0.0, 1.0, size=lead + (mesh.dimension,))
        # one broadcast axis per trials/device axis, so array sigmas prepend
        # their own axes to the trial shape
        scale = sigma.reshape(sigma.shape + (1,) * (len(lead) + 1))
        return mesh.with_phases(
            thetas=mesh.thetas + scale * mzi_errors[..., 0],
            phis=mesh.phis + scale * mzi_errors[..., 1],
            output_phases=mesh.output_phases * np.exp(1j * scale * phase_errors),
        )
