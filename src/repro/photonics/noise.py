"""Hardware non-ideality models: phase noise and phase quantization.

These extend the paper (motivated by its references [11], [13]) and are used
by the robustness ablation benchmark: the split ONN uses ~4x fewer MZIs, so
for the same per-device phase error it accumulates less total error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.photonics.mzi_mesh import MeshDecomposition, MZISetting


def quantize_phases(mesh: MeshDecomposition, bits: int) -> MeshDecomposition:
    """Return a copy of ``mesh`` with every phase rounded to ``bits``-bit resolution.

    Phases are quantized uniformly over ``[0, 2*pi)``, modelling the finite
    resolution of the DAC driving each thermo-optic heater.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    levels = 2 ** bits
    step = 2.0 * math.pi / levels

    def quantize(angle: float) -> float:
        return round(float(np.mod(angle, 2.0 * math.pi)) / step) * step

    settings = [MZISetting(mode=s.mode, theta=quantize(s.theta), phi=quantize(s.phi))
                for s in mesh.settings]
    phases = np.angle(mesh.output_phases)
    quantized_phases = np.exp(1j * np.array([quantize(float(p)) for p in phases]))
    return MeshDecomposition(dimension=mesh.dimension, settings=settings,
                             output_phases=quantized_phases, method=mesh.method)


@dataclass
class PhaseNoiseModel:
    """Additive Gaussian phase error on every tunable phase shifter.

    Parameters
    ----------
    sigma:
        Standard deviation of the phase error in radians.
    rng:
        Generator used to draw the errors (pass a seeded generator for
        reproducible robustness sweeps).
    """

    sigma: float = 0.0
    rng: Optional[np.random.Generator] = None

    def perturb(self, mesh: MeshDecomposition) -> MeshDecomposition:
        """Return a noisy copy of ``mesh``."""
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.sigma == 0:
            return MeshDecomposition(dimension=mesh.dimension,
                                     settings=list(mesh.settings),
                                     output_phases=mesh.output_phases.copy(),
                                     method=mesh.method)
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        settings = [
            MZISetting(mode=s.mode,
                       theta=s.theta + rng.normal(0.0, self.sigma),
                       phi=s.phi + rng.normal(0.0, self.sigma))
            for s in mesh.settings
        ]
        phase_errors = rng.normal(0.0, self.sigma, size=mesh.dimension)
        output_phases = mesh.output_phases * np.exp(1j * phase_errors)
        return MeshDecomposition(dimension=mesh.dimension, settings=settings,
                                 output_phases=output_phases, method=mesh.method)
