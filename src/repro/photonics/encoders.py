"""Optical input encoders (Fig. 3 of the paper).

Three encoders are modelled:

* :class:`DCComplexEncoder` -- the proposed directional-coupler-based complex
  encoder.  Two real values ``(A1, A2)`` are modulated onto two light signals
  of amplitudes ``sqrt(2) A1`` and ``sqrt(2) A2`` (same static phase); the
  second arm passes a static 90-degree shift and both enter a 50:50 coupler.
  The top output port carries ``A1 + j A2`` and the bottom port is discarded.
  Because the phase elements are *static*, there is no thermo-optic settling
  time and the encoder sustains the full modulator rate.
* :class:`PSComplexEncoder` -- the complex encoder of [16]: one amplitude
  modulator plus a tunable thermo-optic phase shifter per complex value.  It
  produces the same complex amplitude but the heater must re-settle for every
  input, which caps the throughput (the "time bottleneck" the paper removes).
* :class:`AmplitudeEncoder` -- the conventional ONN encoder [10]: amplitude
  modulation only, phase left at zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.photonics.components import directional_coupler, phase_shifter

#: settling time of a thermo-optic phase shifter (order of microseconds)
THERMAL_PS_SETTLING_TIME_S = 1e-5
#: modulation period of a high-speed optical modulator / photodetector (>= 100 GHz detection [15])
MODULATOR_PERIOD_S = 1e-11


@dataclass
class EncoderAreaBudget:
    """Optical components used by an encoder for a given number of complex inputs."""

    modulators: int
    directional_couplers: int
    static_phase_elements: int
    thermal_phase_shifters: int


class DCComplexEncoder:
    """Directional-coupler complex encoder (proposed).

    :meth:`encode` maps pairs of real values to complex amplitudes.  The
    physics is simulated explicitly with component transfer matrices so that
    the identity ``output = A1 + j A2`` is a *verified* property, not an
    assumption.
    """

    name = "dc"
    has_time_bottleneck = False

    #: static phase trim on the lower arm before the coupler.  With the DC
    #: convention used here (a 90-degree shift on the *cross* path, Fig. 1a),
    #: the coupler itself supplies the 90-degree rotation the paper attributes
    #: to the static shifter, so the trim is zero.  A convention with a real
    #: 50:50 splitter would set this to pi/2 instead.
    static_shift: float = 0.0

    def encode_pair(self, a1: float, a2: float) -> complex:
        """Encode one pair of real values into one complex amplitude."""
        # two modulated inputs at the same static phase (defined as 0)
        signals = np.array([math.sqrt(2.0) * a1, math.sqrt(2.0) * a2], dtype=complex)
        # static trim on the lower arm, then the 50:50 coupler
        shifted = phase_shifter(self.static_shift, arm=1) @ signals
        outputs = directional_coupler(0.5) @ shifted
        # the top port carries A1 + j A2; the bottom port is discarded
        return complex(outputs[0])

    def encode(self, real: np.ndarray, imag: np.ndarray) -> np.ndarray:
        """Vectorised encoding of arrays of (real, imaginary) values.

        The transfer-matrix algebra reduces to ``real + 1j * imag`` exactly;
        we keep the closed form here for speed and verify it against
        :meth:`encode_pair` in the test-suite.
        """
        real = np.asarray(real, dtype=float)
        imag = np.asarray(imag, dtype=float)
        if real.shape != imag.shape:
            raise ValueError("real and imaginary parts must have the same shape")
        return real + 1j * imag

    def area_budget(self, num_complex_inputs: int) -> EncoderAreaBudget:
        """Two modulators, one DC and one static phase element per complex input."""
        return EncoderAreaBudget(
            modulators=2 * num_complex_inputs,
            directional_couplers=num_complex_inputs,
            static_phase_elements=num_complex_inputs,
            thermal_phase_shifters=0,
        )

    def encoding_latency(self, num_samples: int) -> float:
        """Time to stream ``num_samples`` input vectors (modulator-rate limited)."""
        return num_samples * MODULATOR_PERIOD_S


class PSComplexEncoder:
    """Phase-shifter complex encoder of [16] (baseline with a thermal bottleneck)."""

    name = "ps"
    has_time_bottleneck = True

    def encode_pair(self, a1: float, a2: float) -> complex:
        """Encode a pair by amplitude modulation followed by a tunable phase shift."""
        magnitude = math.hypot(a1, a2)
        phase = math.atan2(a2, a1)
        return magnitude * complex(math.cos(phase), math.sin(phase))

    def encode(self, real: np.ndarray, imag: np.ndarray) -> np.ndarray:
        real = np.asarray(real, dtype=float)
        imag = np.asarray(imag, dtype=float)
        if real.shape != imag.shape:
            raise ValueError("real and imaginary parts must have the same shape")
        magnitude = np.hypot(real, imag)
        phase = np.arctan2(imag, real)
        return magnitude * np.exp(1j * phase)

    def area_budget(self, num_complex_inputs: int) -> EncoderAreaBudget:
        """One modulator and one thermo-optic phase shifter per complex input."""
        return EncoderAreaBudget(
            modulators=num_complex_inputs,
            directional_couplers=0,
            static_phase_elements=0,
            thermal_phase_shifters=num_complex_inputs,
        )

    def encoding_latency(self, num_samples: int) -> float:
        """Each new sample requires the heater to re-settle."""
        return num_samples * THERMAL_PS_SETTLING_TIME_S


class AmplitudeEncoder:
    """Conventional amplitude-only encoder [10]; the phase stays at zero."""

    name = "amplitude"
    has_time_bottleneck = False

    def encode(self, real: np.ndarray, imag: np.ndarray = None) -> np.ndarray:
        real = np.asarray(real, dtype=float)
        if imag is not None and np.any(np.asarray(imag) != 0):
            raise ValueError("the conventional encoder cannot carry imaginary data")
        return real.astype(complex)

    def area_budget(self, num_inputs: int) -> EncoderAreaBudget:
        return EncoderAreaBudget(
            modulators=num_inputs,
            directional_couplers=0,
            static_phase_elements=0,
            thermal_phase_shifters=0,
        )

    def encoding_latency(self, num_samples: int) -> float:
        return num_samples * MODULATOR_PERIOD_S
