"""Compiled, vectorized propagation engine for MZI meshes.

The naive way to simulate a mesh is to walk its MZIs one by one and apply each
2x2 transfer matrix to the two modes it couples.  That is ``n (n - 1) / 2``
Python-level iterations per forward pass -- the hot path of every deployment
fidelity check and every robustness sweep.  This module replaces the walk with
a small compiler pipeline:

1. :func:`column_schedule` greedily packs the MZIs into *columns* of disjoint
   mode pairs while preserving the per-mode application order.  MZIs inside a
   column commute (they touch disjoint modes), so a column can be applied as
   one batched gather + 2x2 complex multiply.  A Clements mesh compresses to
   ``n`` columns, a Reck mesh to ``2 n - 3``.
2. :func:`mzi_block_coefficients` evaluates every MZI transfer matrix at once
   from structure-of-arrays phase storage (closed form of Eq. 1, verified
   against :func:`repro.photonics.components.mzi_transfer` in the test-suite).
3. :func:`propagate` streams a batch of complex amplitude vectors through the
   scheduled columns.  Phases may carry a leading *trials* axis -- a whole
   ensemble of noise realizations propagates in one vectorized pass.
4. :func:`dense_transfer` multiplies the mesh out into a dense matrix by
   propagating the identity, so small meshes can be applied with a single
   matmul (the dense matrix is cached on :class:`MeshDecomposition` and
   invalidated when phases are mutated).

:func:`reference_apply` keeps the original per-MZI walk as an executable
specification; the property tests pin the compiled engine against it to
1e-10 for both topologies, with and without insertion loss, phase noise and
quantization.

When the native ``cchain`` kernel is available (:mod:`repro.photonics._native`
compiles it from shipped C source on first use), :func:`native_propagate`
executes the whole rotation chain plus the output phase screen in one C call
per batch, in place on the caller's complex buffer.  Sequential flat-order
application is exactly the column program's semantics -- the greedy column
schedule only vectorizes the walk -- so the kernel needs no column
bookkeeping and is parity-pinned against :func:`reference_apply` like every
other fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

#: meshes up to this dimension are applied through a cached dense transfer
#: matrix (one BLAS matmul) instead of the column program; the cache is built
#: lazily and invalidated by :meth:`MeshDecomposition.update_phases`.  The
#: default is a conservative measured value; :func:`calibrate_dense_limit`
#: re-measures the crossover on the current machine and can replace it.
DENSE_DIMENSION_LIMIT = 96


#: a strided-slice view ``(start, stop, step)`` equivalent to an index array,
#: or None when the indices form no arithmetic progression
SliceSpec = Optional[Tuple[int, int, int]]


def as_slice(indices: np.ndarray) -> SliceSpec:
    """The ``(start, stop, step)`` basic slice equivalent to ``indices``.

    Returns None when the indices are not an ascending arithmetic progression.
    Reck (and Clements) columns pack their MZIs at stride-2 mode patterns, so
    most column gathers reduce to basic slices -- views instead of fancy-index
    copies on the state array.
    """
    if indices.size == 0:
        return None
    first = int(indices[0])
    if indices.size == 1:
        return first, first + 1, 1
    steps = np.diff(indices)
    step = int(steps[0])
    if step <= 0 or not np.all(steps == step):
        return None
    return first, int(indices[-1]) + 1, step


@dataclass(frozen=True)
class MeshProgram:
    """Column schedule of one mesh topology (independent of the phase values).

    Attributes
    ----------
    dimension:
        Number of optical modes.
    columns:
        One entry per column: ``(mzi_indices, top_modes, bottom_modes)`` --
        the indices into the flat MZI arrays scheduled in this column and the
        upper/lower mode of each scheduled MZI.  All mode pairs within a
        column are disjoint.
    column_slices:
        One entry per column: ``(mode_slice, index_slice)`` where each element
        is the ``(start, stop, step)`` basic slice equivalent to the column's
        ``top_modes`` / ``mzi_indices`` array (or None when the pattern is not
        an arithmetic progression).  Reck columns alternate stride-2 mode
        patterns, so their half-empty gathers run as strided views instead of
        fancy-index copies.
    """

    dimension: int
    columns: Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]
    column_slices: Tuple[Tuple[SliceSpec, SliceSpec], ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.column_slices) != len(self.columns):
            object.__setattr__(self, "column_slices", tuple(
                (as_slice(tops), as_slice(indices))
                for indices, tops, _bottoms in self.columns))

    @property
    def depth(self) -> int:
        """Optical depth: the number of MZI columns."""
        return len(self.columns)


def column_schedule(modes: np.ndarray, dimension: int) -> MeshProgram:
    """Greedily schedule MZIs into columns of disjoint mode pairs.

    An MZI is placed in the earliest column after every earlier MZI that
    shares one of its modes, which preserves the sequential application order
    exactly (operations on disjoint modes commute).
    """
    modes = np.asarray(modes, dtype=np.intp)
    depth_per_mode = np.zeros(dimension, dtype=np.intp)
    assignment = np.empty(modes.size, dtype=np.intp)
    for index, mode in enumerate(modes):
        column = max(depth_per_mode[mode], depth_per_mode[mode + 1])
        assignment[index] = column
        depth_per_mode[mode] = depth_per_mode[mode + 1] = column + 1
    depth = int(depth_per_mode.max()) if modes.size else 0
    columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for column in range(depth):
        indices = np.flatnonzero(assignment == column)
        tops = modes[indices]
        # MZIs within a column touch disjoint modes (they commute) and stay
        # positionally paired with their flat indices, so sorting by mode is
        # free -- and it turns the Reck scheme's descending mode patterns
        # into ascending stride-2 progressions that gather as basic slices
        order = np.argsort(tops)
        indices, tops = indices[order], tops[order]
        columns.append((indices, tops, tops + 1))
    return MeshProgram(dimension=dimension, columns=tuple(columns))


def mzi_block_coefficients(thetas: np.ndarray, phis: np.ndarray,
                           transmission: float = 1.0):
    """Entries of every MZI transfer matrix, evaluated vectorized.

    Closed form of ``DC . PS(theta) . DC . PS(phi)`` (Eq. 1)::

        T = 1/2 * [[(e^{i theta} - 1) e^{i phi},  i (e^{i theta} + 1)        ],
                   [i (e^{i theta} + 1) e^{i phi}, 1 - e^{i theta}           ]]

    Returns the four entry arrays ``(t00, t01, t10, t11)``, each with the
    shape of ``thetas`` (which may carry leading trials axes), scaled by the
    amplitude ``transmission`` of the per-MZI insertion-loss model.
    """
    e_theta = np.exp(1j * np.asarray(thetas, dtype=float))
    e_phi = np.exp(1j * np.asarray(phis, dtype=float))
    half = 0.5 * transmission
    plus = 1j * half * (e_theta + 1.0)
    t00 = half * (e_theta - 1.0) * e_phi
    t01 = plus
    t10 = plus * e_phi
    t11 = half * (1.0 - e_theta)
    return t00, t01, t10, t11


def nulling_rotation_blocks(a: np.ndarray, b: np.ndarray, left: bool,
                            null_tolerance: float,
                            out: Optional[np.ndarray] = None):
    """Solve a stacked nulling rotation and emit batched 2x2 transfer blocks.

    This is the low-overhead small-array kernel of the Clements stack
    decomposition chain: for every matrix of a stack it solves the
    ``(theta, phi)`` MZI parameters that null pivot entry ``b`` against ``a``
    and assembles the resulting 2x2 block -- ``M(theta, phi)`` for *left*
    (row-pair) operations, its conjugate transpose for *right* (column-pair)
    operations -- ready for one batched ``np.matmul`` pair update.

    Compared to composing :func:`mzi_block_coefficients` with separate
    ``np.where`` clamps and four per-entry gathers, the fused form roughly
    halves the number of small-array ufunc dispatches, which is what
    dominates when the stack axis is short (2-4 conv-kernel SVD factors).
    The closed forms are identical, so the phases agree with the scalar
    per-matrix chain to the last bit.

    Parameters
    ----------
    a, b:
        Stacked pivot pairs, shape ``(stack,)``.
    left:
        Left (row) operation when True, right (column) operation when False.
    null_tolerance:
        Magnitudes at or below this are treated as exact zeros.
    out:
        Optional preallocated ``(stack, 2, 2)`` complex block buffer.

    Returns ``(theta, phi, blocks)``.
    """
    a_abs = np.abs(a)
    b_abs = np.abs(b)
    a_abs[a_abs <= null_tolerance] = 0.0
    b_abs[b_abs <= null_tolerance] = 0.0
    mask = (a_abs > 0) & (b_abs > 0)
    product = b * np.conj(a)
    if left:
        theta = 2.0 * np.arctan2(a_abs, b_abs)
        phi = np.where(mask, np.arctan2(product.imag, product.real), 0.0)
    else:
        theta = 2.0 * np.arctan2(b_abs, a_abs)
        np.negative(product, out=product)
        phi = np.where(mask, -np.arctan2(product.imag, product.real), 0.0)
    e_theta = np.exp(1j * theta)
    e_phi = np.exp(1j * phi)
    t01 = 0.5j * (e_theta + 1.0)
    t00 = 0.5 * (e_theta - 1.0) * e_phi
    t10 = t01 * e_phi
    t11 = 0.5 * (1.0 - e_theta)
    blocks = out if out is not None and out.shape == a.shape + (2, 2) \
        else np.empty(a.shape + (2, 2), dtype=complex)
    if left:
        blocks[..., 0, 0] = t00
        blocks[..., 0, 1] = t01
        blocks[..., 1, 0] = t10
        blocks[..., 1, 1] = t11
    else:
        np.conj(t00, out=blocks[..., 0, 0])
        np.conj(t10, out=blocks[..., 0, 1])
        np.conj(t01, out=blocks[..., 1, 0])
        np.conj(t11, out=blocks[..., 1, 1])
    return theta, phi, blocks


def _loss_transmission(insertion_loss_db: float) -> float:
    if insertion_loss_db < 0:
        raise ValueError("insertion_loss_db must be non-negative")
    return 10.0 ** (-insertion_loss_db / 20.0)


def propagate(program: MeshProgram, states: np.ndarray, thetas: np.ndarray,
              phis: np.ndarray, output_phases: np.ndarray,
              insertion_loss_db: float = 0.0,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Propagate batched complex amplitudes through a scheduled mesh.

    Parameters
    ----------
    states:
        Complex amplitudes of shape ``(batch, dim)`` or ``(*trials, batch,
        dim)``.
    thetas, phis:
        Phase arrays of shape ``(n_mzi,)`` or ``(*trials, n_mzi)``.
    output_phases:
        Complex unit-modulus phases of shape ``(dim,)`` or ``(*trials, dim)``.
    out:
        Optional preallocated complex result buffer of the broadcast output
        shape; when compatible, the whole propagation runs in it and no work
        array is allocated (it may alias ``states`` -- the states are copied
        in first).  An incompatible buffer is ignored.

    Leading trials axes of the states and the phases broadcast against each
    other; the result has shape ``(*trials, batch, dim)``.
    """
    transmission = _loss_transmission(insertion_loss_db)
    states = np.asarray(states, dtype=complex)
    thetas = np.asarray(thetas, dtype=float)
    phis = np.asarray(phis, dtype=float)
    output_phases = np.asarray(output_phases, dtype=complex)
    lead = np.broadcast_shapes(states.shape[:-2], thetas.shape[:-1],
                               phis.shape[:-1], output_phases.shape[:-1])
    shape = lead + states.shape[-2:]
    if (out is not None and out.shape == shape and out.dtype == np.complex128
            and out.flags.writeable):
        work = out
        np.copyto(work, states)
    else:
        work = np.array(np.broadcast_to(states, shape))
    t00, t01, t10, t11 = mzi_block_coefficients(thetas, phis, transmission)
    # insert the batch axis once so per-column slices broadcast directly
    batch_axis = t00.shape[:-1] + (1, t00.shape[-1])
    t00, t01 = t00.reshape(batch_axis), t01.reshape(batch_axis)
    t10, t11 = t10.reshape(batch_axis), t11.reshape(batch_axis)
    for (indices, tops, bottoms), (mode_slice, index_slice) in zip(
            program.columns, program.column_slices):
        if mode_slice is not None:
            # arithmetic mode pattern (every Clements column, the half-empty
            # stride-2 Reck columns): strided views instead of gather copies
            start, stop, step = mode_slice
            top = work[..., start:stop:step]
            bottom = work[..., start + 1:stop + 1:step]
        else:
            top = work[..., tops]
            bottom = work[..., bottoms]
        if index_slice is not None:
            i0, i1, istep = index_slice
            a, b = t00[..., i0:i1:istep], t01[..., i0:i1:istep]
            c, d = t10[..., i0:i1:istep], t11[..., i0:i1:istep]
        else:
            a, b = t00[..., indices], t01[..., indices]
            c, d = t10[..., indices], t11[..., indices]
        # both new columns must materialize before the first write-back: with
        # strided views, writing the tops would corrupt the bottoms' inputs
        new_top = a * top + b * bottom
        new_bottom = c * top + d * bottom
        if mode_slice is not None:
            work[..., start:stop:step] = new_top
            work[..., start + 1:stop + 1:step] = new_bottom
        else:
            work[..., tops] = new_top
            work[..., bottoms] = new_bottom
    work *= output_phases[..., None, :]
    return work


def native_kernel():
    """The loaded native ``cchain`` kernel, or None when unavailable/disabled.

    Thin convenience over :func:`repro.photonics._native.kernel` so callers
    inside the photonics package do not each repeat the import dance.
    """
    from repro.photonics import _native

    return _native.kernel()


def native_propagate(modes: np.ndarray, states: np.ndarray,
                     thetas: np.ndarray, phis: np.ndarray,
                     output_phases: np.ndarray,
                     insertion_loss_db: float = 0.0,
                     out: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """Propagate batched states through the native chain kernel.

    One C call applies every MZI in flat application order and the output
    phase screen, in place on a ``(batch, dim)`` complex work buffer --
    semantically identical to :func:`propagate` of the column schedule (the
    schedule preserves per-mode order, so columns only vectorize the walk).

    Returns the propagated array, or None when the call is ineligible: no
    kernel loaded (or ``REPRO_FORCE_REFERENCE`` set) or trials-batched phase
    arrays, which stay on the numpy ensemble path.  Callers fall back to
    :func:`propagate` on None.  Leading axes of ``states`` beyond the batch
    axis are flattened through the same kernel call.
    """
    kernel = native_kernel()
    if kernel is None:
        return None
    thetas = np.asarray(thetas, dtype=float)
    phis = np.asarray(phis, dtype=float)
    output_phases = np.asarray(output_phases, dtype=complex)
    if thetas.ndim != 1 or phis.ndim != 1 or output_phases.ndim != 1:
        return None
    transmission = _loss_transmission(insertion_loss_db)
    states = np.asarray(states, dtype=complex)
    dim = states.shape[-1]
    if (out is not None and out.shape == states.shape
            and out.dtype == np.complex128 and out.flags.writeable
            and out.flags.c_contiguous):
        work = out
        np.copyto(work, states)
    else:
        # the kernel mutates in place, so always hand it a private copy
        work = states.astype(np.complex128, order="C", copy=True)
    kernel.propagate(work.reshape(-1, dim),
                     np.ascontiguousarray(modes, dtype=np.intp),
                     np.ascontiguousarray(thetas),
                     np.ascontiguousarray(phis),
                     np.ascontiguousarray(output_phases, dtype=np.complex128),
                     transmission)
    return work


def apply_dense(states: np.ndarray, dense: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Apply a dense transfer matrix to batched states: ``states @ dense.T``.

    ``out``-style preallocated-buffer application: when ``out`` is a
    compatible buffer the matmul writes straight into it (``out`` must not
    alias ``states``), so steady-state plan execution allocates nothing on
    the hot path.  Trials-batched dense matrices broadcast like matmul.
    """
    states = np.asarray(states, dtype=complex)
    dense_t = np.swapaxes(np.asarray(dense, dtype=complex), -1, -2)
    if out is not None:
        try:
            return np.matmul(states, dense_t, out=out)
        except (TypeError, ValueError):
            pass
    return np.matmul(states, dense_t)


def dense_transfer(program: MeshProgram, thetas: np.ndarray, phis: np.ndarray,
                   output_phases: np.ndarray,
                   insertion_loss_db: float = 0.0) -> np.ndarray:
    """Multiply the mesh out into its dense transfer matrix.

    The identity is propagated through the column program (one vectorized
    pass), so this is ``O(depth * dim^2)`` instead of the ``O(n_mzi * dim^3)``
    of embedding every MZI into the full space.  Returns ``(dim, dim)``, or
    ``(*trials, dim, dim)`` for phases with leading trials axes.
    """
    identity = np.eye(program.dimension, dtype=complex)
    columns = propagate(program, identity, thetas, phis, output_phases,
                        insertion_loss_db=insertion_loss_db)
    # row i of the propagated identity is U @ e_i, i.e. the i-th column of U
    return np.swapaxes(columns, -1, -2)


def _set_default_dense_limit(limit: int) -> int:
    """Replace :data:`DENSE_DIMENSION_LIMIT`; returns the previous value."""
    global DENSE_DIMENSION_LIMIT
    previous = DENSE_DIMENSION_LIMIT
    DENSE_DIMENSION_LIMIT = int(limit)
    return previous


def set_dense_dimension_limit(limit: int) -> int:
    """Deprecated: mutate the module-global dense/column crossover.

    The global is shared by every mesh in the process, so concurrent compiles
    with different policies race on it.  Prefer
    ``CompileOptions(dense_dimension_limit=...)`` (threaded per-mesh by
    ``repro.compile``); this shim only seeds the default that meshes without
    an explicit per-mesh limit fall back to.  Returns the previous value.
    """
    import warnings

    warnings.warn(
        "set_dense_dimension_limit() mutates process-global state and is "
        "deprecated; pass CompileOptions(dense_dimension_limit=...) to "
        "repro.compile() instead", DeprecationWarning, stacklevel=2)
    return _set_default_dense_limit(limit)


def measure_dense_crossover(dimensions=(16, 32, 48, 64, 96, 128, 192),
                            batch: int = 32, repeats: int = 5,
                            method: str = "clements", seed: int = 0,
                            backends=("column", "cchain")):
    """Time the cached dense matmul against every execution backend per dimension.

    For each mesh dimension the warm-cache dense apply (``states @ U.T``) and
    each requested non-dense backend (the compiled numpy ``column`` program
    and, when the kernel is loaded, the native ``cchain`` chain) are timed
    ``repeats`` times (best-of), on the same Haar-random mesh and the same
    ``(batch, dim)`` state batch.  Returns one dict per dimension carrying a
    ``backend_seconds`` mapping (the per-backend axis the ``"auto"`` policy
    is calibrated from; an unavailable backend maps to None) alongside the
    legacy flat keys (``dense_seconds``/``column_seconds``/``dense_speedup``)
    older result readers expect.
    """
    import time

    from repro.photonics.mzi_mesh import decompose_unitary, random_unitary

    def best_of(fn) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    rng = np.random.default_rng(seed)
    rows = []
    for dimension in dimensions:
        mesh = decompose_unitary(random_unitary(int(dimension), rng), method=method)
        program = mesh.compiled()
        states = (rng.normal(size=(batch, dimension))
                  + 1j * rng.normal(size=(batch, dimension)))
        dense_matrix = dense_transfer(program, mesh.thetas, mesh.phis,
                                      mesh.output_phases)
        backend_seconds = {
            "dense": best_of(lambda: states @ dense_matrix.T),
        }
        for backend in backends:
            if backend == "column":
                backend_seconds["column"] = best_of(
                    lambda: propagate(program, states, mesh.thetas,
                                      mesh.phis, mesh.output_phases))
            elif backend == "cchain":
                if native_kernel() is None:
                    backend_seconds["cchain"] = None
                    continue
                backend_seconds["cchain"] = best_of(
                    lambda: native_propagate(mesh.modes, states, mesh.thetas,
                                             mesh.phis, mesh.output_phases))
            else:
                raise ValueError(f"unknown crossover backend {backend!r}")
        dense_seconds = backend_seconds["dense"]
        column_seconds = backend_seconds.get("column")
        alternatives = [s for name, s in backend_seconds.items()
                        if name != "dense" and s is not None]
        best_alternative = min(alternatives) if alternatives else None
        rows.append({
            "dimension": int(dimension),
            "method": method,
            "batch": int(batch),
            "optical_depth": program.depth,
            "backend_seconds": backend_seconds,
            "dense_seconds": dense_seconds,
            "column_seconds": column_seconds,
            "dense_speedup": (column_seconds / dense_seconds
                              if column_seconds is not None else None),
            "dense_speedup_vs_best": (best_alternative / dense_seconds
                                      if best_alternative is not None else None),
        })
    return rows


def calibrate_dense_limit(dimensions=(16, 32, 48, 64, 96, 128, 192),
                          batch: int = 32, repeats: int = 5,
                          method: str = "clements", seed: int = 0,
                          apply: bool = False,
                          backends=("column", "cchain")):
    """Pick :data:`DENSE_DIMENSION_LIMIT` from measured crossover data.

    The limit is the largest measured dimension at which the warm-cache dense
    matmul still beats the *fastest available* non-dense backend (the numpy
    column program, or the native chain kernel when it is loaded -- the same
    alternative the ``"auto"`` policy would otherwise pick); if the dense
    path never wins the limit is 0, disabling it.  With ``apply=True`` the
    module global is updated in place.  Returns ``(limit, rows)`` so callers
    can record the measurements.
    """
    rows = measure_dense_crossover(dimensions=dimensions, batch=batch,
                                   repeats=repeats, method=method, seed=seed,
                                   backends=backends)
    dense_wins = [row["dimension"] for row in rows
                  if row["dense_speedup_vs_best"] is not None
                  and row["dense_speedup_vs_best"] >= 1.0]
    limit = max(dense_wins) if dense_wins else 0
    if apply:
        _set_default_dense_limit(limit)
    return limit, rows


def reference_apply(modes: np.ndarray, thetas: np.ndarray, phis: np.ndarray,
                    output_phases: np.ndarray, states: np.ndarray,
                    insertion_loss_db: float = 0.0) -> np.ndarray:
    """The original per-MZI Python walk, kept as an executable specification.

    Used by the property tests (the compiled engine must agree to 1e-10) and
    by the mesh micro-benchmark as the speedup baseline.  Only unbatched
    phases are supported -- this is exactly the seed implementation.
    """
    from repro.photonics.components import mzi_transfer

    transmission = _loss_transmission(insertion_loss_db)
    states = np.array(states, dtype=complex)
    for mode, theta, phi in zip(modes, thetas, phis):
        block = mzi_transfer(float(theta), float(phi)) * transmission
        states[..., mode:mode + 2] = states[..., mode:mode + 2] @ block.T
    return states * np.asarray(output_phases, dtype=complex)
