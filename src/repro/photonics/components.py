"""Transfer matrices and power models of elementary photonic components.

Conventions
-----------
* Light signals are complex amplitudes; optical power is the squared modulus.
* A 50:50 directional coupler (DC) transmits half of the energy to each output
  port and adds a ``pi/2`` phase shift to the diagonal (cross) transmission:

  .. math::  \\mathrm{DC} = \\frac{1}{\\sqrt 2}\\begin{pmatrix}1 & i\\\\ i & 1\\end{pmatrix}

* A thermo-optic phase shifter (PS) on the upper arm multiplies that arm by
  ``exp(i * angle)``.
* An MZI is ``DC . PS(theta) . DC . PS(phi)`` exactly as in Eq. (1) of the
  paper; it is composed of 2 DCs and 2 PSs, but, following the paper's Fig. 7
  accounting, the *internal* phase shifter count per MZI used for area
  comparisons is configurable in :mod:`repro.photonics.area`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: static power consumed by a thermo-optic phase shifter at full 2*pi shift [16]
MAX_PHASE_SHIFTER_POWER_MW = 80.0


def directional_coupler(coupling_ratio: float = 0.5) -> np.ndarray:
    """Transfer matrix of a directional coupler.

    Parameters
    ----------
    coupling_ratio:
        Fraction of optical power transferred to the cross port (0.5 for the
        50:50 couplers used inside MZIs and the proposed complex encoder).
    """
    if not 0.0 <= coupling_ratio <= 1.0:
        raise ValueError("coupling_ratio must be in [0, 1]")
    through = math.sqrt(1.0 - coupling_ratio)
    cross = math.sqrt(coupling_ratio)
    return np.array([[through, 1j * cross], [1j * cross, through]], dtype=complex)


def phase_shifter(angle: float, arm: int = 0) -> np.ndarray:
    """Transfer matrix of a single-arm phase shifter.

    Parameters
    ----------
    angle:
        Phase shift in radians.
    arm:
        0 to place the shifter on the upper arm (paper convention), 1 for the
        lower arm.
    """
    if arm not in (0, 1):
        raise ValueError("arm must be 0 (upper) or 1 (lower)")
    matrix = np.eye(2, dtype=complex)
    matrix[arm, arm] = np.exp(1j * angle)
    return matrix


def mzi_transfer(theta: float, phi: float) -> np.ndarray:
    """Transfer matrix of an MZI with internal phase ``theta`` and input phase ``phi``.

    Implements Eq. (1) of the paper:
    ``DC . diag(e^{i theta}, 1) . DC . diag(e^{i phi}, 1)``.
    """
    coupler = directional_coupler(0.5)
    return coupler @ phase_shifter(theta) @ coupler @ phase_shifter(phi)


def attenuator(transmission: float) -> complex:
    """Scalar transfer factor of an optical attenuator (amplitude transmission)."""
    if transmission < 0:
        raise ValueError("attenuator transmission must be non-negative")
    return complex(transmission)


def phase_shifter_power_mw(angle,
                           max_power_mw: float = MAX_PHASE_SHIFTER_POWER_MW):
    """Static power consumed by a thermo-optic PS holding ``angle``.

    The power of a thermo-optic heater grows linearly with the phase it must
    hold, ranging from 0 to roughly 80 mW per 2*pi [16].  Angles are wrapped
    into ``[0, 2*pi)`` first.  Accepts scalars (returns a float) or arrays of
    angles (returns the elementwise power array), so mesh-level totals reuse
    this single definition of the power model.
    """
    wrapped = np.mod(angle, 2.0 * math.pi)
    power = max_power_mw * wrapped / (2.0 * math.pi)
    return float(power) if np.ndim(angle) == 0 else power


@dataclass
class DirectionalCoupler:
    """A directional coupler component with a fixed coupling ratio."""

    coupling_ratio: float = 0.5

    def transfer_matrix(self) -> np.ndarray:
        return directional_coupler(self.coupling_ratio)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        """Propagate a pair (or batch of pairs) of complex amplitudes."""
        inputs = np.asarray(inputs, dtype=complex)
        return inputs @ self.transfer_matrix().T


@dataclass
class PhaseShifter:
    """A thermo-optic phase shifter on one arm of a two-mode section."""

    angle: float = 0.0
    arm: int = 0

    def transfer_matrix(self) -> np.ndarray:
        return phase_shifter(self.angle, self.arm)

    def power_mw(self) -> float:
        return phase_shifter_power_mw(self.angle)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=complex)
        return inputs @ self.transfer_matrix().T


@dataclass
class MZI:
    """A Mach-Zehnder interferometer with two tunable phase shifters.

    Attributes
    ----------
    theta:
        Internal phase shift (between the two DCs); controls the splitting
        ratio of the MZI.
    phi:
        External phase shift at the first input; controls the relative phase.
    """

    theta: float = 0.0
    phi: float = 0.0

    def transfer_matrix(self) -> np.ndarray:
        return mzi_transfer(self.theta, self.phi)

    def power_mw(self) -> float:
        """Static power of both phase shifters."""
        return phase_shifter_power_mw(self.theta) + phase_shifter_power_mw(self.phi)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=complex)
        return inputs @ self.transfer_matrix().T

    @property
    def component_counts(self) -> Tuple[int, int]:
        """(directional couplers, phase shifters) inside one MZI."""
        return 2, 2
