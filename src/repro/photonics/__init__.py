"""Photonic hardware substrate: components, meshes, encoders, detectors, area.

This package simulates the optical hardware that OplixNet targets:

* :mod:`~repro.photonics.components` -- transfer matrices of directional
  couplers (DC), thermo-optic phase shifters (PS), Mach-Zehnder
  interferometers (MZI, Eq. 1 of the paper) and attenuators, plus their power
  models.
* :mod:`~repro.photonics.mzi_mesh` -- Reck (triangular) and Clements
  (rectangular) decompositions of arbitrary unitaries into MZI meshes and
  their reconstruction.
* :mod:`~repro.photonics.svd_mapping` -- SVD-based mapping of arbitrary weight
  matrices onto two meshes plus a diagonal attenuator column.
* :mod:`~repro.photonics.encoders` -- the proposed DC-based complex encoder,
  the PS-based encoder of [16] and the conventional amplitude encoder.
* :mod:`~repro.photonics.detectors` -- photodiode and coherent detection.
* :mod:`~repro.photonics.area` -- MZI / DC / PS counting and the area model
  used by every experiment table.
* :mod:`~repro.photonics.engine` -- the compiled, vectorized mesh-propagation
  engine: column scheduling of disjoint MZIs, batched transfer-matrix
  evaluation, trials-axis noise ensembles and cached dense transfer matrices.
* :mod:`~repro.photonics.noise` -- phase noise / quantization models.
* :mod:`~repro.photonics.circuit` -- photonic layers and whole-network
  circuits assembled from deployed neural networks.
"""

from repro.photonics.components import (
    directional_coupler,
    phase_shifter,
    mzi_transfer,
    attenuator,
    DirectionalCoupler,
    PhaseShifter,
    MZI,
    phase_shifter_power_mw,
)
from repro.photonics.engine import (
    MeshProgram,
    column_schedule,
    dense_transfer,
    mzi_block_coefficients,
    propagate,
    reference_apply,
)
from repro.photonics.mzi_mesh import (
    MZISetting,
    MeshDecomposition,
    reck_decompose,
    reck_decompose_reference,
    reck_decompose_stack,
    clements_decompose,
    clements_decompose_reference,
    clements_decompose_stack,
    decompose_unitary,
    decompose_unitary_stack,
    random_unitary,
    is_unitary,
)
from repro.photonics.svd_mapping import PhotonicMatrix, svd_decompose, svd_decompose_many
from repro.photonics.encoders import (
    DCComplexEncoder,
    PSComplexEncoder,
    AmplitudeEncoder,
)
from repro.photonics.detectors import PhotodiodeDetector, CoherentDetector
from repro.photonics.area import (
    mzi_count_unitary,
    mzi_count_matrix,
    AreaReport,
    LayerArea,
    count_linear_layer,
    count_conv_layer,
    MZI_DC_COUNT,
    MZI_PS_COUNT,
)
from repro.photonics.noise import PhaseNoiseModel, quantize_phases
from repro.photonics.circuit import PhotonicLinearLayer, PhotonicNetwork

__all__ = [
    "directional_coupler",
    "phase_shifter",
    "mzi_transfer",
    "attenuator",
    "DirectionalCoupler",
    "PhaseShifter",
    "MZI",
    "phase_shifter_power_mw",
    "MeshProgram",
    "column_schedule",
    "dense_transfer",
    "mzi_block_coefficients",
    "propagate",
    "reference_apply",
    "MZISetting",
    "MeshDecomposition",
    "reck_decompose",
    "reck_decompose_reference",
    "reck_decompose_stack",
    "clements_decompose",
    "clements_decompose_reference",
    "clements_decompose_stack",
    "decompose_unitary",
    "decompose_unitary_stack",
    "random_unitary",
    "is_unitary",
    "PhotonicMatrix",
    "svd_decompose",
    "svd_decompose_many",
    "DCComplexEncoder",
    "PSComplexEncoder",
    "AmplitudeEncoder",
    "PhotodiodeDetector",
    "CoherentDetector",
    "mzi_count_unitary",
    "mzi_count_matrix",
    "AreaReport",
    "LayerArea",
    "count_linear_layer",
    "count_conv_layer",
    "MZI_DC_COUNT",
    "MZI_PS_COUNT",
    "PhaseNoiseModel",
    "quantize_phases",
    "PhotonicLinearLayer",
    "PhotonicNetwork",
]
