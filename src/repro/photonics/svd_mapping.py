"""SVD mapping of arbitrary weight matrices onto MZI meshes.

A general (complex or real) ``m x n`` weight matrix ``W`` is factored as
``W = U S V*`` (singular value decomposition).  ``U`` and ``V*`` are unitary
and are implemented as MZI meshes; ``S`` is a non-negative diagonal
implemented as a column of optical attenuators (singular values larger than
one are handled by pulling a global scale out of the diagonal, which in
hardware corresponds to optical amplification or digital rescaling at the
detector).

The MZI count of the mapped matrix is::

    n (n - 1) / 2  +  min(m, n)  +  m (m - 1) / 2

which is the formula the paper uses for every area number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.photonics.area import mzi_count_matrix
from repro.photonics.mzi_mesh import MeshDecomposition, decompose_unitary


@dataclass
class PhotonicMatrix:
    """A weight matrix deployed as two MZI meshes and a diagonal scaling column.

    Attributes
    ----------
    left_mesh:
        Mesh implementing the ``m x m`` unitary ``U``.
    right_mesh:
        Mesh implementing the ``n x n`` unitary ``V*``.
    singular_values:
        The ``min(m, n)`` singular values (attenuator settings after
        normalisation by :attr:`scale`).
    scale:
        Global scale factor pulled out so every attenuator transmission is at
        most 1.  Applied digitally (or by an amplifier) after detection.
    """

    rows: int
    cols: int
    left_mesh: MeshDecomposition
    right_mesh: MeshDecomposition
    singular_values: np.ndarray
    scale: float

    @property
    def mzi_count(self) -> int:
        """MZIs used by both meshes (matches the closed-form count)."""
        return self.left_mesh.mzi_count + self.right_mesh.mzi_count

    @property
    def attenuator_count(self) -> int:
        return int(min(self.rows, self.cols))

    @property
    def device_count(self) -> int:
        """MZIs plus diagonal attenuators -- the paper's per-matrix device count."""
        return self.mzi_count + self.attenuator_count

    def matrix(self) -> np.ndarray:
        """Reconstruct the dense matrix implemented by the photonic circuit.

        For trials-batched meshes the result gains the leading trials axes.
        """
        left = self.left_mesh.reconstruct()
        right = self.right_mesh.reconstruct()
        diag = np.zeros((self.rows, self.cols), dtype=complex)
        k = min(self.rows, self.cols)
        diag[np.arange(k), np.arange(k)] = self.singular_values
        return self.scale * (left @ diag @ right)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Propagate complex amplitudes through ``V*``, the attenuators and ``U``.

        Batch-first: ``vector`` may be ``(cols,)`` or ``(batch, cols)``,
        optionally with leading trials axes; trials-batched meshes
        (phase-noise ensembles) add their trials axes to the result, with
        realization ``t`` applied consistently to both meshes.
        """
        vector = np.asarray(vector, dtype=complex)
        single = vector.ndim == 1
        states = vector[None, :] if single else vector
        states = self.right_mesh.apply(states)
        k = min(self.rows, self.cols)
        if self.rows == self.cols:
            # square weights need no mode padding/truncation
            projected = states * self.singular_values
        else:
            projected = np.zeros(states.shape[:-1] + (self.rows,), dtype=complex)
            projected[..., :k] = states[..., :k] * self.singular_values[:k]
        states = self.left_mesh.apply(projected)
        states = states * self.scale
        return states[..., 0, :] if single else states


def svd_decompose(weight: np.ndarray, method: str = "clements",
                  normalize: bool = True) -> PhotonicMatrix:
    """Map a weight matrix onto a photonic circuit via SVD.

    Parameters
    ----------
    weight:
        Real or complex matrix of shape ``(m, n)``.
    method:
        Mesh decomposition method for the two unitaries (``"clements"`` or
        ``"reck"``).
    normalize:
        If True, scale the singular values so the largest attenuator
        transmission is 1 (physically realisable); the scale factor is stored
        in :attr:`PhotonicMatrix.scale`.
    """
    weight = np.asarray(weight, dtype=complex)
    if weight.ndim != 2:
        raise ValueError("svd_decompose expects a 2-D matrix")
    rows, cols = weight.shape
    left, singular_values, right = np.linalg.svd(weight, full_matrices=True)
    scale = 1.0
    if normalize and singular_values.size and singular_values[0] > 1.0:
        scale = float(singular_values[0])
        singular_values = singular_values / scale
    left_mesh = decompose_unitary(left, method=method)
    right_mesh = decompose_unitary(right, method=method)
    photonic = PhotonicMatrix(
        rows=rows, cols=cols, left_mesh=left_mesh, right_mesh=right_mesh,
        singular_values=singular_values.astype(float), scale=scale,
    )
    expected = mzi_count_matrix(rows, cols) - min(rows, cols)
    if photonic.mzi_count != expected:
        raise AssertionError(
            f"mesh MZI count {photonic.mzi_count} disagrees with closed form {expected}"
        )
    return photonic
