"""SVD mapping of arbitrary weight matrices onto MZI meshes.

A general (complex or real) ``m x n`` weight matrix ``W`` is factored as
``W = U S V*`` (singular value decomposition).  ``U`` and ``V*`` are unitary
and are implemented as MZI meshes; ``S`` is a non-negative diagonal
implemented as a column of optical attenuators (singular values larger than
one are handled by pulling a global scale out of the diagonal, which in
hardware corresponds to optical amplification or digital rescaling at the
detector).

The MZI count of the mapped matrix is::

    n (n - 1) / 2  +  min(m, n)  +  m (m - 1) / 2

which is the formula the paper uses for every area number.

:func:`svd_decompose_many` maps a whole list of weight matrices at once:
the SVD factors of every weight are grouped by dimension and each group is
decomposed as one batched stack
(:func:`~repro.photonics.mzi_mesh.decompose_unitary_stack`), which is how the
compiler amortizes deploying models with many same-size kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.area import mzi_count_matrix
from repro.photonics.mzi_mesh import (
    MeshDecomposition,
    decompose_unitary,
    decompose_unitary_stack,
)


@dataclass
class PhotonicMatrix:
    """A weight matrix deployed as two MZI meshes and a diagonal scaling column.

    Attributes
    ----------
    left_mesh:
        Mesh implementing the ``m x m`` unitary ``U``.
    right_mesh:
        Mesh implementing the ``n x n`` unitary ``V*``.
    singular_values:
        The ``min(m, n)`` singular values (attenuator settings after
        normalisation by :attr:`scale`).
    scale:
        Global scale factor pulled out so every attenuator transmission is at
        most 1.  Applied digitally (or by an amplifier) after detection.
    """

    rows: int
    cols: int
    left_mesh: MeshDecomposition
    right_mesh: MeshDecomposition
    singular_values: np.ndarray
    scale: float

    # cached pre-transposed effective matrix (see effective_weight_t); keyed
    # by the mesh phase versions it was computed from
    _weight_t_cache: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)
    _weight_t_versions: Optional[Tuple[int, int]] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def mzi_count(self) -> int:
        """MZIs used by both meshes (matches the closed-form count)."""
        return self.left_mesh.mzi_count + self.right_mesh.mzi_count

    @property
    def attenuator_count(self) -> int:
        return int(min(self.rows, self.cols))

    @property
    def device_count(self) -> int:
        """MZIs plus diagonal attenuators -- the paper's per-matrix device count."""
        return self.mzi_count + self.attenuator_count

    def matrix(self) -> np.ndarray:
        """Reconstruct the dense matrix implemented by the photonic circuit.

        For trials-batched meshes the result gains the leading trials axes.
        """
        left = self.left_mesh.reconstruct()
        right = self.right_mesh.reconstruct()
        diag = np.zeros((self.rows, self.cols), dtype=complex)
        k = min(self.rows, self.cols)
        diag[np.arange(k), np.arange(k)] = self.singular_values
        return self.scale * (left @ diag @ right)

    def effective_weight_t(self) -> np.ndarray:
        """The pre-transposed effective matrix ``matrix().T``, cached.

        This is exactly what the plan runtime bakes into a fused matmul
        instruction (``states @ weight_t``), so it is cached here -- keyed by
        the two meshes' phase versions -- instead of being reconstructed per
        plan build.  The artifact store seeds the cache with a memory-mapped
        copy on warm loads (:meth:`seed_effective_weight_t`), which is how N
        serving replicas share one physical copy of every dense matrix.
        """
        versions = (self.left_mesh.phase_version, self.right_mesh.phase_version)
        if self._weight_t_cache is None or self._weight_t_versions != versions:
            weight = self.matrix()
            self._weight_t_cache = np.ascontiguousarray(
                np.swapaxes(weight, -1, -2))
            self._weight_t_versions = versions
        return self._weight_t_cache

    def seed_effective_weight_t(self, weight_t: np.ndarray) -> None:
        """Install a precomputed (possibly memory-mapped) effective matrix.

        The seed is tied to the *current* mesh phase versions, so a later
        in-place phase update still invalidates it exactly like a computed
        cache entry.
        """
        if weight_t.shape[-2:] != (self.cols, self.rows):
            raise ValueError(
                f"effective matrix must have trailing shape "
                f"({self.cols}, {self.rows}), got {weight_t.shape}")
        self._weight_t_cache = weight_t
        self._weight_t_versions = (self.left_mesh.phase_version,
                                   self.right_mesh.phase_version)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Propagate complex amplitudes through ``V*``, the attenuators and ``U``.

        Batch-first: ``vector`` may be ``(cols,)`` or ``(batch, cols)``,
        optionally with leading trials axes; trials-batched meshes
        (phase-noise ensembles) add their trials axes to the result, with
        realization ``t`` applied consistently to both meshes.
        """
        vector = np.asarray(vector, dtype=complex)
        single = vector.ndim == 1
        states = vector[None, :] if single else vector
        states = self.right_mesh.apply(states)      # fresh array, ours to mutate
        k = min(self.rows, self.cols)
        if self.rows == self.cols:
            # square weights need no mode padding/truncation
            states *= self.singular_values
            projected = states
        else:
            projected = np.zeros(states.shape[:-1] + (self.rows,), dtype=complex)
            projected[..., :k] = states[..., :k] * self.singular_values[:k]
        # the column engine may propagate straight in the projected buffer
        # (out= copies the states in first); the dense path ignores the
        # aliasing buffer and allocates as before
        states = self.left_mesh.apply(projected, out=projected)
        states *= self.scale
        return states[..., 0, :] if single else states


#: weight matrices decomposed (SVD factoring + mesh nulling) by this process.
#: The serving workers report it in their ready info, which is how the tests
#: prove a warm artifact store performs *zero* decompositions across a spawn
#: boundary (where monkeypatching cannot reach).
_DECOMPOSITIONS = 0


def decompositions_performed() -> int:
    """How many weight matrices this process has decomposed onto meshes."""
    return _DECOMPOSITIONS


def _count_decompositions(count: int) -> None:
    global _DECOMPOSITIONS
    _DECOMPOSITIONS += count


def _apply_mesh_policy(mesh: MeshDecomposition, backend: str,
                       dense_dimension_limit: Optional[int]) -> MeshDecomposition:
    if backend not in MeshDecomposition.BACKENDS:
        raise ValueError(f"unknown mesh backend {backend!r}; "
                         f"choose from {MeshDecomposition.BACKENDS}")
    mesh.backend = backend
    mesh.dense_dimension_limit = (None if dense_dimension_limit is None
                                  else int(dense_dimension_limit))
    return mesh


def _assemble(rows: int, cols: int, left_mesh: MeshDecomposition,
              right_mesh: MeshDecomposition, singular_values: np.ndarray,
              scale: float) -> PhotonicMatrix:
    photonic = PhotonicMatrix(
        rows=rows, cols=cols, left_mesh=left_mesh, right_mesh=right_mesh,
        singular_values=singular_values.astype(float), scale=scale,
    )
    expected = mzi_count_matrix(rows, cols) - min(rows, cols)
    if photonic.mzi_count != expected:
        raise AssertionError(
            f"mesh MZI count {photonic.mzi_count} disagrees with closed form {expected}"
        )
    return photonic


def _normalized(singular_values: np.ndarray, normalize: bool):
    scale = 1.0
    if normalize and singular_values.size and singular_values[0] > 1.0:
        scale = float(singular_values[0])
        singular_values = singular_values / scale
    return singular_values, scale


def _svd_factors(weight: np.ndarray, normalize: bool):
    weight = np.asarray(weight, dtype=complex)
    if weight.ndim != 2:
        raise ValueError("svd_decompose expects a 2-D matrix")
    left, singular_values, right = np.linalg.svd(weight, full_matrices=True)
    singular_values, scale = _normalized(singular_values, normalize)
    return weight.shape, left, right, singular_values, scale


def _svd_factors_many(weights: Sequence[np.ndarray], normalize: bool) -> List[tuple]:
    """SVD-factor many weights, grouping same-shape matrices into one call.

    ``np.linalg.svd`` is a gufunc: a group of same-shape weights stacked
    along a leading axis factors in one batched call (same LAPACK routine
    per slice, so the factors match the per-matrix path; the parity tests
    pin this).  The returned list is index-aligned with ``weights``.
    """
    arrays = [np.asarray(weight, dtype=complex) for weight in weights]
    for array in arrays:
        if array.ndim != 2:
            raise ValueError("svd_decompose expects 2-D matrices")
    by_shape: Dict[Tuple[int, int], List[int]] = {}
    for index, array in enumerate(arrays):
        by_shape.setdefault(array.shape, []).append(index)
    factored: List[Optional[tuple]] = [None] * len(arrays)
    for shape, indices in by_shape.items():
        if len(indices) >= 2:
            stack = np.stack([arrays[index] for index in indices])
            lefts, stacked_values, rights = np.linalg.svd(stack, full_matrices=True)
            for position, index in enumerate(indices):
                singular_values, scale = _normalized(stacked_values[position],
                                                     normalize)
                factored[index] = (shape, lefts[position], rights[position],
                                   singular_values, scale)
        else:
            index = indices[0]
            factored[index] = _svd_factors(arrays[index], normalize)
    return factored


def svd_decompose(weight: np.ndarray, method: str = "clements",
                  normalize: bool = True, backend: str = "auto",
                  dense_dimension_limit: Optional[int] = None) -> PhotonicMatrix:
    """Map a weight matrix onto a photonic circuit via SVD.

    Parameters
    ----------
    weight:
        Real or complex matrix of shape ``(m, n)``.
    method:
        Mesh decomposition method for the two unitaries (``"clements"`` or
        ``"reck"``).
    normalize:
        If True, scale the singular values so the largest attenuator
        transmission is 1 (physically realisable); the scale factor is stored
        in :attr:`PhotonicMatrix.scale`.
    backend, dense_dimension_limit:
        Execution policy stamped onto both meshes (see
        :class:`~repro.photonics.mzi_mesh.MeshDecomposition`); the compiler
        threads these in from ``CompileOptions`` instead of module globals.
    """
    _count_decompositions(1)
    (rows, cols), left, right, singular_values, scale = _svd_factors(weight, normalize)
    left_mesh = _apply_mesh_policy(decompose_unitary(left, method=method),
                                   backend, dense_dimension_limit)
    right_mesh = _apply_mesh_policy(decompose_unitary(right, method=method),
                                    backend, dense_dimension_limit)
    return _assemble(rows, cols, left_mesh, right_mesh, singular_values, scale)


#: smallest dimension group that is decomposed as a batched stack, per mesh
#: method and per *chain backend* (the backend axis of the measured
#: ``stack_threshold`` rows of ``benchmarks/results/compile.json``).  The
#: Reck stack path replaces an already-vectorized wavefront loop and wins
#: from two matrices up regardless of backend.  The Clements stack path
#: replaces a *scalar* nulling chain: on the ``numpy`` chain backend the
#: small-array per-op overhead of the fused
#: :func:`repro.photonics.engine.nulling_rotation_blocks` kernel only
#: amortizes from three matrices up, while the native ``cchain`` kernel
#: (one C call per stack, :mod:`repro.photonics._native`) removes the
#: per-op overhead entirely, so the stack path wins from two.
STACK_THRESHOLDS: Dict[str, Dict[str, int]] = {
    "reck": {"numpy": 2, "cchain": 2},
    "clements": {"numpy": 3, "cchain": 2},
}


def chain_backend() -> str:
    """The decomposition-chain backend active in this process.

    ``"cchain"`` when the native kernel is loaded (and not force-disabled),
    ``"numpy"`` otherwise -- the key :func:`stack_threshold` resolves the
    per-backend crossover table with.
    """
    from repro.photonics import engine

    return "cchain" if engine.native_kernel() is not None else "numpy"


def stack_threshold(method: str, backend: Optional[str] = None) -> int:
    """Measured stack-vs-per-matrix crossover for ``method``.

    ``backend`` is the chain backend (``"numpy"`` / ``"cchain"``); by
    default the one active in this process (:func:`chain_backend`), so the
    grouping policy of :func:`svd_decompose_many` automatically tracks
    whether the native kernel is available.
    """
    table = STACK_THRESHOLDS.get(method.lower())
    if table is None:
        return 2
    return table.get(backend if backend is not None else chain_backend(), 2)


def svd_decompose_many(weights: Sequence[np.ndarray], method: str = "clements",
                       normalize: bool = True, batch_unitaries: bool = True,
                       backend: str = "auto",
                       dense_dimension_limit: Optional[int] = None
                       ) -> List[PhotonicMatrix]:
    """Map many weight matrices onto photonic circuits in one batched pass.

    The batching happens at both ends of the pipeline: the *SVDs* of
    same-shape weight matrices run as one stacked ``np.linalg.svd`` call
    (:func:`_svd_factors_many`), and the resulting unitaries are grouped by
    dimension with every group at or above the method's measured
    :func:`stack_threshold` size (per chain backend, see
    :data:`STACK_THRESHOLDS`) decomposed as a single stacked Reck/Clements
    pass (``batch_unitaries=False`` falls back to the per-matrix
    decomposition path, same results).  The returned list is index-aligned
    with ``weights``.
    """
    _count_decompositions(len(weights))
    factored = _svd_factors_many(weights, normalize)
    # group the unitaries of every weight by dimension: (weight index, side)
    groups: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
    for index, (_shape, left, right, _sv, _scale) in enumerate(factored):
        for side, unitary in enumerate((left, right)):
            groups.setdefault(unitary.shape[0], []).append((index, side, unitary))
    meshes: Dict[Tuple[int, int], MeshDecomposition] = {}
    threshold = stack_threshold(method)
    for members in groups.values():
        if batch_unitaries and len(members) >= threshold:
            stack = np.stack([unitary for _index, _side, unitary in members])
            decomposed = decompose_unitary_stack(stack, method=method)
        else:
            decomposed = [decompose_unitary(unitary, method=method)
                          for _index, _side, unitary in members]
        for (index, side, _unitary), mesh in zip(members, decomposed):
            meshes[index, side] = _apply_mesh_policy(mesh, backend,
                                                     dense_dimension_limit)
    return [_assemble(rows, cols, meshes[index, 0], meshes[index, 1],
                      singular_values, scale)
            for index, ((rows, cols), _left, _right, singular_values, scale)
            in enumerate(factored)]
