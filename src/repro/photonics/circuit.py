"""Photonic circuit layers assembled from deployed weight matrices.

:class:`PhotonicLinearLayer` wraps one weight matrix deployed via SVD onto two
MZI meshes; :class:`PhotonicNetwork` chains several layers with (electro-optic)
nonlinearities in between, which is how a trained SCVNN/CVNN is executed "on
hardware" in this simulation.  Both support optional phase noise / phase
quantization injection to study robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.photonics.mzi_mesh import MeshDecomposition
from repro.photonics.noise import PhaseNoiseModel, quantize_phases
from repro.photonics.svd_mapping import PhotonicMatrix, svd_decompose


@dataclass
class PhotonicLinearLayer:
    """One weight matrix deployed on photonic hardware plus an optional bias.

    The bias is applied electronically after detection (photonic MVM engines
    add biases in the electrical domain).
    """

    photonic_matrix: PhotonicMatrix
    bias: Optional[np.ndarray] = None
    name: str = "layer"

    @classmethod
    def from_weight(cls, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                    method: str = "clements", name: str = "layer",
                    backend: str = "auto",
                    dense_dimension_limit: Optional[int] = None) -> "PhotonicLinearLayer":
        """Deploy a (complex or real) weight matrix onto MZI meshes.

        ``backend`` / ``dense_dimension_limit`` are the per-mesh execution
        policy (see :func:`repro.photonics.svd_mapping.svd_decompose`).
        """
        matrix = svd_decompose(weight, method=method, backend=backend,
                               dense_dimension_limit=dense_dimension_limit)
        return cls(photonic_matrix=matrix, bias=bias, name=name)

    @property
    def mzi_count(self) -> int:
        return self.photonic_matrix.device_count

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Propagate complex amplitudes through the deployed matrix.

        Batch-first: ``inputs`` is ``(in_features,)`` or
        ``(batch, in_features)``; trials-batched (noise-ensemble) meshes
        prepend their trials axes to the result, composing with the batch
        axis, and the electronic bias broadcasts over all leading axes.
        """
        outputs = self.photonic_matrix.apply(inputs)
        if self.bias is not None:
            outputs = outputs + self.bias
        return outputs

    __call__ = forward

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "PhotonicLinearLayer":
        """Return a copy whose meshes carry phase noise and/or quantization.

        ``trials`` draws that many independent noise realizations at once;
        the returned layer propagates the whole ensemble in one vectorized
        pass and its outputs gain a leading trials axis.
        """
        if trials is not None and noise is None:
            raise ValueError("trials requires a PhaseNoiseModel")

        def degrade(mesh: MeshDecomposition) -> MeshDecomposition:
            degraded = mesh
            if quantization_bits is not None:
                degraded = quantize_phases(degraded, quantization_bits)
            if noise is not None:
                degraded = noise.perturb(degraded, trials=trials)
            return degraded

        matrix = self.photonic_matrix
        degraded_matrix = PhotonicMatrix(
            rows=matrix.rows, cols=matrix.cols,
            left_mesh=degrade(matrix.left_mesh),
            right_mesh=degrade(matrix.right_mesh),
            singular_values=matrix.singular_values.copy(),
            scale=matrix.scale,
        )
        bias = None if self.bias is None else np.array(self.bias, copy=True)
        return PhotonicLinearLayer(photonic_matrix=degraded_matrix, bias=bias, name=self.name)


class PhotonicNetwork:
    """A chain of photonic linear layers with nonlinearities in between.

    Parameters
    ----------
    layers:
        Deployed linear layers, applied in order.
    activation:
        Callable applied to the complex activations between layers (default:
        CReLU -- ReLU on the real and imaginary parts independently, matching
        the software SCVNN).
    """

    def __init__(self, layers: Sequence[PhotonicLinearLayer],
                 activation: Optional[Callable[[np.ndarray], np.ndarray]] = None):
        self.layers: List[PhotonicLinearLayer] = list(layers)
        if not self.layers:
            raise ValueError("PhotonicNetwork needs at least one layer")
        self.activation = activation if activation is not None else split_relu

    @property
    def mzi_count(self) -> int:
        return sum(layer.mzi_count for layer in self.layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Propagate complex input amplitudes through the whole network.

        Batch-first: accepts ``(n,)`` or ``(batch, n)`` amplitudes; with
        trials-batched layers (see :meth:`with_noise`) the output gains the
        leading trials axes, realization ``t`` staying consistent across
        every layer of the chain.
        """
        signal = np.asarray(inputs, dtype=complex)
        for index, layer in enumerate(self.layers):
            signal = layer(signal)
            if index < len(self.layers) - 1:
                signal = self.activation(signal)
        return signal

    __call__ = forward

    def with_noise(self, noise: Optional[PhaseNoiseModel] = None,
                   quantization_bits: Optional[int] = None,
                   trials: Optional[int] = None) -> "PhotonicNetwork":
        """Return a copy of the network with degraded meshes.

        With ``trials`` every layer carries the same number of independent
        noise realizations and the network output gains a leading trials axis
        (realization ``t`` is consistent across layers).
        """
        return PhotonicNetwork(
            [layer.with_noise(noise=noise, quantization_bits=quantization_bits,
                              trials=trials)
             for layer in self.layers],
            activation=self.activation,
        )


def split_relu(signal: np.ndarray) -> np.ndarray:
    """CReLU on complex amplitudes: clamp real and imaginary parts at zero."""
    signal = np.asarray(signal, dtype=complex)
    return np.maximum(signal.real, 0.0) + 1j * np.maximum(signal.imag, 0.0)


def modulus_squared(signal: np.ndarray) -> np.ndarray:
    """Photodiode power readout used as a real nonlinearity."""
    return np.abs(np.asarray(signal, dtype=complex)) ** 2
