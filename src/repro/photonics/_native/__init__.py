"""Native (compiled-C) kernels behind the ``"cchain"`` mesh backend.

The package ships :file:`cchain.c` as source and compiles it on first use
(:mod:`repro.photonics._native.build`); :func:`kernel` returns the loaded
kernel or ``None``, and every caller treats ``None`` as "run the pure-numpy
reference path".  See the build module for the environment knobs
(``REPRO_FORCE_REFERENCE``, ``REPRO_NATIVE_CC``, ``REPRO_NATIVE_CACHE``).
"""

from repro.photonics._native.build import (  # noqa: F401
    ChainKernel,
    build_info,
    cache_dir,
    force_reference_enabled,
    kernel,
    load_error,
    reset,
)

__all__ = ["ChainKernel", "build_info", "cache_dir", "force_reference_enabled",
           "kernel", "load_error", "reset"]
