/* Native batched 2x2 rotation-chain kernels for the "cchain" mesh backend.
 *
 * Shipped as source and compiled on first use (see build.py); the Python
 * wrappers pass raw complex128 buffers as interleaved (re, im) double pairs,
 * which matches numpy's in-memory layout exactly, so every kernel operates
 * in place on the caller's arrays with zero marshalling.
 *
 * The closed forms are bit-for-bit the ones the numpy engine evaluates
 * (engine.mzi_block_coefficients and the scalar Clements chain in
 * mzi_mesh.clements_decompose); the test-suite pins both kernels against the
 * pure-numpy reference walks to 1e-10.
 *
 * All integer arguments are C `long` (LP64 => 64-bit), matching np.intp on
 * the Linux targets this builds on.
 */

#include <math.h>
#include <stdlib.h>

/* ------------------------------------------------------------------ */
/* propagate: apply a chain of MZIs to batched states, in place        */
/* ------------------------------------------------------------------ */

/* Entries of the MZI transfer matrix, closed form of Eq. 1:
 *   T = 1/2 [[(e^{it}-1)e^{ip},  i(e^{it}+1)],
 *            [i(e^{it}+1)e^{ip}, 1-e^{it}   ]]
 * scaled by the per-MZI amplitude transmission.  blocks[k] holds the four
 * complex entries (t00, t01, t10, t11) as eight doubles.
 */
static void mzi_blocks(const double *thetas, const double *phis, long n_mzi,
                       double transmission, double *blocks)
{
    long k;
    for (k = 0; k < n_mzi; ++k) {
        double ct = cos(thetas[k]), st = sin(thetas[k]);
        double cp = cos(phis[k]), sp = sin(phis[k]);
        double half = 0.5 * transmission;
        double am_re = half * (ct - 1.0), am_im = half * st; /* half*(e^{it}-1) */
        double t01_re = -half * st, t01_im = half * (ct + 1.0);
        double *b = blocks + 8 * k;
        b[0] = am_re * cp - am_im * sp;   /* t00 = half*(e^{it}-1)*e^{ip} */
        b[1] = am_re * sp + am_im * cp;
        b[2] = t01_re;                    /* t01 = i*half*(e^{it}+1) */
        b[3] = t01_im;
        b[4] = t01_re * cp - t01_im * sp; /* t10 = t01 * e^{ip} */
        b[5] = t01_re * sp + t01_im * cp;
        b[6] = -am_re;                    /* t11 = half*(1-e^{it}) */
        b[7] = -am_im;
    }
}

/* Propagate `batch` complex state rows of length `dim` through the MZI chain
 * in flat application order, then apply the output phase screen.  Applying
 * the MZIs sequentially is exactly the column program's semantics: the
 * greedy column schedule preserves per-mode application order, so columns
 * are only a vectorization of this walk (reference_apply is the same walk).
 *
 * work:          (batch, dim) complex128, interleaved, mutated in place
 * modes:         (n_mzi,) upper mode index of each MZI, application order
 * thetas/phis:   (n_mzi,) phase arrays
 * output_phases: (dim,) complex128 interleaved
 * Returns 0 on success, -1 if scratch allocation failed (caller falls back).
 */
int cchain_propagate(double *work, long batch, long dim,
                     const long *modes, long n_mzi,
                     const double *thetas, const double *phis,
                     const double *output_phases, double transmission)
{
    double *blocks = NULL;
    long b, k, j;
    if (n_mzi > 0) {
        blocks = (double *) malloc((size_t)(8 * n_mzi) * sizeof(double));
        if (blocks == NULL)
            return -1;
        mzi_blocks(thetas, phis, n_mzi, transmission, blocks);
    }
    for (b = 0; b < batch; ++b) {
        double *row = work + 2 * b * dim;
        for (k = 0; k < n_mzi; ++k) {
            const double *t = blocks + 8 * k;
            double *u = row + 2 * modes[k];
            double ur = u[0], ui = u[1], lr = u[2], li = u[3];
            u[0] = t[0] * ur - t[1] * ui + t[2] * lr - t[3] * li;
            u[1] = t[0] * ui + t[1] * ur + t[2] * li + t[3] * lr;
            u[2] = t[4] * ur - t[5] * ui + t[6] * lr - t[7] * li;
            u[3] = t[4] * ui + t[5] * ur + t[6] * li + t[7] * lr;
        }
        for (j = 0; j < dim; ++j) {
            double pr = output_phases[2 * j], pi = output_phases[2 * j + 1];
            double vr = row[2 * j], vi = row[2 * j + 1];
            row[2 * j] = vr * pr - vi * pi;
            row[2 * j + 1] = vr * pi + vi * pr;
        }
    }
    free(blocks);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Clements nulling chain                                              */
/* ------------------------------------------------------------------ */

/* One full anti-diagonal nulling chain over an (n, n) complex work matrix,
 * mutated in place; thetas/phis receive one entry per op.  This is the
 * native form of the "slim scalar chain" in mzi_mesh.clements_decompose:
 * the ops form one sequential dependency chain, so a C loop (instead of
 * n(n-1)/2 Python iterations of small-slice updates) is the entire win.
 *
 * is_left[i] != 0 selects a left (row-pair) op on rows (mode, mode+1) with
 * pivot column `pivot`; otherwise a right (column-pair) op on columns
 * (mode, mode+1) with pivot row `pivot`.  `tol` is the dark-cell clamp
 * (NULL_TOLERANCE): pivot magnitudes at or below it are treated as zero so
 * dark subspaces get parked deterministically, matching the numpy solvers.
 */
int cchain_clements_chain(double *work, long n,
                          const unsigned char *is_left,
                          const long *op_modes, const long *op_pivots,
                          long n_ops, double *thetas, double *phis,
                          double tol)
{
    long i, j;
    for (i = 0; i < n_ops; ++i) {
        long mode = op_modes[i], pivot = op_pivots[i];
        double ar, ai, br, bi, a_abs, b_abs, theta, phi;
        if (is_left[i]) {
            const double *pa = work + 2 * (mode * n + pivot);
            const double *pb = work + 2 * ((mode + 1) * n + pivot);
            ar = pa[0]; ai = pa[1]; br = pb[0]; bi = pb[1];
        } else {
            const double *pa = work + 2 * (pivot * n + mode);
            ar = pa[0]; ai = pa[1]; br = pa[2]; bi = pa[3];
        }
        a_abs = hypot(ar, ai);
        if (a_abs <= tol) a_abs = 0.0;
        b_abs = hypot(br, bi);
        if (b_abs <= tol) b_abs = 0.0;
        if (is_left[i]) {
            double ct, st, cp, sp;
            double t00r, t00i, t01r, t01i, t10r, t10i, t11r, t11i;
            theta = 2.0 * atan2(a_abs, b_abs);
            /* phi = arg(b * conj(a)) */
            phi = (a_abs > 0.0 && b_abs > 0.0)
                ? atan2(bi * ar - br * ai, br * ar + bi * ai) : 0.0;
            ct = cos(theta); st = sin(theta);
            cp = cos(phi); sp = sin(phi);
            /* t00 = 0.5(e^{it}-1)e^{ip}; t01 = 0.5i(e^{it}+1);
             * t10 = t01 e^{ip};          t11 = 0.5(1-e^{it}) */
            t00r = 0.5 * ((ct - 1.0) * cp - st * sp);
            t00i = 0.5 * ((ct - 1.0) * sp + st * cp);
            t01r = -0.5 * st; t01i = 0.5 * (ct + 1.0);
            t10r = t01r * cp - t01i * sp;
            t10i = t01r * sp + t01i * cp;
            t11r = 0.5 * (1.0 - ct); t11i = -0.5 * st;
            {
                double *ru = work + 2 * mode * n;
                double *rl = work + 2 * (mode + 1) * n;
                for (j = 0; j < n; ++j) {
                    double ur = ru[2 * j], ui = ru[2 * j + 1];
                    double lr = rl[2 * j], li = rl[2 * j + 1];
                    ru[2 * j] = t00r * ur - t00i * ui + t01r * lr - t01i * li;
                    ru[2 * j + 1] = t00r * ui + t00i * ur + t01r * li + t01i * lr;
                    rl[2 * j] = t10r * ur - t10i * ui + t11r * lr - t11i * li;
                    rl[2 * j + 1] = t10r * ui + t10i * ur + t11r * li + t11i * lr;
                }
            }
        } else {
            double ct, st, cp, sp, plr, pli;
            double h00r, h00i, h01r, h01i, h10r, h10i, h11r, h11i;
            theta = 2.0 * atan2(b_abs, a_abs);
            /* phi = -arg(-b * conj(a)) */
            phi = (a_abs > 0.0 && b_abs > 0.0)
                ? -atan2(-(bi * ar - br * ai), -(br * ar + bi * ai)) : 0.0;
            /* e_theta = e^{-it}, e_phi = e^{-ip}: conj-transposed block */
            ct = cos(theta); st = -sin(theta);
            cp = cos(phi); sp = -sin(phi);
            /* h00 = 0.5(e_t-1)e_p; h01 = -0.5i(e_t+1)e_p;
             * h10 = -0.5i(e_t+1);  h11 = 0.5(1-e_t) */
            h00r = 0.5 * ((ct - 1.0) * cp - st * sp);
            h00i = 0.5 * ((ct - 1.0) * sp + st * cp);
            plr = 0.5 * st; pli = -0.5 * (ct + 1.0);  /* -0.5i(e_t+1) */
            h10r = plr; h10i = pli;
            h01r = plr * cp - pli * sp;
            h01i = plr * sp + pli * cp;
            h11r = 0.5 * (1.0 - ct); h11i = -0.5 * st;
            {
                double *cu = work + 2 * mode;
                long stride = 2 * n;
                for (j = 0; j < n; ++j) {
                    double *p = cu + j * stride;
                    double ur = p[0], ui = p[1], lr = p[2], li = p[3];
                    p[0] = h00r * ur - h00i * ui + h10r * lr - h10i * li;
                    p[1] = h00r * ui + h00i * ur + h10r * li + h10i * lr;
                    p[2] = h01r * ur - h01i * ui + h11r * lr - h11i * li;
                    p[3] = h01r * ui + h01i * ur + h11r * li + h11i * lr;
                }
            }
        }
        thetas[i] = theta;
        phis[i] = phi;
    }
    return 0;
}

/* Stacked form: `count` independent (n, n) matrices decomposed back to back.
 * The chains of different stack members are fully independent, so the stack
 * loop stays outer for cache locality (one matrix resident at a time).
 * thetas/phis are (count, n_ops) row-major.
 */
int cchain_clements_chain_stack(double *work, long count, long n,
                                const unsigned char *is_left,
                                const long *op_modes, const long *op_pivots,
                                long n_ops, double *thetas, double *phis,
                                double tol)
{
    long s;
    for (s = 0; s < count; ++s) {
        int rc = cchain_clements_chain(work + 2 * s * n * n, n, is_left,
                                       op_modes, op_pivots, n_ops,
                                       thetas + s * n_ops, phis + s * n_ops,
                                       tol);
        if (rc != 0)
            return rc;
    }
    return 0;
}
