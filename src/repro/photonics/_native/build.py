"""Build and load the native ``cchain`` kernel.

The kernel ships as plain C source (:file:`cchain.c`) and is compiled at most
once per (source, compiler) pair: the shared library lands in a cache
directory keyed by the SHA-256 of the source text plus the compiler's
identification string, so upgrading the compiler or editing the source
triggers exactly one rebuild and CI can cache the artifact by hashing the
source file.

Loading prefers :mod:`cffi` (releases the GIL around kernel calls, stable
ABI-mode ``dlopen``) and falls back to :mod:`ctypes` when cffi is absent.
Every failure mode -- no C compiler on PATH, a failed compile, a failed
``dlopen`` -- degrades to ``None`` with one logged message, after which the
pure-numpy paths carry the process exactly as before.

Environment knobs:

``REPRO_FORCE_REFERENCE``
    Truthy value disables the native kernel entirely (checked per call, so a
    test can flip it without reloading modules); the numpy reference paths
    run everywhere.  CI runs the full suite once in this mode.
``REPRO_NATIVE_CC``
    Compiler executable to use instead of ``$CC``/``cc``/``gcc``/``clang``.
    Pointing it at a nonexistent binary simulates a toolchain-less host.
``REPRO_NATIVE_CACHE``
    Cache directory for compiled libraries (default
    ``~/.cache/repro/native``).
"""

from __future__ import annotations

import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

logger = logging.getLogger(__name__)

SOURCE_PATH = Path(__file__).with_name("cchain.c")

#: C declarations of the kernel entry points (shared by cffi and ctypes).
CDEF = """
int cchain_propagate(double *work, long batch, long dim,
                     const long *modes, long n_mzi,
                     const double *thetas, const double *phis,
                     const double *output_phases, double transmission);
int cchain_clements_chain(double *work, long n,
                          const unsigned char *is_left,
                          const long *op_modes, const long *op_pivots,
                          long n_ops, double *thetas, double *phis,
                          double tol);
int cchain_clements_chain_stack(double *work, long count, long n,
                                const unsigned char *is_left,
                                const long *op_modes, const long *op_pivots,
                                long n_ops, double *thetas, double *phis,
                                double tol);
"""

_CFLAGS = ("-O2", "-shared", "-fPIC", "-fno-math-errno")


def _env_truthy(name: str) -> bool:
    value = os.environ.get(name, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def force_reference_enabled() -> bool:
    """Whether ``REPRO_FORCE_REFERENCE`` pins execution to the numpy paths."""
    return _env_truthy("REPRO_FORCE_REFERENCE")


def _find_compiler() -> str:
    """Absolute path of the C compiler to use; raises when none exists."""
    override = os.environ.get("REPRO_NATIVE_CC") or os.environ.get("CC")
    candidates = [override] if override else ["cc", "gcc", "clang"]
    for candidate in candidates:
        path = shutil.which(candidate)
        if path:
            return path
    raise RuntimeError(f"no C compiler found (tried {', '.join(candidates)})")


def _compiler_identity(compiler: str) -> str:
    """A string that changes when the compiler changes (version line or stat)."""
    try:
        proc = subprocess.run([compiler, "--version"], capture_output=True,
                              text=True, timeout=30)
        first = (proc.stdout or proc.stderr).splitlines()
        if first:
            return first[0].strip()
    except (OSError, subprocess.SubprocessError):
        pass
    try:
        stat = os.stat(compiler)
        return f"{compiler}:{stat.st_size}:{stat.st_mtime_ns}"
    except OSError:
        return compiler


def cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro/native").expanduser()


def _cache_key(source: bytes, compiler_identity: str) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(b"\x00")
    digest.update(compiler_identity.encode("utf-8", "replace"))
    digest.update(b"\x00")
    digest.update(" ".join(_CFLAGS).encode())
    return digest.hexdigest()[:16]


def _compile(compiler: str, library_path: Path) -> None:
    """Compile the source to ``library_path`` atomically (tmp + ``os.replace``)."""
    library_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=library_path.name + ".",
                                    suffix=".tmp", dir=library_path.parent)
    os.close(fd)
    try:
        command = [compiler, *_CFLAGS, "-o", tmp_name, str(SOURCE_PATH), "-lm"]
        proc = subprocess.run(command, capture_output=True, text=True,
                              timeout=300)
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise RuntimeError(
                f"C compile failed ({' '.join(command)}): {detail[:500]}")
        os.replace(tmp_name, library_path)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


class ChainKernel:
    """Loaded native kernel with numpy-aware entry points.

    All methods operate **in place** on the caller's buffers; the caller is
    responsible for passing C-contiguous arrays of the documented dtypes
    (asserted cheaply here).  Calls release the GIL (both cffi ``dlopen``
    bindings and ctypes foreign calls do), so sharded workers and threaded
    plan executors overlap native time freely.
    """

    def __init__(self, lib, binding: str, library_path: Path,
                 compiler: str, key: str):
        self._lib = lib
        self.binding = binding
        self.library_path = library_path
        self.compiler = compiler
        self.key = key

    @staticmethod
    def _ptr(array: np.ndarray) -> int:
        return array.ctypes.data

    def _check(self, array: np.ndarray, dtype, name: str) -> np.ndarray:
        if array.dtype != dtype or not array.flags.c_contiguous:
            raise ValueError(f"{name} must be C-contiguous {dtype}")
        return array

    def propagate(self, work: np.ndarray, modes: np.ndarray,
                  thetas: np.ndarray, phis: np.ndarray,
                  output_phases: np.ndarray, transmission: float) -> None:
        """Run the MZI chain + output phases in place on ``(batch, dim)`` work."""
        self._check(work, np.complex128, "work")
        self._check(modes, np.intp, "modes")
        self._check(thetas, np.float64, "thetas")
        self._check(phis, np.float64, "phis")
        self._check(output_phases, np.complex128, "output_phases")
        batch, dim = work.shape
        rc = self._lib.cchain_propagate(
            self._cast_d(work), batch, dim, self._cast_l(modes), modes.size,
            self._cast_d(thetas), self._cast_d(phis),
            self._cast_d(output_phases), float(transmission))
        if rc != 0:
            raise MemoryError("cchain_propagate scratch allocation failed")

    def clements_chain(self, work: np.ndarray, is_left: np.ndarray,
                       op_modes: np.ndarray, op_pivots: np.ndarray,
                       tol: float):
        """Full Clements nulling chain on one ``(n, n)`` matrix, in place."""
        self._check(work, np.complex128, "work")
        self._check(is_left, np.uint8, "is_left")
        self._check(op_modes, np.intp, "op_modes")
        self._check(op_pivots, np.intp, "op_pivots")
        n = work.shape[-1]
        n_ops = op_modes.size
        thetas = np.empty(n_ops, dtype=float)
        phis = np.empty(n_ops, dtype=float)
        self._lib.cchain_clements_chain(
            self._cast_d(work), n, self._cast_u8(is_left),
            self._cast_l(op_modes), self._cast_l(op_pivots), n_ops,
            self._cast_d(thetas), self._cast_d(phis), float(tol))
        return thetas, phis

    def clements_chain_stack(self, work: np.ndarray, is_left: np.ndarray,
                             op_modes: np.ndarray, op_pivots: np.ndarray,
                             tol: float):
        """Clements nulling chains on a ``(count, n, n)`` stack, in place."""
        self._check(work, np.complex128, "work")
        self._check(is_left, np.uint8, "is_left")
        self._check(op_modes, np.intp, "op_modes")
        self._check(op_pivots, np.intp, "op_pivots")
        count, n = work.shape[0], work.shape[-1]
        n_ops = op_modes.size
        thetas = np.empty((count, n_ops), dtype=float)
        phis = np.empty((count, n_ops), dtype=float)
        self._lib.cchain_clements_chain_stack(
            self._cast_d(work), count, n, self._cast_u8(is_left),
            self._cast_l(op_modes), self._cast_l(op_pivots), n_ops,
            self._cast_d(thetas), self._cast_d(phis), float(tol))
        return thetas, phis

    # the cast hooks are replaced per binding in the loader below
    def _cast_d(self, array: np.ndarray):
        raise NotImplementedError

    def _cast_l(self, array: np.ndarray):
        raise NotImplementedError

    def _cast_u8(self, array: np.ndarray):
        raise NotImplementedError


class _CffiKernel(ChainKernel):
    def __init__(self, ffi, lib, library_path, compiler, key):
        super().__init__(lib, "cffi", library_path, compiler, key)
        self._ffi = ffi

    def _cast_d(self, array):
        return self._ffi.cast("double *", array.ctypes.data)

    def _cast_l(self, array):
        return self._ffi.cast("long *", array.ctypes.data)

    def _cast_u8(self, array):
        return self._ffi.cast("unsigned char *", array.ctypes.data)


class _CtypesKernel(ChainKernel):
    def _cast_d(self, array):
        return array.ctypes.data

    _cast_l = _cast_d
    _cast_u8 = _cast_d


def _load_library(library_path: Path, compiler: str, key: str) -> ChainKernel:
    try:
        import cffi

        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(str(library_path))
        return _CffiKernel(ffi, lib, library_path, compiler, key)
    except ImportError:
        pass
    import ctypes

    lib = ctypes.CDLL(str(library_path))
    for name in ("cchain_propagate", "cchain_clements_chain",
                 "cchain_clements_chain_stack"):
        fn = getattr(lib, name)
        fn.restype = ctypes.c_int
    ptr = ctypes.c_void_p
    lib.cchain_propagate.argtypes = [ptr, ctypes.c_long, ctypes.c_long, ptr,
                                     ctypes.c_long, ptr, ptr, ptr,
                                     ctypes.c_double]
    chain_args = [ptr, ctypes.c_long, ptr, ptr, ptr, ctypes.c_long, ptr, ptr,
                  ctypes.c_double]
    lib.cchain_clements_chain.argtypes = chain_args
    lib.cchain_clements_chain_stack.argtypes = (
        chain_args[:1] + [ctypes.c_long] + chain_args[1:])
    return _CtypesKernel(lib, "ctypes", library_path, compiler, key)


def build_and_load() -> ChainKernel:
    """Compile (if not cached) and load the kernel.  Raises on any failure."""
    compiler = _find_compiler()
    source = SOURCE_PATH.read_bytes()
    key = _cache_key(source, _compiler_identity(compiler))
    library_path = cache_dir() / f"cchain-{key}" / "libcchain.so"
    if not library_path.exists():
        _compile(compiler, library_path)
        logger.info("compiled native cchain kernel with %s -> %s",
                    compiler, library_path)
    return _load_library(library_path, compiler, key)


# --------------------------------------------------------------------------- #
# process-wide singleton
# --------------------------------------------------------------------------- #
_LOCK = threading.Lock()
_KERNEL: Optional[ChainKernel] = None
_ATTEMPTED = False
_LOAD_ERROR: Optional[str] = None


def kernel() -> Optional[ChainKernel]:
    """The loaded native kernel, or None (unavailable or force-disabled).

    The build/load is attempted once per process and the outcome cached; the
    ``REPRO_FORCE_REFERENCE`` gate is re-read on every call so tests and the
    reference CI leg can flip it without reloading modules.
    """
    if force_reference_enabled():
        return None
    global _KERNEL, _ATTEMPTED, _LOAD_ERROR
    if not _ATTEMPTED:
        with _LOCK:
            if not _ATTEMPTED:
                try:
                    _KERNEL = build_and_load()
                except Exception as exc:  # noqa: BLE001 - any failure => numpy
                    _KERNEL = None
                    _LOAD_ERROR = f"{type(exc).__name__}: {exc}"
                    logger.info(
                        "native cchain kernel unavailable (%s); "
                        "falling back to the pure-numpy reference paths",
                        _LOAD_ERROR)
                _ATTEMPTED = True
    return _KERNEL


def load_error() -> Optional[str]:
    """The failure message of the last load attempt (None if loaded or unattempted)."""
    return _LOAD_ERROR


def reset() -> None:
    """Forget the cached load outcome (tests re-probe under new env vars)."""
    global _KERNEL, _ATTEMPTED, _LOAD_ERROR
    with _LOCK:
        _KERNEL = None
        _ATTEMPTED = False
        _LOAD_ERROR = None


def build_info() -> dict:
    """Diagnostics for the ``repro backends`` CLI."""
    loaded = kernel()
    info = {
        "available": loaded is not None,
        "forced_reference": force_reference_enabled(),
        "source": str(SOURCE_PATH),
        "cache_dir": str(cache_dir()),
        "load_error": _LOAD_ERROR,
    }
    if loaded is not None:
        info.update(binding=loaded.binding, compiler=loaded.compiler,
                    library=str(loaded.library_path), key=loaded.key)
    return info
