"""Decomposition of arbitrary unitaries into meshes of physical MZIs.

Two mesh topologies are provided:

* **Reck** (triangular) -- the scheme of Reck et al. 1994 used by the original
  coherent ONN [10]: elements are nulled row by row with column operations,
  yielding ``U = D * M_K * ... * M_1`` where each ``M_k`` is a physical MZI
  (Eq. 1) acting on two adjacent modes and ``D`` is a column of output phase
  shifters.
* **Clements** (rectangular) -- the scheme of Clements et al. 2016: elements
  are nulled alternately with column and row operations; the leftover diagonal
  is commuted through the row operations so the final form is identical
  (``U = D * product of MZIs``) but the mesh has half the optical depth.

Both use exactly ``n (n - 1) / 2`` MZIs for an ``n x n`` unitary, which is the
count the paper's area model builds on.

Phases are stored structure-of-arrays (``modes``, ``thetas``, ``phis``) and
propagation runs through the compiled column engine of
:mod:`repro.photonics.engine`; :class:`MZISetting` remains as a per-MZI view
for code that walks the mesh device by device.

The decompositions themselves are *vectorized*: nulling operations are packed
into wavefronts of disjoint mode pairs (the same greedy schedule the engine
uses for propagation) and every wavefront solves its MZI parameters and
applies its two-column/two-row updates as one array operation.  The original
scalar nulling loops are kept as ``reck_decompose_reference`` /
``clements_decompose_reference`` -- executable specifications the test-suite
pins the vectorized paths against to 1e-10.

On top of the per-matrix paths, :func:`reck_decompose_stack` /
:func:`clements_decompose_stack` decompose a whole *stack* of same-size
unitaries at once, vectorizing every nulling operation over a leading matrix
axis.  The compiler uses this to decompose all same-size SVD factors of a
model (e.g. every conv-kernel matrix of a ResNet stage) in one batched pass;
both stack paths are parity-pinned against the per-matrix paths to 1e-10.

Execution policy is explicit: each :class:`MeshDecomposition` carries a
``backend`` ("auto" / "dense" / "column" / "cchain") and an optional per-mesh
``dense_dimension_limit``, threaded in by the compiler instead of consulting
mutable module globals (``engine.DENSE_DIMENSION_LIMIT`` remains only as the
default when no per-mesh limit is set).  ``"cchain"`` runs the rotation chain
through the compiled C kernel of :mod:`repro.photonics._native`; when the
kernel is loaded, the sequential Clements nulling chains of
:func:`clements_decompose` / :func:`clements_decompose_stack` also execute
natively (one C call per matrix or stack), parity-pinned to the numpy chain.
"""

from __future__ import annotations

import cmath
import logging
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

logger = logging.getLogger(__name__)

from repro.photonics import engine
from repro.photonics.components import mzi_transfer


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Check whether ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def random_unitary(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Draw a Haar-random ``n x n`` unitary matrix (QR of a complex Ginibre matrix).

    Pass a seeded generator for reproducible draws; with ``rng=None`` a fresh
    ``default_rng()`` is used, so repeated calls give independent unitaries.
    """
    if n <= 0:
        raise ValueError("dimension must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    ginibre = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    q, r = np.linalg.qr(ginibre)
    # fix the phases so the distribution is Haar
    phases = np.diag(r).copy()
    phases = phases / np.abs(phases)
    return q * phases[None, :]


@dataclass
class MZISetting:
    """Phase settings of one MZI in a mesh.

    Attributes
    ----------
    mode:
        Index of the upper of the two adjacent modes the MZI couples.
    theta:
        Internal phase shift (splitting control).
    phi:
        Input phase shift (relative-phase control).
    """

    mode: int
    theta: float
    phi: float

    def transfer_matrix(self) -> np.ndarray:
        return mzi_transfer(self.theta, self.phi)


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


def _frozen(array, dtype) -> np.ndarray:
    """Coerce to a read-only array, copying only when the input is writable.

    Already-frozen arrays (e.g. shared between meshes by ``with_phases``) are
    aliased rather than copied, so topologies and unchanged phase planes are
    shared across noise/quantization copies.
    """
    array = np.asarray(array, dtype=dtype)
    if array.flags.writeable:
        array = _readonly(array.copy())
    return array


_NATIVE_FALLBACK_LOGGED = False


def _log_native_fallback() -> None:
    """Log (once per process) that ``"cchain"`` fell back to the column path."""
    global _NATIVE_FALLBACK_LOGGED
    if not _NATIVE_FALLBACK_LOGGED:
        _NATIVE_FALLBACK_LOGGED = True
        from repro.photonics import _native

        reason = _native.load_error() or (
            "disabled by REPRO_FORCE_REFERENCE"
            if _native.force_reference_enabled() else "kernel not loaded")
        logger.warning("mesh backend 'cchain' requested but the native kernel "
                       "is unavailable (%s); executing the numpy column "
                       "program instead", reason)


class MeshDecomposition:
    """A unitary expressed as output phases applied after a chain of MZIs.

    ``reconstruct()`` returns ``diag(output_phases) @ M_last @ ... @ M_first``
    where the MZI at index 0 is applied first to an input vector.

    Phases are stored as structure-of-arrays: ``modes`` (int), ``thetas`` and
    ``phis`` (float) hold one entry per MZI in application order.  ``thetas``,
    ``phis`` and ``output_phases`` may carry a leading *trials* axis so an
    ensemble of phase realizations (e.g. Monte-Carlo noise draws) shares one
    topology and propagates in a single vectorized pass.

    The arrays are exposed read-only; mutate phases through
    :meth:`update_phases` (in place, invalidates the cached dense transfer
    matrix) or :meth:`with_phases` (returns a new mesh sharing the topology).

    ``backend`` selects how :meth:`apply` executes: ``"auto"`` (dense matmul
    below the dense-dimension limit, the fastest available chain path
    otherwise), ``"dense"`` (always the cached dense transfer matrix),
    ``"column"`` (always the compiled numpy column program -- the
    always-available reference) or ``"cchain"`` (the native C chain kernel,
    with a logged fallback to the column program when no kernel could be
    built).  ``dense_dimension_limit`` overrides the module-global default
    crossover for this mesh; both are normally set by the compiler from
    :class:`~repro.core.compile.CompileOptions`.
    """

    BACKENDS = ("auto", "dense", "column", "cchain")

    def __init__(self, dimension: int,
                 settings: Optional[Sequence[MZISetting]] = None,
                 output_phases: Optional[np.ndarray] = None,
                 method: str = "reck",
                 modes: Optional[np.ndarray] = None,
                 thetas: Optional[np.ndarray] = None,
                 phis: Optional[np.ndarray] = None,
                 backend: str = "auto",
                 dense_dimension_limit: Optional[int] = None):
        self.dimension = int(dimension)
        self.method = method
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown mesh backend {backend!r}; choose from {self.BACKENDS}")
        self.backend = backend
        self.dense_dimension_limit = (None if dense_dimension_limit is None
                                      else int(dense_dimension_limit))
        if settings is not None:
            if modes is not None or thetas is not None or phis is not None:
                raise ValueError("pass either settings or modes/thetas/phis, not both")
            modes = np.array([s.mode for s in settings], dtype=np.intp)
            thetas = np.array([s.theta for s in settings], dtype=float)
            phis = np.array([s.phi for s in settings], dtype=float)
        self._modes = _frozen([] if modes is None else modes, np.intp)
        if self._modes.ndim != 1:
            raise ValueError("modes must be a 1-D array of upper mode indices")
        self._thetas = _frozen([] if thetas is None else thetas, float)
        self._phis = _frozen([] if phis is None else phis, float)
        if self._thetas.shape[-1:] != self._modes.shape or self._phis.shape[-1:] != self._modes.shape:
            raise ValueError("thetas/phis must have one trailing entry per MZI")
        if output_phases is None:
            output_phases = np.ones(self.dimension, dtype=complex)
        self._output_phases = _frozen(output_phases, complex)
        if self._output_phases.shape[-1] != self.dimension:
            raise ValueError(f"output_phases must have trailing length {self.dimension}")
        # leading trials axes of the three phase arrays must broadcast together
        self._trial_shape = np.broadcast_shapes(
            self._thetas.shape[:-1], self._phis.shape[:-1], self._output_phases.shape[:-1])
        self._program: Optional[engine.MeshProgram] = None
        self._dense_cache: Dict[float, np.ndarray] = {}
        self._settings_cache: Optional[List[MZISetting]] = None
        self._phase_version = 0

    # ------------------------------------------------------------------ #
    # structure-of-arrays access
    # ------------------------------------------------------------------ #
    @property
    def modes(self) -> np.ndarray:
        """Upper mode index of each MZI, in application order (read-only)."""
        return self._modes

    @property
    def thetas(self) -> np.ndarray:
        """Internal phases, shape ``(*trials, n_mzi)`` (read-only)."""
        return self._thetas

    @property
    def phis(self) -> np.ndarray:
        """Input phases, shape ``(*trials, n_mzi)`` (read-only)."""
        return self._phis

    @property
    def output_phases(self) -> np.ndarray:
        """Output phase screen, shape ``(*trials, dimension)`` (read-only)."""
        return self._output_phases

    @property
    def trial_shape(self) -> Tuple[int, ...]:
        """Leading trials axes shared by the phase arrays (``()`` if none)."""
        return self._trial_shape

    @property
    def is_batched(self) -> bool:
        """True when the phases carry a leading trials axis."""
        return bool(self._trial_shape)

    @property
    def phase_version(self) -> int:
        """Counter bumped by every :meth:`update_phases` call.

        Callers that bake this mesh's phases into derived state (the plan
        runtime's eager dense matrices) record the version at bake time and
        rebuild when it moves.
        """
        return self._phase_version

    @property
    def settings(self) -> List[MZISetting]:
        """Per-MZI view of the phase arrays (unbatched meshes only)."""
        if self.is_batched:
            raise ValueError("a trials-batched mesh has no single per-MZI settings; "
                             "index the thetas/phis arrays instead")
        if self._settings_cache is None:
            self._settings_cache = [
                MZISetting(mode=int(m), theta=float(t), phi=float(p))
                for m, t, p in zip(self._modes, self._thetas, self._phis)
            ]
        return self._settings_cache

    # ------------------------------------------------------------------ #
    # counts
    # ------------------------------------------------------------------ #
    @property
    def mzi_count(self) -> int:
        return int(self._modes.size)

    @property
    def phase_shifter_count(self) -> int:
        """Tunable phase shifters: two per MZI plus the output phase screen."""
        return 2 * self.mzi_count + self.dimension

    @property
    def optical_depth(self) -> int:
        """Columns of simultaneously applied MZIs after compilation."""
        return self.compiled().depth

    # ------------------------------------------------------------------ #
    # compiled engine plumbing
    # ------------------------------------------------------------------ #
    def compiled(self) -> engine.MeshProgram:
        """Column schedule of this mesh (cached; depends only on the topology)."""
        if self._program is None:
            self._program = engine.column_schedule(self._modes, self.dimension)
        return self._program

    def _dense_matrix(self, insertion_loss_db: float) -> np.ndarray:
        key = float(insertion_loss_db)
        matrix = self._dense_cache.get(key)
        if matrix is None:
            matrix = engine.dense_transfer(self.compiled(), self._thetas, self._phis,
                                           self._output_phases, insertion_loss_db=key)
            self._dense_cache[key] = matrix
        return matrix

    def update_phases(self, thetas: Optional[np.ndarray] = None,
                      phis: Optional[np.ndarray] = None,
                      output_phases: Optional[np.ndarray] = None) -> None:
        """Replace phase arrays in place and invalidate the cached transfer matrix."""
        if thetas is not None:
            thetas = _frozen(thetas, float)
            if thetas.shape[-1:] != self._modes.shape:
                raise ValueError("thetas must have one trailing entry per MZI")
            self._thetas = thetas
        if phis is not None:
            phis = _frozen(phis, float)
            if phis.shape[-1:] != self._modes.shape:
                raise ValueError("phis must have one trailing entry per MZI")
            self._phis = phis
        if output_phases is not None:
            output_phases = _frozen(output_phases, complex)
            if output_phases.shape[-1] != self.dimension:
                raise ValueError(f"output_phases must have trailing length {self.dimension}")
            self._output_phases = output_phases
        self._trial_shape = np.broadcast_shapes(
            self._thetas.shape[:-1], self._phis.shape[:-1], self._output_phases.shape[:-1])
        self._dense_cache.clear()
        self._settings_cache = None
        self._phase_version += 1

    def with_phases(self, thetas: Optional[np.ndarray] = None,
                    phis: Optional[np.ndarray] = None,
                    output_phases: Optional[np.ndarray] = None) -> "MeshDecomposition":
        """A new mesh sharing this topology, with some phase arrays replaced."""
        mesh = MeshDecomposition(
            dimension=self.dimension, method=self.method, modes=self._modes,
            thetas=self._thetas if thetas is None else thetas,
            phis=self._phis if phis is None else phis,
            output_phases=self._output_phases if output_phases is None else output_phases,
            backend=self.backend, dense_dimension_limit=self.dense_dimension_limit,
        )
        mesh._program = self._program  # the column schedule depends only on modes
        return mesh

    # ------------------------------------------------------------------ #
    # dense reconstruction and propagation
    # ------------------------------------------------------------------ #
    def embed(self, setting: MZISetting) -> np.ndarray:
        """Embed a single MZI into the full ``dimension x dimension`` space."""
        full = np.eye(self.dimension, dtype=complex)
        block = setting.transfer_matrix()
        m = setting.mode
        full[m:m + 2, m:m + 2] = block
        return full

    def reconstruct(self) -> np.ndarray:
        """Multiply out the mesh into a dense unitary matrix.

        Returns ``(dimension, dimension)``, or ``(*trials, dimension,
        dimension)`` for a trials-batched mesh.
        """
        return engine.dense_transfer(self.compiled(), self._thetas, self._phis,
                                     self._output_phases)

    def uses_dense_path(self) -> bool:
        """Whether :meth:`apply` executes through the cached dense matrix.

        Part of the single backend-policy source (see :meth:`resolve_backend`
        for the full resolution): ``"dense"`` forces the dense path,
        ``"column"``/``"cchain"`` never take it; ``"auto"`` picks the dense
        matmul for unbatched meshes up to the dense-dimension limit (per-mesh
        limit if set, module default otherwise).  The plan compiler consults
        this to decide which stages it may fold into eager dense matrices.
        """
        if self.backend == "dense":
            return True
        if self.backend in ("column", "cchain"):
            return False
        limit = (engine.DENSE_DIMENSION_LIMIT if self.dense_dimension_limit is None
                 else self.dense_dimension_limit)
        return not self.is_batched and self.dimension <= limit

    def resolve_backend(self) -> str:
        """The execution path :meth:`apply` takes right now.

        Returns ``"dense"``, ``"cchain"`` or ``"column"`` -- the single
        source of the backend policy.  ``"dense"``/``"column"`` force their
        path.  ``"cchain"`` resolves to the native kernel when it is loaded
        and the mesh is unbatched (trials ensembles stay on the vectorized
        numpy path), with a once-logged fallback to the column program
        otherwise.  ``"auto"`` takes the dense matmul below the
        dense-dimension limit, then the native kernel when available, then
        the column program -- the ordering the measured per-backend
        crossovers (:func:`repro.photonics.engine.measure_dense_crossover`)
        justify on every machine calibrated so far.
        """
        if self.backend == "dense":
            return "dense"
        if self.backend == "column":
            return "column"
        native = not self.is_batched and engine.native_kernel() is not None
        if self.backend == "cchain":
            if native:
                return "cchain"
            if not self.is_batched:
                _log_native_fallback()
            return "column"
        if self.uses_dense_path():
            return "dense"
        return "cchain" if native else "column"

    def apply(self, vector: np.ndarray, insertion_loss_db: float = 0.0,
              out: Optional[np.ndarray] = None) -> np.ndarray:
        """Propagate complex input amplitudes through the mesh (batch-aware).

        ``vector`` may be ``(dimension,)``, ``(batch, dimension)`` or carry
        leading trials axes ``(*trials, batch, dimension)``.  For a
        trials-batched mesh the result gains the mesh's trials axes: trial
        ``t`` of the input (broadcast if the input has none) propagates
        through phase realization ``t``.

        Parameters
        ----------
        insertion_loss_db:
            Optional per-MZI insertion loss in dB (power).  Each MZI a signal
            traverses multiplies its amplitude by ``10**(-IL/20)``, modelling
            waveguide/coupler losses; 0 dB (default) keeps the mesh lossless.
        out:
            Optional preallocated complex result buffer.  The column path
            propagates in it (it may alias the input -- the engine copies the
            states in first); the dense path only uses it when it does *not*
            alias the input (matmul forbids overlap).  An incompatible or
            unusable buffer is ignored.
        """
        if insertion_loss_db < 0:
            raise ValueError("insertion_loss_db must be non-negative")
        vector = np.asarray(vector, dtype=complex)
        single = vector.ndim == 1
        states = vector[None, :] if single else vector
        if states.shape[-1] != self.dimension:
            raise ValueError(f"expected vectors of length {self.dimension}, got {states.shape[-1]}")
        resolved = self.resolve_backend()
        if resolved == "dense":
            dense = self._dense_matrix(insertion_loss_db)
            matmul_out = (out if out is not None and out.shape == states.shape
                          and dense.ndim == 2 and out.dtype == np.complex128
                          and out.flags.writeable
                          and not np.may_share_memory(out, states) else None)
            # trials-batched dense matrices broadcast through matmul
            outputs = engine.apply_dense(states, dense, out=matmul_out)
        else:
            outputs = None
            if resolved == "cchain":
                outputs = engine.native_propagate(
                    self._modes, states, self._thetas, self._phis,
                    self._output_phases, insertion_loss_db=insertion_loss_db,
                    out=None if single else out)
            if outputs is None:
                outputs = engine.propagate(self.compiled(), states, self._thetas,
                                           self._phis, self._output_phases,
                                           insertion_loss_db=insertion_loss_db,
                                           out=None if single else out)
        return outputs[..., 0, :] if single else outputs

    def total_phase_power_mw(self) -> float:
        """Static power of every tunable phase shifter in the mesh.

        Returns a float, or an array over the trials axes for a batched mesh.
        """
        from repro.photonics.components import phase_shifter_power_mw

        angles = np.concatenate([
            np.broadcast_to(self._thetas, self._trial_shape + self._thetas.shape[-1:]),
            np.broadcast_to(self._phis, self._trial_shape + self._phis.shape[-1:]),
            np.broadcast_to(np.angle(self._output_phases),
                            self._trial_shape + (self.dimension,)),
        ], axis=-1)
        power = phase_shifter_power_mw(angles).sum(axis=-1)
        return float(power) if not self.is_batched else power


# --------------------------------------------------------------------------- #
# nulling parameter solvers
# --------------------------------------------------------------------------- #
#: pivot cells at or below this magnitude are treated as optically dark when
#: solving nulling parameters: the MZI is parked at a deterministic setting
#: instead of amplifying floating-point residue (the phase of a ~1e-17 cell)
#: into an arbitrary phase.  Without the clamp, phases inside dark subspaces
#: -- e.g. the null-space completion rows of an SVD factor of a non-square
#: weight -- are reproducible only up to accumulation noise, even though the
#: reconstruction is exact either way.
NULL_TOLERANCE = 1e-12


def _solve_right_null(a: complex, b: complex) -> Tuple[float, float]:
    """Parameters of the MZI ``M`` such that right-multiplying by ``M``-dagger
    on columns ``(m, m+1)`` nulls the entry whose current row values are
    ``a = U[row, m]`` and ``b = U[row, m+1]``."""
    a_abs = abs(a) if abs(a) > NULL_TOLERANCE else 0.0
    b_abs = abs(b) if abs(b) > NULL_TOLERANCE else 0.0
    theta = 2.0 * math.atan2(b_abs, a_abs)
    phi = -float(np.angle(-b * np.conj(a))) if a_abs > 0 and b_abs > 0 else 0.0
    return theta, phi


def _solve_left_null(a: complex, b: complex) -> Tuple[float, float]:
    """Parameters of the MZI ``M`` such that left-multiplying by ``M`` on rows
    ``(row-1, row)`` nulls the entry whose current column values are
    ``a = U[row-1, col]`` and ``b = U[row, col]``."""
    a_abs = abs(a) if abs(a) > NULL_TOLERANCE else 0.0
    b_abs = abs(b) if abs(b) > NULL_TOLERANCE else 0.0
    theta = 2.0 * math.atan2(a_abs, b_abs)
    phi = float(np.angle(b * np.conj(a))) if a_abs > 0 and b_abs > 0 else 0.0
    return theta, phi


def _embed_pair(n: int, mode: int, block: np.ndarray) -> np.ndarray:
    full = np.eye(n, dtype=complex)
    full[mode:mode + 2, mode:mode + 2] = block
    return full


def _refactor_phase_mzi(block: np.ndarray) -> Tuple[complex, complex, float, float]:
    """Factor a 2x2 unitary ``A`` as ``diag(d0, d1) @ M(theta, phi)``.

    Used to commute leftover row operations through the output phase screen in
    the Clements decomposition.
    """
    a00, a01 = block[0, 0], block[0, 1]
    theta = 2.0 * math.atan2(abs(a00), abs(a01))
    s, c = math.sin(theta / 2.0), math.cos(theta / 2.0)
    if s > 1e-12 and c > 1e-12:
        phi = float(np.angle(a00) - np.angle(a01))
    else:
        phi = 0.0
    mzi = mzi_transfer(theta, phi)
    d0 = block[0, 1] / mzi[0, 1] if abs(mzi[0, 1]) > 1e-12 else block[0, 0] / mzi[0, 0]
    d1 = block[1, 0] / mzi[1, 0] if abs(mzi[1, 0]) > 1e-12 else block[1, 1] / mzi[1, 1]
    return d0, d1, theta, phi


# --------------------------------------------------------------------------- #
# decompositions
# --------------------------------------------------------------------------- #
def _check_unitary_input(unitary: np.ndarray) -> np.ndarray:
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise ValueError("decomposition requires a square matrix")
    if not is_unitary(unitary, atol=1e-6):
        raise ValueError("matrix is not unitary; map general matrices via svd_decompose()")
    return unitary


def reck_decompose_reference(unitary: np.ndarray) -> MeshDecomposition:
    """Scalar (per-element) Reck nulling loop, kept as an executable spec.

    The seed algorithm -- one Python iteration and one full ``n x n`` matrix
    product per nulled element -- with the shared dark-cell clamp of the
    nulling solvers (see :data:`NULL_TOLERANCE`).  :func:`reck_decompose`
    must agree with it to 1e-10; use it only as a reference.
    """
    unitary = _check_unitary_input(unitary)
    n = unitary.shape[0]
    work = unitary.copy()
    settings: List[MZISetting] = []
    for row in range(n - 1, 0, -1):
        for m in range(0, row):
            a, b = work[row, m], work[row, m + 1]
            theta, phi = _solve_right_null(a, b)
            mzi = mzi_transfer(theta, phi)
            work = work @ _embed_pair(n, m, mzi.conj().T)
            settings.append(MZISetting(mode=m, theta=theta, phi=phi))
    output_phases = np.diag(work).copy()
    return MeshDecomposition(dimension=n, settings=settings,
                             output_phases=output_phases, method="reck")


def clements_decompose_reference(unitary: np.ndarray) -> MeshDecomposition:
    """Scalar (per-element) Clements nulling loop, kept as an executable spec.

    The seed algorithm with the shared dark-cell clamp of the nulling solvers
    (see :data:`NULL_TOLERANCE`); :func:`clements_decompose` must agree with
    it to 1e-10.  Use it only as a reference.
    """
    unitary = _check_unitary_input(unitary)
    n = unitary.shape[0]
    work = unitary.copy()
    right_settings: List[MZISetting] = []   # recorded in application order
    left_settings: List[MZISetting] = []    # recorded in application order

    for i in range(n - 1):
        if i % 2 == 0:
            # null along the anti-diagonal with column (right) operations
            for j in range(i + 1):
                row, col = n - 1 - j, i - j
                a, b = work[row, col], work[row, col + 1]
                theta, phi = _solve_right_null(a, b)
                mzi = mzi_transfer(theta, phi)
                work = work @ _embed_pair(n, col, mzi.conj().T)
                right_settings.append(MZISetting(mode=col, theta=theta, phi=phi))
        else:
            # null along the anti-diagonal with row (left) operations
            for j in range(i + 1):
                row, col = n - 1 - i + j, j
                a, b = work[row - 1, col], work[row, col]
                theta, phi = _solve_left_null(a, b)
                mzi = mzi_transfer(theta, phi)
                work = _embed_pair(n, row - 1, mzi) @ work
                left_settings.append(MZISetting(mode=row - 1, theta=theta, phi=phi))

    diagonal = np.diag(work).copy()

    # U = L_1^{-1} ... L_q^{-1} D M_p ... M_1  with L/M physical MZIs.  Commute
    # each L_k^{-1} through the diagonal so the final expression is
    # D' * (physical MZI chain).
    pushed: List[MZISetting] = []
    for setting in reversed(left_settings):
        m = setting.mode
        inverse_block = setting.transfer_matrix().conj().T
        block = inverse_block @ np.diag(diagonal[m:m + 2])
        d0, d1, theta, phi = _refactor_phase_mzi(block)
        diagonal[m] = d0
        diagonal[m + 1] = d1
        pushed.insert(0, MZISetting(mode=m, theta=theta, phi=phi))

    # Application order: right-op MZIs first (rightmost in the product), then
    # the pushed left-op MZIs.
    settings = list(right_settings) + list(reversed(pushed))
    return MeshDecomposition(dimension=n, settings=settings,
                             output_phases=diagonal, method="clements")


# --------------------------------------------------------------------------- #
# vectorized decompositions
# --------------------------------------------------------------------------- #
def _solve_right_null_vec(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_solve_right_null` over arrays of (a, b) pairs."""
    a_abs = np.abs(a)
    b_abs = np.abs(b)
    a_abs = np.where(a_abs > NULL_TOLERANCE, a_abs, 0.0)
    b_abs = np.where(b_abs > NULL_TOLERANCE, b_abs, 0.0)
    theta = 2.0 * np.arctan2(b_abs, a_abs)
    phi = np.where((a_abs > 0) & (b_abs > 0), -np.angle(-b * np.conj(a)), 0.0)
    return theta, phi


def _apply_right_columns(work: np.ndarray, tops: np.ndarray,
                         thetas: np.ndarray, phis: np.ndarray) -> None:
    """Right-multiply ``work`` by ``M(theta, phi)``-dagger on disjoint column pairs.

    Every pair ``(tops[k], tops[k] + 1)`` is updated in place with one gather
    and one fused 2x2 complex multiply -- the array-level form of the
    per-element ``work @ embed(m, M.conj().T)``.  ``work`` may carry a leading
    stack axis ``(..., n, n)``; ``thetas``/``phis`` then have the matching
    shape ``(..., k)`` and every matrix of the stack is updated at once.
    """
    t00, t01, t10, t11 = engine.mzi_block_coefficients(thetas, phis)
    # insert the row axis so per-pair coefficients broadcast over (..., n, k)
    t00, t01 = t00[..., None, :], t01[..., None, :]
    t10, t11 = t10[..., None, :], t11[..., None, :]
    upper = work[..., tops]
    lower = work[..., tops + 1]
    work[..., tops] = upper * np.conj(t00) + lower * np.conj(t01)
    work[..., tops + 1] = upper * np.conj(t10) + lower * np.conj(t11)


@lru_cache(maxsize=128)
def _reck_oplist(n: int):
    """Nulling op list and wavefront schedule of the Reck scheme (topology only).

    Element ``(row, m)`` is nulled with a column operation on modes
    ``(m, m + 1)``; two ops conflict exactly when their column pairs overlap,
    so the engine's greedy column scheduler doubles as a dependency-preserving
    wavefront schedule.  Cached per dimension: deploying a stack of same-size
    matrices (e.g. conv im2col kernels) pays for the schedule once.
    """
    lengths = np.arange(n - 1, 0, -1)
    op_rows = np.repeat(lengths, lengths)
    op_cols = (np.concatenate([np.arange(row) for row in lengths])
               if n > 1 else np.empty(0, dtype=np.intp))
    op_rows.flags.writeable = False
    op_cols.flags.writeable = False
    return op_rows, op_cols, engine.column_schedule(op_cols, n)


def _reck_nulling(work: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared wavefront-nulling core of the Reck scheme, stack-generic.

    ``work`` is mutated in place and may be a single matrix ``(n, n)`` or a
    stack ``(..., n, n)``; the returned ``(modes, thetas, phis,
    output_phases)`` arrays carry the same leading axes.
    """
    n = work.shape[-1]
    op_rows, op_cols, schedule = _reck_oplist(n)
    thetas = np.empty(work.shape[:-2] + (op_cols.size,), dtype=float)
    phis = np.empty_like(thetas)
    for indices, tops, _bottoms in schedule.columns:
        rows = op_rows[indices]
        theta, phi = _solve_right_null_vec(work[..., rows, tops],
                                           work[..., rows, tops + 1])
        _apply_right_columns(work, tops, theta, phi)
        thetas[..., indices] = theta
        phis[..., indices] = phi
    output_phases = np.diagonal(work, axis1=-2, axis2=-1).copy()
    return op_cols, thetas, phis, output_phases


def reck_decompose(unitary: np.ndarray) -> MeshDecomposition:
    """Triangular (Reck) decomposition of a unitary into physical MZIs.

    Vectorized: the nulling operations are packed into wavefronts of disjoint
    column pairs.  Each wavefront reads its pivot pairs, solves every MZI
    parameter at once and applies all two-column updates in one array
    operation, so the Python-level loop count drops from ``n (n - 1) / 2`` to
    the mesh depth ``2 n - 3``.  Agrees with
    :func:`reck_decompose_reference` to 1e-10.
    """
    unitary = _check_unitary_input(unitary)
    work = unitary.copy()
    modes, thetas, phis, output_phases = _reck_nulling(work)
    return MeshDecomposition(dimension=unitary.shape[0], modes=modes, thetas=thetas,
                             phis=phis, output_phases=output_phases, method="reck")


@lru_cache(maxsize=128)
def _clements_oplist(n: int):
    """Nulling op list of the Clements scheme plus the push-phase schedule.

    Unlike Reck, the anti-diagonal nulling ops form one sequential dependency
    chain -- every op's pivot cells were written by its predecessor (the last
    op of each diagonal writes the pivot row/column the next diagonal starts
    from), so there is no intra-matrix wavefront parallelism to exploit.  The
    final commutation of the left ops through the output phase screen only
    touches diagonal pairs, so *that* phase wavefront-vectorizes over disjoint
    modes.  Cached per dimension.
    """
    is_left: List[bool] = []
    op_modes: List[int] = []
    op_pivots: List[int] = []
    for i in range(n - 1):
        if i % 2 == 0:
            for j in range(i + 1):
                is_left.append(False)
                op_modes.append(i - j)          # column pair (col, col + 1)
                op_pivots.append(n - 1 - j)     # pivot row
        else:
            for j in range(i + 1):
                is_left.append(True)
                op_modes.append(n - 2 - i + j)  # row pair (row - 1, row)
                op_pivots.append(j)             # pivot column
    is_left_arr = np.array(is_left, dtype=bool)
    modes_arr = np.array(op_modes, dtype=np.intp)
    pivots_arr = np.array(op_pivots, dtype=np.intp)
    # push phase: reversed left ops, conflicting only on diagonal-pair overlap
    left_reversed = np.flatnonzero(is_left_arr)[::-1]
    push_modes = modes_arr[left_reversed]
    for array in (is_left_arr, modes_arr, pivots_arr, left_reversed, push_modes):
        array.flags.writeable = False
    return (is_left_arr, modes_arr, pivots_arr, left_reversed, push_modes,
            engine.column_schedule(push_modes, n))


def _refactor_phase_mzi_vec(left_thetas: np.ndarray, left_phis: np.ndarray,
                            d0: np.ndarray, d1: np.ndarray):
    """Vectorized :func:`_refactor_phase_mzi` of ``L-dagger @ diag(d0, d1)``."""
    l00, l01, l10, l11 = engine.mzi_block_coefficients(left_thetas, left_phis)
    a00, a01 = np.conj(l00) * d0, np.conj(l10) * d1
    a10, a11 = np.conj(l01) * d0, np.conj(l11) * d1
    theta = 2.0 * np.arctan2(np.abs(a00), np.abs(a01))
    sin_half, cos_half = np.sin(theta / 2.0), np.cos(theta / 2.0)
    phi = np.where((sin_half > 1e-12) & (cos_half > 1e-12),
                   np.angle(a00) - np.angle(a01), 0.0)
    m00, m01, m10, m11 = engine.mzi_block_coefficients(theta, phi)
    # a 2x2 unitary row never has both entries tiny, so the selected
    # denominator is always well conditioned
    use_01 = np.abs(m01) > 1e-12
    use_10 = np.abs(m10) > 1e-12
    new_d0 = np.where(use_01, a01, a00) / np.where(use_01, m01, m00)
    new_d1 = np.where(use_10, a10, a11) / np.where(use_10, m10, m11)
    return new_d0, new_d1, theta, phi


def _clements_finalize(n: int, work: np.ndarray, is_left: np.ndarray,
                       op_modes: np.ndarray, thetas: np.ndarray,
                       phis: np.ndarray, left_reversed: np.ndarray,
                       push_modes: np.ndarray, push_schedule):
    """Push-phase commutation + application-order assembly, stack-generic.

    Shared tail of the Clements paths (native or numpy chain, single matrix
    or stack): commute every left op through the output phase screen in
    wavefronts of disjoint diagonal pairs, then assemble the physical-MZI
    arrays in application order.  ``thetas``/``phis`` may carry a leading
    stack axis; the returned arrays carry the same leading axes.
    """
    diagonal = np.diagonal(work, axis1=-2, axis2=-1).copy()
    pushed_thetas = np.empty(thetas.shape[:-1] + (left_reversed.size,), dtype=float)
    pushed_phis = np.empty_like(pushed_thetas)
    for indices, tops, _bottoms in push_schedule.columns:
        ops = left_reversed[indices]
        new_d0, new_d1, theta, phi = _refactor_phase_mzi_vec(
            thetas[..., ops], phis[..., ops],
            diagonal[..., tops], diagonal[..., tops + 1])
        diagonal[..., tops] = new_d0
        diagonal[..., tops + 1] = new_d1
        pushed_thetas[..., indices] = theta
        pushed_phis[..., indices] = phi
    # application order: right-op MZIs first (in recording order), then the
    # pushed left-op MZIs in reversed recording order
    right_indices = np.flatnonzero(~is_left)
    modes = np.concatenate([op_modes[right_indices], push_modes])
    all_thetas = np.concatenate([thetas[..., right_indices], pushed_thetas], axis=-1)
    all_phis = np.concatenate([phis[..., right_indices], pushed_phis], axis=-1)
    return modes, all_thetas, all_phis, diagonal


def clements_decompose(unitary: np.ndarray) -> MeshDecomposition:
    """Rectangular (Clements) decomposition of a unitary into physical MZIs.

    Array-level: the anti-diagonal nulling ops chain sequentially (see
    :func:`_clements_oplist`), so they run as a slim scalar-parameter loop
    whose two-column / two-row updates are ``O(n)`` array slices instead of
    the reference's embedded full ``n x n`` matrix products; the commutation
    of the left ops through the output phase screen is wavefront-vectorized
    over disjoint diagonal pairs.  Agrees with
    :func:`clements_decompose_reference` to 1e-10.
    """
    unitary = _check_unitary_input(unitary)
    n = unitary.shape[0]
    work = unitary.copy()
    is_left, op_modes, op_pivots, left_reversed, push_modes, push_schedule = \
        _clements_oplist(n)
    kernel = engine.native_kernel()
    if kernel is not None:
        # one C call runs the whole sequential chain in place on `work`
        thetas, phis = kernel.clements_chain(
            work, is_left.view(np.uint8), op_modes, op_pivots, NULL_TOLERANCE)
        modes, all_thetas, all_phis, diagonal = _clements_finalize(
            n, work, is_left, op_modes, thetas, phis, left_reversed,
            push_modes, push_schedule)
        return MeshDecomposition(dimension=n, modes=modes, thetas=all_thetas,
                                 phis=all_phis, output_phases=diagonal,
                                 method="clements")
    thetas = np.empty(op_modes.size, dtype=float)
    phis = np.empty(op_modes.size, dtype=float)
    # slim scalar chain: closed-form 2x2 entries (Eq. 1, the same closed form
    # the engine evaluates) and O(n) two-row / two-column slice updates
    for index, (left, mode, pivot) in enumerate(
            zip(is_left.tolist(), op_modes.tolist(), op_pivots.tolist())):
        if left:
            a, b = work[mode, pivot], work[mode + 1, pivot]
            a_abs = abs(a) if abs(a) > NULL_TOLERANCE else 0.0
            b_abs = abs(b) if abs(b) > NULL_TOLERANCE else 0.0
            theta = 2.0 * math.atan2(a_abs, b_abs)
            phi = cmath.phase(b * a.conjugate()) if a_abs > 0 and b_abs > 0 else 0.0
            e_theta, e_phi = cmath.exp(1j * theta), cmath.exp(1j * phi)
            t00 = 0.5 * (e_theta - 1.0) * e_phi
            t01 = 0.5j * (e_theta + 1.0)
            t10 = t01 * e_phi
            t11 = 0.5 * (1.0 - e_theta)
            upper = work[mode, :].copy()
            lower = work[mode + 1, :]
            work[mode, :] = t00 * upper + t01 * lower
            work[mode + 1, :] = t10 * upper + t11 * lower
        else:
            a, b = work[pivot, mode], work[pivot, mode + 1]
            a_abs = abs(a) if abs(a) > NULL_TOLERANCE else 0.0
            b_abs = abs(b) if abs(b) > NULL_TOLERANCE else 0.0
            theta = 2.0 * math.atan2(b_abs, a_abs)
            phi = -cmath.phase(-b * a.conjugate()) if a_abs > 0 and b_abs > 0 else 0.0
            e_theta, e_phi = cmath.exp(-1j * theta), cmath.exp(-1j * phi)
            # conjugate-transpose entries of the closed-form block
            h00 = 0.5 * (e_theta - 1.0) * e_phi
            h01 = -0.5j * (e_theta + 1.0) * e_phi
            h10 = -0.5j * (e_theta + 1.0)
            h11 = 0.5 * (1.0 - e_theta)
            upper = work[:, mode].copy()
            lower = work[:, mode + 1]
            work[:, mode] = h00 * upper + h10 * lower
            work[:, mode + 1] = h01 * upper + h11 * lower
        thetas[index] = theta
        phis[index] = phi

    # U = L_1^{-1} ... L_q^{-1} D M_p ... M_1; commute each L_k^{-1} through
    # the diagonal (in reversed recording order) so the final expression is
    # D' * (physical MZI chain).  Push steps conflict only on overlapping
    # diagonal pairs, so the column scheduler groups them into wavefronts.
    modes, all_thetas, all_phis, diagonal = _clements_finalize(
        n, work, is_left, op_modes, thetas, phis, left_reversed,
        push_modes, push_schedule)
    return MeshDecomposition(dimension=n, modes=modes, thetas=all_thetas,
                             phis=all_phis, output_phases=diagonal, method="clements")


def decompose_unitary(unitary: np.ndarray, method: str = "clements") -> MeshDecomposition:
    """Dispatch to :func:`reck_decompose` or :func:`clements_decompose`."""
    method = method.lower()
    if method == "reck":
        return reck_decompose(unitary)
    if method == "clements":
        return clements_decompose(unitary)
    raise ValueError(f"unknown mesh decomposition method {method!r} (use 'reck' or 'clements')")


# --------------------------------------------------------------------------- #
# batched-stack decompositions
# --------------------------------------------------------------------------- #
def _check_unitary_stack(unitaries: np.ndarray) -> np.ndarray:
    stack = np.asarray(unitaries, dtype=complex)
    if stack.ndim != 3 or stack.shape[-1] != stack.shape[-2]:
        raise ValueError("stack decomposition requires a (stack, n, n) array")
    identity = np.eye(stack.shape[-1])
    grams = np.swapaxes(stack.conj(), -1, -2) @ stack
    if not np.allclose(grams, identity, atol=1e-6):
        raise ValueError("stack contains a non-unitary matrix; map general "
                         "matrices via svd_decompose_many()")
    return stack


def reck_decompose_stack(unitaries: np.ndarray) -> List[MeshDecomposition]:
    """Reck-decompose a stack of same-size unitaries in one vectorized pass.

    Every wavefront of nulling operations is applied to all matrices of the
    stack at once, so the Python-level loop count stays at the mesh depth
    ``2 n - 3`` regardless of the stack size.  Each returned mesh is
    parity-pinned against :func:`reck_decompose` of its slice to 1e-10.
    """
    stack = _check_unitary_stack(unitaries)
    work = stack.copy()
    modes, thetas, phis, output_phases = _reck_nulling(work)
    dimension = stack.shape[-1]
    return [MeshDecomposition(dimension=dimension, modes=modes, thetas=thetas[index],
                              phis=phis[index], output_phases=output_phases[index],
                              method="reck")
            for index in range(stack.shape[0])]


def clements_decompose_stack(unitaries: np.ndarray) -> List[MeshDecomposition]:
    """Clements-decompose a stack of same-size unitaries in one vectorized pass.

    The anti-diagonal nulling operations of the Clements scheme form one
    sequential dependency chain per matrix (see :func:`_clements_oplist`), so
    the per-matrix path cannot wavefront-vectorize them.  Across a *stack*
    they are embarrassingly parallel: every chain step solves its parameters
    and applies its two-row / two-column update for all matrices at once,
    which is how the compiler amortizes deploying many same-size conv-kernel
    SVD factors.  Each returned mesh is parity-pinned against
    :func:`clements_decompose` of its slice to 1e-10.
    """
    stack = _check_unitary_stack(unitaries)
    count, n = stack.shape[0], stack.shape[-1]
    work = stack.copy()
    is_left, op_modes, op_pivots, left_reversed, push_modes, push_schedule = \
        _clements_oplist(n)
    kernel = engine.native_kernel()
    if kernel is not None:
        # one C call runs every matrix's sequential chain in place on `work`
        # (the chains are independent, so the kernel keeps the stack loop
        # outer for cache locality)
        thetas, phis = kernel.clements_chain_stack(
            work, is_left.view(np.uint8), op_modes, op_pivots, NULL_TOLERANCE)
        modes, all_thetas, all_phis, diagonal = _clements_finalize(
            n, work, is_left, op_modes, thetas, phis, left_reversed,
            push_modes, push_schedule)
        return [MeshDecomposition(dimension=n, modes=modes,
                                  thetas=all_thetas[index], phis=all_phis[index],
                                  output_phases=diagonal[index],
                                  method="clements")
                for index in range(count)]
    thetas = np.empty((count, op_modes.size), dtype=float)
    phis = np.empty_like(thetas)
    blocks = np.empty((count, 2, 2), dtype=complex)
    for index, (left, mode, pivot) in enumerate(
            zip(is_left.tolist(), op_modes.tolist(), op_pivots.tolist())):
        # the fused small-array kernel solves the rotation and assembles the
        # 2x2 blocks (conjugate-transposed for right ops) in one pass; the
        # pair update is a single batched matmul over the stack axis
        if left:
            a, b = work[:, mode, pivot], work[:, mode + 1, pivot]
        else:
            a, b = work[:, pivot, mode], work[:, pivot, mode + 1]
        theta, phi, blocks = engine.nulling_rotation_blocks(
            a, b, left, NULL_TOLERANCE, out=blocks)
        if left:
            work[:, mode:mode + 2, :] = np.matmul(blocks, work[:, mode:mode + 2, :])
        else:
            work[:, :, mode:mode + 2] = np.matmul(work[:, :, mode:mode + 2], blocks)
        thetas[:, index] = theta
        phis[:, index] = phi

    modes, all_thetas, all_phis, diagonal = _clements_finalize(
        n, work, is_left, op_modes, thetas, phis, left_reversed,
        push_modes, push_schedule)
    return [MeshDecomposition(dimension=n, modes=modes, thetas=all_thetas[index],
                              phis=all_phis[index], output_phases=diagonal[index],
                              method="clements")
            for index in range(count)]


def decompose_unitary_stack(unitaries: np.ndarray,
                            method: str = "clements") -> List[MeshDecomposition]:
    """Dispatch to :func:`reck_decompose_stack` or :func:`clements_decompose_stack`."""
    method = method.lower()
    if method == "reck":
        return reck_decompose_stack(unitaries)
    if method == "clements":
        return clements_decompose_stack(unitaries)
    raise ValueError(f"unknown mesh decomposition method {method!r} (use 'reck' or 'clements')")
