"""Decomposition of arbitrary unitaries into meshes of physical MZIs.

Two mesh topologies are provided:

* **Reck** (triangular) -- the scheme of Reck et al. 1994 used by the original
  coherent ONN [10]: elements are nulled row by row with column operations,
  yielding ``U = D * M_K * ... * M_1`` where each ``M_k`` is a physical MZI
  (Eq. 1) acting on two adjacent modes and ``D`` is a column of output phase
  shifters.
* **Clements** (rectangular) -- the scheme of Clements et al. 2016: elements
  are nulled alternately with column and row operations; the leftover diagonal
  is commuted through the row operations so the final form is identical
  (``U = D * product of MZIs``) but the mesh has half the optical depth.

Both use exactly ``n (n - 1) / 2`` MZIs for an ``n x n`` unitary, which is the
count the paper's area model builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.photonics.components import mzi_transfer


def is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Check whether ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def random_unitary(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Draw a Haar-random ``n x n`` unitary matrix (QR of a complex Ginibre matrix)."""
    if n <= 0:
        raise ValueError("dimension must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    ginibre = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    q, r = np.linalg.qr(ginibre)
    # fix the phases so the distribution is Haar
    phases = np.diag(r).copy()
    phases = phases / np.abs(phases)
    return q * phases[None, :]


@dataclass
class MZISetting:
    """Phase settings of one MZI in a mesh.

    Attributes
    ----------
    mode:
        Index of the upper of the two adjacent modes the MZI couples.
    theta:
        Internal phase shift (splitting control).
    phi:
        Input phase shift (relative-phase control).
    """

    mode: int
    theta: float
    phi: float

    def transfer_matrix(self) -> np.ndarray:
        return mzi_transfer(self.theta, self.phi)


@dataclass
class MeshDecomposition:
    """A unitary expressed as output phases applied after a chain of MZIs.

    ``reconstruct()`` returns ``diag(output_phases) @ M_last @ ... @ M_first``
    where ``settings[0]`` is the MZI applied first to an input vector.
    """

    dimension: int
    settings: List[MZISetting] = field(default_factory=list)
    output_phases: np.ndarray = None  # complex unit-modulus phases, shape (dimension,)
    method: str = "reck"

    def __post_init__(self):
        if self.output_phases is None:
            self.output_phases = np.ones(self.dimension, dtype=complex)
        self.output_phases = np.asarray(self.output_phases, dtype=complex)

    @property
    def mzi_count(self) -> int:
        return len(self.settings)

    @property
    def phase_shifter_count(self) -> int:
        """Tunable phase shifters: two per MZI plus the output phase screen."""
        return 2 * len(self.settings) + self.dimension

    def embed(self, setting: MZISetting) -> np.ndarray:
        """Embed a single MZI into the full ``dimension x dimension`` space."""
        full = np.eye(self.dimension, dtype=complex)
        block = setting.transfer_matrix()
        m = setting.mode
        full[m:m + 2, m:m + 2] = block
        return full

    def reconstruct(self) -> np.ndarray:
        """Multiply out the mesh into a dense unitary matrix."""
        result = np.eye(self.dimension, dtype=complex)
        for setting in self.settings:
            result = self.embed(setting) @ result
        return np.diag(self.output_phases) @ result

    def apply(self, vector: np.ndarray, insertion_loss_db: float = 0.0) -> np.ndarray:
        """Propagate complex input amplitudes through the mesh (batch-aware).

        ``vector`` may be ``(dimension,)`` or ``(batch, dimension)``.

        Parameters
        ----------
        insertion_loss_db:
            Optional per-MZI insertion loss in dB (power).  Each MZI a signal
            traverses multiplies its amplitude by ``10**(-IL/20)``, modelling
            waveguide/coupler losses; 0 dB (default) keeps the mesh lossless.
        """
        if insertion_loss_db < 0:
            raise ValueError("insertion_loss_db must be non-negative")
        vector = np.asarray(vector, dtype=complex)
        single = vector.ndim == 1
        states = vector[None, :] if single else vector
        if states.shape[-1] != self.dimension:
            raise ValueError(f"expected vectors of length {self.dimension}, got {states.shape[-1]}")
        states = states.copy()
        transmission = 10.0 ** (-insertion_loss_db / 20.0)
        for setting in self.settings:
            m = setting.mode
            block = setting.transfer_matrix() * transmission
            pair = states[:, m:m + 2] @ block.T
            states[:, m:m + 2] = pair
        states = states * self.output_phases[None, :]
        return states[0] if single else states

    def total_phase_power_mw(self) -> float:
        """Static power of every tunable phase shifter in the mesh."""
        from repro.photonics.components import phase_shifter_power_mw

        power = 0.0
        for setting in self.settings:
            power += phase_shifter_power_mw(setting.theta)
            power += phase_shifter_power_mw(setting.phi)
        for phase in np.angle(self.output_phases):
            power += phase_shifter_power_mw(float(phase))
        return power


# --------------------------------------------------------------------------- #
# nulling parameter solvers
# --------------------------------------------------------------------------- #
def _solve_right_null(a: complex, b: complex) -> Tuple[float, float]:
    """Parameters of the MZI ``M`` such that right-multiplying by ``M``-dagger
    on columns ``(m, m+1)`` nulls the entry whose current row values are
    ``a = U[row, m]`` and ``b = U[row, m+1]``."""
    theta = 2.0 * math.atan2(abs(b), abs(a))
    phi = -float(np.angle(-b * np.conj(a))) if abs(a) > 0 and abs(b) > 0 else 0.0
    return theta, phi


def _solve_left_null(a: complex, b: complex) -> Tuple[float, float]:
    """Parameters of the MZI ``M`` such that left-multiplying by ``M`` on rows
    ``(row-1, row)`` nulls the entry whose current column values are
    ``a = U[row-1, col]`` and ``b = U[row, col]``."""
    theta = 2.0 * math.atan2(abs(a), abs(b))
    phi = float(np.angle(b * np.conj(a))) if abs(a) > 0 and abs(b) > 0 else 0.0
    return theta, phi


def _embed_pair(n: int, mode: int, block: np.ndarray) -> np.ndarray:
    full = np.eye(n, dtype=complex)
    full[mode:mode + 2, mode:mode + 2] = block
    return full


def _refactor_phase_mzi(block: np.ndarray) -> Tuple[complex, complex, float, float]:
    """Factor a 2x2 unitary ``A`` as ``diag(d0, d1) @ M(theta, phi)``.

    Used to commute leftover row operations through the output phase screen in
    the Clements decomposition.
    """
    a00, a01 = block[0, 0], block[0, 1]
    theta = 2.0 * math.atan2(abs(a00), abs(a01))
    s, c = math.sin(theta / 2.0), math.cos(theta / 2.0)
    if s > 1e-12 and c > 1e-12:
        phi = float(np.angle(a00) - np.angle(a01))
    else:
        phi = 0.0
    mzi = mzi_transfer(theta, phi)
    d0 = block[0, 1] / mzi[0, 1] if abs(mzi[0, 1]) > 1e-12 else block[0, 0] / mzi[0, 0]
    d1 = block[1, 0] / mzi[1, 0] if abs(mzi[1, 0]) > 1e-12 else block[1, 1] / mzi[1, 1]
    return d0, d1, theta, phi


# --------------------------------------------------------------------------- #
# decompositions
# --------------------------------------------------------------------------- #
def _check_unitary_input(unitary: np.ndarray) -> np.ndarray:
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise ValueError("decomposition requires a square matrix")
    if not is_unitary(unitary, atol=1e-6):
        raise ValueError("matrix is not unitary; map general matrices via svd_decompose()")
    return unitary


def reck_decompose(unitary: np.ndarray) -> MeshDecomposition:
    """Triangular (Reck) decomposition of a unitary into physical MZIs."""
    unitary = _check_unitary_input(unitary)
    n = unitary.shape[0]
    work = unitary.copy()
    settings: List[MZISetting] = []
    for row in range(n - 1, 0, -1):
        for m in range(0, row):
            a, b = work[row, m], work[row, m + 1]
            theta, phi = _solve_right_null(a, b)
            mzi = mzi_transfer(theta, phi)
            work = work @ _embed_pair(n, m, mzi.conj().T)
            settings.append(MZISetting(mode=m, theta=theta, phi=phi))
    output_phases = np.diag(work).copy()
    return MeshDecomposition(dimension=n, settings=settings,
                             output_phases=output_phases, method="reck")


def clements_decompose(unitary: np.ndarray) -> MeshDecomposition:
    """Rectangular (Clements) decomposition of a unitary into physical MZIs."""
    unitary = _check_unitary_input(unitary)
    n = unitary.shape[0]
    work = unitary.copy()
    right_settings: List[MZISetting] = []   # recorded in application order
    left_settings: List[MZISetting] = []    # recorded in application order

    for i in range(n - 1):
        if i % 2 == 0:
            # null along the anti-diagonal with column (right) operations
            for j in range(i + 1):
                row, col = n - 1 - j, i - j
                a, b = work[row, col], work[row, col + 1]
                theta, phi = _solve_right_null(a, b)
                mzi = mzi_transfer(theta, phi)
                work = work @ _embed_pair(n, col, mzi.conj().T)
                right_settings.append(MZISetting(mode=col, theta=theta, phi=phi))
        else:
            # null along the anti-diagonal with row (left) operations
            for j in range(i + 1):
                row, col = n - 1 - i + j, j
                a, b = work[row - 1, col], work[row, col]
                theta, phi = _solve_left_null(a, b)
                mzi = mzi_transfer(theta, phi)
                work = _embed_pair(n, row - 1, mzi) @ work
                left_settings.append(MZISetting(mode=row - 1, theta=theta, phi=phi))

    diagonal = np.diag(work).copy()

    # U = L_1^{-1} ... L_q^{-1} D M_p ... M_1  with L/M physical MZIs.  Commute
    # each L_k^{-1} through the diagonal so the final expression is
    # D' * (physical MZI chain).
    pushed: List[MZISetting] = []
    for setting in reversed(left_settings):
        m = setting.mode
        inverse_block = setting.transfer_matrix().conj().T
        block = inverse_block @ np.diag(diagonal[m:m + 2])
        d0, d1, theta, phi = _refactor_phase_mzi(block)
        diagonal[m] = d0
        diagonal[m + 1] = d1
        pushed.insert(0, MZISetting(mode=m, theta=theta, phi=phi))

    # Application order: right-op MZIs first (rightmost in the product), then
    # the pushed left-op MZIs.
    settings = list(right_settings) + list(reversed(pushed))
    return MeshDecomposition(dimension=n, settings=settings,
                             output_phases=diagonal, method="clements")


def decompose_unitary(unitary: np.ndarray, method: str = "clements") -> MeshDecomposition:
    """Dispatch to :func:`reck_decompose` or :func:`clements_decompose`."""
    method = method.lower()
    if method == "reck":
        return reck_decompose(unitary)
    if method == "clements":
        return clements_decompose(unitary)
    raise ValueError(f"unknown mesh decomposition method {method!r} (use 'reck' or 'clements')")
