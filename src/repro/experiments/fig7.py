"""Figure 7: comparison with the OFFT block-circulant architecture [19].

Four FCNN configurations are evaluated (the paper's Model1-Model4):

* Model1: (28x28)-400-10
* Model2: (14x14)-70-10
* Model3: (28x28)-400-128-10
* Model4: (14x14)-160-160-10

For each model the harness trains the original ONN FCNN (CVNN, conventional
assignment), the OFFT version (block-circulant layers, block size 4) and the
OplixNet version (SCVNN with spatial interlace + merge decoder), and reports
inference accuracy together with the number of weight parameters, directional
couplers and phase shifters normalised to the original ONN -- the quantities
plotted in Fig. 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.assignment import get_scheme
from repro.baselines.offt import OFFTFCNN, conventional_device_counts, offt_device_counts
from repro.core.config import TrainingConfig
from repro.core.training import Trainer, evaluate_accuracy
from repro.data import DataLoader, synthetic_mnist
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table
from repro.models.fcnn import ComplexFCNN, RealFCNN
from repro.photonics.area import MZI_DC_COUNT, MZI_PS_COUNT, mzi_count_matrix


@dataclass(frozen=True)
class Fig7ModelConfig:
    """One of the four FCNN configurations compared in Fig. 7."""

    key: str
    image_size: Tuple[int, int]
    hidden_sizes: Tuple[int, ...]

    @property
    def input_features(self) -> int:
        return self.image_size[0] * self.image_size[1]

    @property
    def label(self) -> str:
        hidden = "-".join(str(h) for h in self.hidden_sizes)
        return f"{self.key}-({self.image_size[0]}x{self.image_size[1]})-{hidden}-10"

    def layer_shapes(self, num_classes: int = 10) -> List[Tuple[int, int]]:
        shapes = []
        previous = self.input_features
        for width in list(self.hidden_sizes) + [num_classes]:
            shapes.append((width, previous))
            previous = width
        return shapes


FIG7_MODELS: Tuple[Fig7ModelConfig, ...] = (
    Fig7ModelConfig("Model1", (28, 28), (400,)),
    Fig7ModelConfig("Model2", (14, 14), (70,)),
    Fig7ModelConfig("Model3", (28, 28), (400, 128)),
    Fig7ModelConfig("Model4", (14, 14), (160, 160)),
)


@dataclass
class Fig7Row:
    """Accuracy and normalised device counts of one architecture on one model."""

    model: str
    architecture: str          # "original", "offt" or "oplixnet"
    accuracy: float
    normalized_parameters: float
    normalized_dc: float
    normalized_ps: float


def _split_input_features(image_size: Tuple[int, int]) -> int:
    """Complex input features after spatial-interlace assignment of an image."""
    channels, half_height, width = get_scheme("SI").output_shape((1, *image_size))
    return channels * half_height * width


def _oplixnet_shapes(config: Fig7ModelConfig, num_classes: int = 10) -> List[Tuple[int, int]]:
    """Layer shapes of the OplixNet (split) version: all widths halved, merge head."""
    shapes = []
    previous = _split_input_features(config.image_size)
    halved_hidden = [max(1, math.ceil(h / 2)) for h in config.hidden_sizes]
    for width in halved_hidden:
        shapes.append((width, previous))
        previous = width
    shapes.append((2 * num_classes, previous))   # merged decoder layer
    return shapes


def device_counts(config: Fig7ModelConfig, block_size: int = 4) -> dict:
    """Normalised #Para / #DC / #PS of the three architectures at paper scale."""
    original = conventional_device_counts(config.layer_shapes())
    offt = offt_device_counts(config.layer_shapes(), block_size=block_size)
    oplix_shapes = _oplixnet_shapes(config)
    oplix_mzis = sum(mzi_count_matrix(rows, cols) for rows, cols in oplix_shapes)
    # complex weights carry two real parameters each
    oplix_params = sum(2 * rows * cols for rows, cols in oplix_shapes)
    return {
        "original": {"parameters": 1.0, "dc": 1.0, "ps": 1.0},
        "offt": {
            "parameters": offt.parameters / original.parameters,
            "dc": offt.directional_couplers / original.directional_couplers,
            "ps": offt.phase_shifters / original.phase_shifters,
        },
        "oplixnet": {
            "parameters": oplix_params / original.parameters,
            "dc": MZI_DC_COUNT * oplix_mzis / original.directional_couplers,
            "ps": MZI_PS_COUNT * oplix_mzis / original.phase_shifters,
        },
    }


def _scaled_config(config: Fig7ModelConfig, preset: Preset) -> Fig7ModelConfig:
    """Shrink a Fig. 7 model for CPU-scale training (area uses the full config)."""
    divider = preset.width_divider
    image = preset.fcnn_image if config.image_size == (28, 28) else (
        max(7, preset.fcnn_image[0] // 2), max(7, preset.fcnn_image[1] // 2))
    hidden = tuple(max(4, int(math.ceil(h / divider))) for h in config.hidden_sizes)
    return Fig7ModelConfig(config.key, image, hidden)


def run_model(config: Fig7ModelConfig, preset: Preset, seed: int = 0,
              block_size: int = 4) -> List[Fig7Row]:
    """Train the three architectures on one Fig. 7 model configuration."""
    scaled = _scaled_config(config, preset)
    height, width = scaled.image_size
    train, test = synthetic_mnist(height=height, width=width,
                                  train_samples=preset.train_samples,
                                  test_samples=preset.test_samples, seed=seed)
    training = TrainingConfig(epochs=preset.epochs, batch_size=preset.batch_size,
                              learning_rate=preset.learning_rate, seed=seed)
    train_loader = DataLoader(train, batch_size=training.batch_size, shuffle=True,
                              rng=np.random.default_rng(seed))
    test_loader = DataLoader(test, batch_size=training.batch_size, shuffle=False)
    rng = np.random.default_rng(seed)
    counts = device_counts(config, block_size=block_size)
    rows: List[Fig7Row] = []

    # original ONN: complex model at full width with conventional assignment
    original = ComplexFCNN(scaled.input_features, scaled.hidden_sizes, 10,
                           decoder="photodiode", rng=rng)
    Trainer(original, training, scheme=get_scheme("conventional")).fit(train_loader)
    original_accuracy = evaluate_accuracy(original, test_loader, get_scheme("conventional"))
    rows.append(Fig7Row(config.label, "original", original_accuracy,
                        counts["original"]["parameters"], counts["original"]["dc"],
                        counts["original"]["ps"]))

    # OFFT: real block-circulant FCNN
    offt_model = OFFTFCNN(scaled.input_features, scaled.hidden_sizes, 10,
                          block_size=block_size, rng=rng)
    Trainer(offt_model, training, scheme=None).fit(train_loader)
    offt_accuracy = evaluate_accuracy(offt_model, test_loader, None)
    rows.append(Fig7Row(config.label, "offt", offt_accuracy,
                        counts["offt"]["parameters"], counts["offt"]["dc"], counts["offt"]["ps"]))

    # OplixNet: SCVNN with spatial interlace and merge decoder
    scheme = get_scheme("SI")
    complex_features = _split_input_features(scaled.image_size)
    halved_hidden = [max(1, math.ceil(h / 2)) for h in scaled.hidden_sizes]
    oplixnet = ComplexFCNN(complex_features, halved_hidden, 10, decoder="merge", rng=rng)
    Trainer(oplixnet, training, scheme=scheme).fit(train_loader)
    oplix_accuracy = evaluate_accuracy(oplixnet, test_loader, scheme)
    rows.append(Fig7Row(config.label, "oplixnet", oplix_accuracy,
                        counts["oplixnet"]["parameters"], counts["oplixnet"]["dc"],
                        counts["oplixnet"]["ps"]))
    return rows


def run_fig7(preset: str = "bench", models: Optional[Sequence[str]] = None,
             seed: int = 0, block_size: int = 4) -> List[Fig7Row]:
    """Reproduce the Fig. 7 comparison for the selected models (default: all four)."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    selected = FIG7_MODELS if models is None else tuple(
        m for m in FIG7_MODELS if m.key in set(models))
    rows: List[Fig7Row] = []
    for config in selected:
        rows.extend(run_model(config, preset_obj, seed=seed, block_size=block_size))
    return rows


def format_fig7(rows: Sequence[Fig7Row]) -> str:
    headers = ["Model", "Architecture", "Accuracy", "#Para (norm.)", "#DC (norm.)", "#PS (norm.)"]
    table_rows = [
        [row.model, row.architecture, f"{100 * row.accuracy:.2f}%",
         f"{row.normalized_parameters:.3f}", f"{row.normalized_dc:.3f}", f"{row.normalized_ps:.3f}"]
        for row in rows
    ]
    return format_table(headers, table_rows, title="Figure 7 -- OplixNet vs OFFT [19]")


if __name__ == "__main__":
    print(format_fig7(run_fig7(preset="bench")))
