"""Hardware-realism scenario experiments: degradation curves and the
drift-detect-recalibrate loop, measured end to end.

Two harnesses, shared by ``python -m repro scenarios``, the scenario tests
and ``benchmarks/test_bench_scenarios.py``:

* :func:`scenario_time_sweep` -- prediction agreement vs the clean program
  as a function of scenario time, evaluated as ONE batched ensemble through
  the engine (the trajectory rides a leading time axis, optionally crossed
  with Monte-Carlo trials), so a whole degradation curve costs a single
  forward pass.
* :func:`run_drift_recalibration` -- the full serving-layer loop against a
  live :class:`~repro.serve.shard.ShardedInferenceService`: deploy in chaos
  mode, inject drift, keep client traffic flowing the entire time, let the
  :class:`~repro.serve.recalibrate.RecalibrationManager` detect the
  degradation from logit statistics alone and heal the lane, and report
  accuracy before/after plus swap latency and any failed requests.

"Accuracy" here is agreement with the clean program's predictions on the
evaluation batch -- ground truth for the hardware question being asked
(does the served model still compute what was compiled?), and available
without a trained checkpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

import repro
from repro.assignment import get_scheme
from repro.scenarios import build_scenario


def _agreement(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions matching ``labels``; extra leading axes
    (time, trials) are averaged over."""
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions == labels).mean())


def scenario_time_sweep(model, scheme: Any, images: np.ndarray,
                        scenario: Any, times: Sequence[float],
                        trials: Optional[int] = None) -> List[Dict[str, Any]]:
    """Agreement-vs-clean at every scenario time, in one ensemble pass."""
    scheme = get_scheme(scheme) if isinstance(scheme, str) else scheme
    program = repro.compile(model)
    clean = program.predict_logits(images, scheme)
    labels = clean.argmax(axis=-1)
    built = build_scenario(scenario)
    trajectory = program.with_scenario(built, times=list(times), trials=trials)
    logits = trajectory.predict_logits(images, scheme)
    rows = []
    for index, t in enumerate(times):
        rows.append({"scenario": built.name, "time_s": float(t),
                     "agreement": _agreement(logits[index], labels)})
    return rows


def run_drift_recalibration(model, scheme: Any, image_shape: Sequence[int],
                            images: np.ndarray, sigma: float = 0.5,
                            tau_s: float = 30.0, drift_s: float = 120.0,
                            workers: int = 2, threshold: float = 0.15,
                            min_batches: int = 2, observe_batches: int = 4,
                            traffic_interval_s: float = 0.01,
                            seed: int = 0) -> Dict[str, Any]:
    """Deploy, degrade, detect, heal -- with traffic flowing throughout.

    Returns a summary dict: ``clean_accuracy`` / ``degraded_accuracy`` /
    ``recalibrated_accuracy`` (agreement with the clean program),
    ``detection_score`` (the drift score that tripped the threshold),
    ``recalibration_latency_s`` (redeploy + swap wall clock), and
    ``traffic`` counts proving zero requests failed during the swap.
    """
    from repro.serve import DriftInjector, RecalibrationManager, \
        ShardedInferenceService

    scheme_name = scheme if isinstance(scheme, str) else scheme.name
    scheme_obj = get_scheme(scheme_name)
    images = np.asarray(images)
    clean = repro.compile(model).predict_logits(images, scheme_obj)
    labels = clean.argmax(axis=-1)
    scenario = {"name": "thermal_drift",
                "params": {"sigma": float(sigma), "tau_s": float(tau_s),
                           "seed": int(seed)}}

    summary: Dict[str, Any] = {"scenario": scenario, "drift_s": float(drift_s),
                               "workers": int(workers)}
    with ShardedInferenceService(workers=int(workers),
                                 max_latency_s=0.001) as service:
        service.deploy("drift-demo", model, scheme_name, tuple(image_shape),
                       scenario=scenario)
        summary["clean_accuracy"] = _agreement(
            service.logits("drift-demo", images), labels)

        manager = RecalibrationManager(service, "drift-demo", images,
                                       threshold=float(threshold),
                                       min_batches=int(min_batches))
        injector = DriftInjector(service, "drift-demo")
        injector.advance(float(drift_s))
        degraded = service.logits("drift-demo", images)
        summary["degraded_accuracy"] = _agreement(degraded, labels)

        # continuous client traffic that must survive the swap untouched
        failures: List[BaseException] = []
        completed = [0]
        stop_traffic = threading.Event()

        def traffic() -> None:
            wave = images[: max(1, len(images) // 4)]
            while not stop_traffic.is_set():
                try:
                    service.logits("drift-demo", wave)
                    completed[0] += 1
                except BaseException as error:  # noqa: BLE001 -- counted below
                    failures.append(error)
                time.sleep(traffic_interval_s)

        thread = threading.Thread(target=traffic, daemon=True)
        thread.start()
        try:
            # the monitor only sees live traffic; feed it observation batches
            for _ in range(int(observe_batches)):
                service.logits("drift-demo", images)
            summary["detection_score"] = manager.drift_score()
            summary["detected"] = manager.drifted()
            status = manager.check()        # heals synchronously when drifted
            summary["recalibrations"] = status["recalibrations"]
            summary["recalibration_latency_s"] = status["last_latency_s"]
            summary["recalibrated_accuracy"] = _agreement(
                service.logits("drift-demo", images), labels)
        finally:
            stop_traffic.set()
            thread.join(timeout=30.0)
        summary["traffic"] = {"completed": completed[0],
                              "failed": len(failures)}
        if failures:
            summary["traffic"]["first_error"] = repr(failures[0])
    return summary


def format_time_sweep(rows: List[Dict[str, Any]]) -> str:
    from repro.experiments.reporting import format_table

    table = [[row["scenario"], f"{row['time_s']:.0f}",
              f"{row['agreement'] * 100:.1f}%"] for row in rows]
    return format_table(["scenario", "t (s)", "agreement vs clean"], table,
                        title="Degradation trajectory (one batched ensemble)")
