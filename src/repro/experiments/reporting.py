"""Shared result formatting / persistence helpers for the experiment harness."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, List, Sequence, Union


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render a plain-text table (the harness prints the paper's rows with it)."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def as_dicts(results: Iterable[Any]) -> List[dict]:
    """Convert a list of result dataclasses into plain dictionaries."""
    converted = []
    for result in results:
        if dataclasses.is_dataclass(result):
            converted.append(dataclasses.asdict(result))
        elif isinstance(result, dict):
            converted.append(dict(result))
        else:
            raise TypeError(f"cannot serialise result of type {type(result)!r}")
    return converted


def save_json(results: Union[Iterable[Any], dict], path: Union[str, Path]) -> Path:
    """Persist experiment results as JSON (used by the benchmark harness)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(results, dict):
        payload = results
    else:
        payload = as_dicts(results)
    path.write_text(json.dumps(payload, indent=2, default=_json_default))
    return path


def _json_default(value: Any):
    if dataclasses.is_dataclass(value):
        return dataclasses.asdict(value)
    if hasattr(value, "tolist"):          # numpy arrays and scalars
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.2f}%"
