"""Ablation studies of OplixNet's design choices.

Beyond the paper's tables and figures, DESIGN.md calls out several design
decisions worth quantifying; each has a harness here:

* :func:`run_alpha_sweep` -- sensitivity of mutual learning to the mixing
  factor alpha of Eqs. (3)/(4) (the paper fixes alpha = 1.0).
* :func:`run_mesh_comparison` -- Reck vs Clements decompositions: MZI count,
  reconstruction error and optical depth.
* :func:`run_noise_robustness` -- accuracy of the deployed split ONN and the
  deployed conventional ONN under Gaussian phase noise on every phase shifter
  (the split ONN uses ~4x fewer MZIs, so it accumulates less error).
* :func:`run_encoder_throughput` -- input-encoding latency of the proposed
  DC-based encoder versus the PS-based encoder of [16] (the thermal time
  bottleneck).
* :func:`run_pruning_comparison` -- magnitude pruning of the conventional ONN
  [18] versus OplixNet at matched area: the pruning route needs very high
  sparsity to reach a 75% area saving and loses more accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.assignment import get_scheme
from repro.baselines.pruning import magnitude_prune_model, pruned_area_report
from repro.core.area_analysis import model_area_report
from repro.core.compile import compile as compile_model
from repro.core.pipeline import OplixNet
from repro.core.training import evaluate_accuracy
from repro.experiments.common import get_workload, workload_config
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table, percent
from repro.photonics import engine
from repro.photonics.encoders import DCComplexEncoder, PSComplexEncoder
from repro.photonics.mzi_mesh import clements_decompose, random_unitary, reck_decompose
from repro.photonics.noise import PhaseNoiseModel


# --------------------------------------------------------------------------- #
# 1. distillation mixing factor
# --------------------------------------------------------------------------- #
@dataclass
class AlphaSweepPoint:
    alpha: float
    student_accuracy: float
    teacher_accuracy: float


def run_alpha_sweep(preset: str = "bench", alphas: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
                    workload_key: str = "fcnn", seed: int = 0) -> List[AlphaSweepPoint]:
    """Sweep the distillation mixing factor on one workload."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload(workload_key)
    points: List[AlphaSweepPoint] = []
    for alpha in alphas:
        config = workload_config(workload, preset_obj, seed=seed, distillation_alpha=alpha)
        pipeline = OplixNet(config)
        _student, result = pipeline.train_student(mutual_learning=True)
        points.append(AlphaSweepPoint(alpha=float(alpha),
                                      student_accuracy=result.student_test_accuracy,
                                      teacher_accuracy=result.teacher_test_accuracy))
    return points


# --------------------------------------------------------------------------- #
# 2. mesh decomposition comparison
# --------------------------------------------------------------------------- #
@dataclass
class MeshComparisonRow:
    dimension: int
    method: str
    mzi_count: int
    optical_depth: int
    reconstruction_error: float


def _optical_depth(settings) -> int:
    """Number of MZI columns after greedy scheduling of non-overlapping MZIs.

    Delegates to the compiled engine's column scheduler, which is also what
    propagation executes -- the reported depth is the number of vectorized
    column applications per forward pass.
    """
    modes = np.array([setting.mode for setting in settings], dtype=np.intp)
    dimension = int(modes.max()) + 2 if modes.size else 0
    return engine.column_schedule(modes, dimension).depth


def run_mesh_comparison(dimensions: Sequence[int] = (4, 8, 16, 32),
                        seed: int = 0) -> List[MeshComparisonRow]:
    """Compare Reck and Clements meshes on random unitaries."""
    rng = np.random.default_rng(seed)
    rows: List[MeshComparisonRow] = []
    for dimension in dimensions:
        unitary = random_unitary(dimension, rng)
        for method, decompose in (("reck", reck_decompose), ("clements", clements_decompose)):
            mesh = decompose(unitary)
            error = float(np.abs(mesh.reconstruct() - unitary).max())
            rows.append(MeshComparisonRow(dimension=dimension, method=method,
                                          mzi_count=mesh.mzi_count,
                                          optical_depth=mesh.optical_depth,
                                          reconstruction_error=error))
    return rows


# --------------------------------------------------------------------------- #
# 3. phase-noise robustness of the deployed circuits
# --------------------------------------------------------------------------- #
@dataclass
class NoisePoint:
    sigma: float
    split_onn_accuracy: float
    conventional_onn_accuracy: float
    trials: int = 1


def run_noise_robustness(preset: str = "bench", sigmas: Sequence[float] = (0.0, 0.01, 0.03, 0.1),
                         seed: int = 0, eval_samples: int = 128,
                         trials: Optional[int] = None) -> List[NoisePoint]:
    """Deploy trained FCNNs and sweep Gaussian phase noise on every phase shifter.

    The whole sweep is one batched ensemble: the noise model carries the
    sigma values as an array axis (common random numbers across sigmas) and
    ``trials=T`` adds ``T`` independent realizations per sigma, so every
    (sigma, trial) pair propagates in a single vectorized pass through the
    compiled engine instead of a Python loop over sigma values.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload("fcnn")
    config = workload_config(workload, preset_obj, seed=seed)
    pipeline = OplixNet(config)

    student, _ = pipeline.train_student(mutual_learning=False)
    conventional, _ = pipeline.train_reference("cvnn")

    student_scheme = pipeline.student_scheme()
    conventional_scheme = get_scheme("conventional")
    deployed_student = compile_model(student)
    deployed_conventional = compile_model(conventional)

    _train, test = pipeline.datasets()
    count = min(eval_samples, len(test))
    images = np.stack([test[i][0] for i in range(count)])
    labels = np.array([test[i][1] for i in range(count)])

    sigma_axis = np.asarray(list(sigmas), dtype=float)
    noise = PhaseNoiseModel(sigma=sigma_axis, rng=np.random.default_rng(seed + 17))
    noisy_student = deployed_student.with_noise(noise=noise, trials=trials)
    noisy_conventional = deployed_conventional.with_noise(noise=noise, trials=trials)
    # predictions are (sigmas, [trials,] samples); averaging every axis but
    # the sigma one gives the per-sigma (Monte-Carlo) accuracy
    student_hits = noisy_student.classify(images, student_scheme) == labels
    conventional_hits = noisy_conventional.classify(images, conventional_scheme) == labels
    trailing = tuple(range(1, student_hits.ndim))
    student_accuracy = student_hits.mean(axis=trailing)
    conventional_accuracy = conventional_hits.mean(axis=trailing)

    return [NoisePoint(sigma=float(sigma),
                       split_onn_accuracy=float(student_accuracy[index]),
                       conventional_onn_accuracy=float(conventional_accuracy[index]),
                       trials=1 if trials is None else int(trials))
            for index, sigma in enumerate(sigma_axis)]


# --------------------------------------------------------------------------- #
# 4. encoder throughput
# --------------------------------------------------------------------------- #
@dataclass
class EncoderLatencyRow:
    encoder: str
    samples: int
    latency_seconds: float
    has_time_bottleneck: bool


def run_encoder_throughput(sample_counts: Sequence[int] = (1_000, 100_000)) -> List[EncoderLatencyRow]:
    """Latency of streaming input samples through the DC and PS complex encoders."""
    rows: List[EncoderLatencyRow] = []
    for samples in sample_counts:
        for encoder in (DCComplexEncoder(), PSComplexEncoder()):
            rows.append(EncoderLatencyRow(encoder=encoder.name, samples=int(samples),
                                          latency_seconds=encoder.encoding_latency(samples),
                                          has_time_bottleneck=encoder.has_time_bottleneck))
    return rows


# --------------------------------------------------------------------------- #
# 5. pruning baseline comparison
# --------------------------------------------------------------------------- #
@dataclass
class PruningRow:
    configuration: str
    sparsity: float
    accuracy: float
    mzi_fraction: float        # relative to the dense conventional ONN


def run_pruning_comparison(preset: str = "bench", sparsities: Sequence[float] = (0.5, 0.75, 0.9),
                           seed: int = 0) -> List[PruningRow]:
    """Prune the conventional ONN to OplixNet-level area and compare accuracy."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload("fcnn")
    config = workload_config(workload, preset_obj, seed=seed)
    pipeline = OplixNet(config)

    conventional, _history = pipeline.train_reference("cvnn")
    _train_loader, test_loader = pipeline.loaders()
    conventional_scheme = get_scheme("conventional")
    dense_report = model_area_report(conventional)

    rows: List[PruningRow] = [PruningRow(
        configuration="conventional ONN (dense)", sparsity=0.0,
        accuracy=evaluate_accuracy(conventional, test_loader, conventional_scheme),
        mzi_fraction=1.0)]

    for sparsity in sparsities:
        pruned, _ = pipeline.train_reference("cvnn")
        magnitude_prune_model(pruned, sparsity)
        accuracy = evaluate_accuracy(pruned, test_loader, conventional_scheme)
        area = pruned_area_report(pruned, sparsity)
        rows.append(PruningRow(configuration=f"pruned ONN [18] (s={sparsity:.2f})",
                               sparsity=float(sparsity), accuracy=accuracy,
                               mzi_fraction=area.total_mzis / dense_report.total_mzis))

    student, _ = pipeline.train_student(mutual_learning=False)
    student_report = model_area_report(student)
    rows.append(PruningRow(configuration="OplixNet (proposed)", sparsity=0.0,
                           accuracy=evaluate_accuracy(student, test_loader, pipeline.student_scheme()),
                           mzi_fraction=student_report.total_mzis / dense_report.total_mzis))
    return rows


# --------------------------------------------------------------------------- #
# formatting helpers
# --------------------------------------------------------------------------- #
def format_alpha_sweep(points: Sequence[AlphaSweepPoint]) -> str:
    return format_table(["alpha", "student acc", "teacher acc"],
                        [[p.alpha, percent(p.student_accuracy), percent(p.teacher_accuracy)]
                         for p in points],
                        title="Ablation -- distillation mixing factor")


def format_mesh_comparison(rows: Sequence[MeshComparisonRow]) -> str:
    return format_table(["n", "method", "#MZI", "optical depth", "reconstruction error"],
                        [[r.dimension, r.method, r.mzi_count, r.optical_depth,
                          f"{r.reconstruction_error:.2e}"] for r in rows],
                        title="Ablation -- Reck vs Clements meshes")


def format_noise_robustness(points: Sequence[NoisePoint]) -> str:
    return format_table(["phase noise sigma", "split ONN acc", "conventional ONN acc"],
                        [[p.sigma, percent(p.split_onn_accuracy),
                          percent(p.conventional_onn_accuracy)] for p in points],
                        title="Ablation -- phase-noise robustness of deployed circuits")


def format_pruning(rows: Sequence[PruningRow]) -> str:
    return format_table(["configuration", "sparsity", "accuracy", "MZI fraction"],
                        [[r.configuration, f"{r.sparsity:.2f}", percent(r.accuracy),
                          f"{r.mzi_fraction:.3f}"] for r in rows],
                        title="Ablation -- pruning baseline [18] vs OplixNet")
