"""Table II: accuracy and MZI area of OplixNet versus the original ONN.

For each of the four workloads the harness trains

* the original ONN ("Orig.", CVNN with conventional assignment, photodiode
  readout),
* the real-valued reference (RVNN), and
* the proposed OplixNet model ("Prop.", SCVNN with the paper's assignment,
  merge decoder and SCVNN-CVNN mutual learning),

reports their test accuracy at the preset's CPU scale, and counts the MZIs of
the original and proposed networks at the paper's full model sizes (where the
counts and the ~75% reduction match the paper's Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.area_analysis import compare_area
from repro.core.pipeline import OplixNet
from repro.experiments.common import WORKLOADS, Workload, paper_specs, workload_config
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table, percent
from repro.models import build_model


@dataclass
class Table2Row:
    """One row of Table II."""

    model: str
    original_accuracy: float
    rvnn_accuracy: float
    proposed_accuracy: float
    original_mzis: int
    proposed_mzis: int
    mzi_reduction: float


def paper_area_numbers(workload: Workload) -> dict:
    """Exact MZI counts of the proposed and original networks at paper scale."""
    scvnn_spec, cvnn_spec = paper_specs(workload)
    comparison = compare_area(build_model(scvnn_spec), build_model(cvnn_spec))
    return {
        "original_mzis": int(comparison["baseline_mzis"]),
        "proposed_mzis": int(comparison["proposed_mzis"]),
        "mzi_reduction": float(comparison["reduction"]),
    }


def run_workload(workload: Workload, preset: Preset, seed: int = 0,
                 mutual_learning: bool = True) -> Table2Row:
    """Train the three variants of one workload and assemble its Table II row."""
    config = workload_config(workload, preset, seed=seed)
    pipeline = OplixNet(config)

    _student, outcome = pipeline.train_student(mutual_learning=mutual_learning)
    proposed_accuracy = (outcome.student_test_accuracy if mutual_learning
                         else outcome.final_test_accuracy)

    _cvnn, cvnn_history = pipeline.train_reference("cvnn")
    _rvnn, rvnn_history = pipeline.train_reference("rvnn")

    area = paper_area_numbers(workload)
    return Table2Row(
        model=workload.display_name,
        original_accuracy=cvnn_history.final_test_accuracy,
        rvnn_accuracy=rvnn_history.final_test_accuracy,
        proposed_accuracy=proposed_accuracy,
        original_mzis=area["original_mzis"],
        proposed_mzis=area["proposed_mzis"],
        mzi_reduction=area["mzi_reduction"],
    )


def run_table2(preset: str = "bench", workloads: Optional[Sequence[str]] = None,
               seed: int = 0, mutual_learning: bool = True) -> List[Table2Row]:
    """Reproduce Table II for the selected workloads (defaults to all four)."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    selected = WORKLOADS if workloads is None else [w for w in WORKLOADS if w.key in set(workloads)]
    return [run_workload(workload, preset_obj, seed=seed, mutual_learning=mutual_learning)
            for workload in selected]


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Print the rows in the layout of the paper's Table II."""
    headers = ["Model", "Acc Orig.", "Acc RVNN", "Acc Prop.",
               "#MZI Orig. (x1e4)", "#MZI Prop. (x1e4)", "#MZI Red."]
    table_rows = [
        [row.model,
         percent(row.original_accuracy),
         percent(row.rvnn_accuracy),
         percent(row.proposed_accuracy),
         f"{row.original_mzis / 1e4:.1f}",
         f"{row.proposed_mzis / 1e4:.1f}",
         percent(row.mzi_reduction)]
        for row in rows
    ]
    return format_table(headers, table_rows, title="Table II -- OplixNet vs original ONN")


if __name__ == "__main__":
    print(format_table2(run_table2(preset="bench")))
