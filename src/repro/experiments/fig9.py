"""Figure 9: comparison of the output decoder designs.

For every workload the SCVNN student is trained with each decoder head --
"Merge" (proposed), "Linear", "Unitary" and the "Coherent" detection baseline
of [16] -- and the harness reports the test accuracy together with the model
area normalised so that the coherent configuration is 100% (the paper's
normalisation).  The expected shape: Merge adds only a fraction of a percent
of area over Coherent and reaches the best accuracy of the learnable decoders,
while Linear and Unitary cost more area.

:func:`run_fig9_hardware` extends the figure beyond the paper: each decoder
variant is additionally *deployed* onto simulated MZI meshes and evaluated
under a Monte-Carlo ensemble of phase-noise realizations.  The ensemble runs
as one trials-batched pass through the compiled mesh engine, so the sweep
costs one vectorized forward per (decoder, sigma) instead of one mesh rebuild
per trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.area_analysis import model_area_report
from repro.core.pipeline import OplixNet
from repro.experiments.common import WORKLOADS, Workload, get_workload, paper_specs, workload_config
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table, percent
from repro.models import build_model
from repro.photonics.noise import PhaseNoiseModel

#: decoder configurations compared in the paper's Fig. 9
FIG9_DECODERS = ("merge", "linear", "unitary", "coherent")


@dataclass
class Fig9Row:
    """Accuracy and normalised area of one (workload, decoder) pair."""

    model: str
    decoder: str
    accuracy: float
    normalized_area: float     # 1.0 == the coherent-detection configuration
    extra_readout: bool        # True if the decoder needs reference light / post-processing


def normalized_area_at_paper_scale(workload: Workload, decoder: str) -> float:
    """Model area with the given decoder, normalised to the coherent baseline."""
    scvnn_spec, _ = paper_specs(workload, decoder=decoder)
    coherent_spec, _ = paper_specs(workload, decoder="coherent")
    area = model_area_report(build_model(scvnn_spec)).total_mzis
    coherent_area = model_area_report(build_model(coherent_spec)).total_mzis
    return area / coherent_area


def run_pair(workload: Workload, decoder: str, preset: Preset, seed: int = 0,
             mutual_learning: bool = False) -> Fig9Row:
    """Train the SCVNN of one workload with one decoder head."""
    config = workload_config(workload, preset, seed=seed, decoder=decoder)
    pipeline = OplixNet(config)
    _student, outcome = pipeline.train_student(mutual_learning=mutual_learning)
    accuracy = (outcome.student_test_accuracy if mutual_learning
                else outcome.final_test_accuracy)
    return Fig9Row(model=workload.display_name, decoder=decoder, accuracy=accuracy,
                   normalized_area=normalized_area_at_paper_scale(workload, decoder),
                   extra_readout=(decoder == "coherent"))


def run_fig9(preset: str = "bench", workloads: Optional[Sequence[str]] = None,
             decoders: Sequence[str] = FIG9_DECODERS, seed: int = 0,
             mutual_learning: bool = False) -> List[Fig9Row]:
    """Reproduce the Fig. 9 sweep for the selected workloads (default: all four)."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    keys = [w.key for w in WORKLOADS] if workloads is None else list(workloads)
    rows: List[Fig9Row] = []
    for key in keys:
        workload = get_workload(key)
        for decoder in decoders:
            rows.append(run_pair(workload, decoder, preset_obj, seed=seed,
                                 mutual_learning=mutual_learning))
    return rows


@dataclass
class Fig9HardwareRow:
    """Deployed-on-hardware accuracy of one decoder under phase noise."""

    decoder: str
    sigma: float
    trials: int
    noiseless_accuracy: float  # deployed circuit without phase errors
    deployed_accuracy: float   # Monte-Carlo mean over the noise ensemble


def run_fig9_hardware(preset: str = "bench", decoders: Sequence[str] = FIG9_DECODERS,
                      sigmas: Sequence[float] = (0.0, 0.03), trials: int = 8,
                      seed: int = 0, eval_samples: int = 96) -> List[Fig9HardwareRow]:
    """Deploy each decoder variant onto meshes and sweep a phase-noise ensemble.

    Uses the FCNN workload.  For every decoder the trained student is deployed
    once; the whole sweep then runs as a single ``(sigmas, trials)`` batched
    mesh ensemble -- the sigma axis is an array axis of the noise model, not a
    Python loop.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload("fcnn")
    rows: List[Fig9HardwareRow] = []
    for decoder in decoders:
        config = workload_config(workload, preset_obj, seed=seed, decoder=decoder)
        pipeline = OplixNet(config)
        student, _ = pipeline.train_student(mutual_learning=False)
        deployed = pipeline.deploy(student)
        # evaluate through the plan runtime: compiling the plan up front keeps
        # the noiseless pass and the batched ensemble off the interpreted walk
        deployed.plan()
        scheme = pipeline.student_scheme()

        _train, test = pipeline.datasets()
        count = min(eval_samples, len(test))
        images = np.stack([test[i][0] for i in range(count)])
        labels = np.array([test[i][1] for i in range(count)])
        noiseless_accuracy = float((deployed.classify(images, scheme) == labels).mean())

        # the sigma sweep rides along the trials axis: one (sigmas, trials)
        # batched ensemble, one vectorized forward pass per decoder
        sigma_axis = np.asarray(list(sigmas), dtype=float)
        noise = PhaseNoiseModel(sigma=sigma_axis, rng=np.random.default_rng(seed + 17))
        noisy = deployed.with_noise(noise=noise, trials=trials)
        hits = noisy.classify(images, scheme) == labels      # (sigmas, trials, samples)
        accuracies = hits.mean(axis=(1, 2))
        for index, sigma in enumerate(sigma_axis):
            rows.append(Fig9HardwareRow(decoder=decoder, sigma=float(sigma),
                                        trials=int(trials),
                                        noiseless_accuracy=noiseless_accuracy,
                                        deployed_accuracy=float(accuracies[index])))
    return rows


def format_fig9_hardware(rows: Sequence[Fig9HardwareRow]) -> str:
    headers = ["Decoder", "sigma", "trials", "Deployed accuracy", "Noiseless accuracy"]
    table_rows = [[row.decoder, f"{row.sigma:.3f}", row.trials,
                   percent(row.deployed_accuracy), percent(row.noiseless_accuracy)]
                  for row in rows]
    return format_table(headers, table_rows,
                        title="Figure 9 (hardware) -- deployed decoders under phase noise")


def format_fig9(rows: Sequence[Fig9Row]) -> str:
    headers = ["Model", "Decoder", "Accuracy", "Area (vs coherent)", "Extra readout"]
    table_rows = [[row.model, row.decoder, percent(row.accuracy),
                   percent(row.normalized_area), "yes" if row.extra_readout else "no"]
                  for row in rows]
    return format_table(headers, table_rows, title="Figure 9 -- decoder comparison")


if __name__ == "__main__":
    print(format_fig9(run_fig9(preset="bench")))
