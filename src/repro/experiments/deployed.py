"""Deployed-model evaluation harnesses (extends the paper's Fig. 2 workflow).

The paper's deployment demonstrator covered the FCNN family; with the graph
compiler every Table 2/3 architecture deploys.  ``run_deployed_cnn`` trains
the SCVNN LeNet-5 student at CPU scale and ``run_deployed_resnet`` the SCVNN
ResNet student (lowered to a dataflow graph with photonic branch stages and
electronic skip-add nodes); both compile through :func:`repro.compile` and
report

* the software-vs-deployed fidelity (max logit error and accuracy agreement
  of the noiseless circuit), and
* a phase-noise robustness sweep of the deployed model, run as one
  ``(sigmas, trials)`` batched Monte-Carlo ensemble through the compiled
  mesh engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.compile import CompileOptions
from repro.core.pipeline import OplixNet
from repro.core.training import prepare_batch
from repro.experiments.common import get_workload, workload_config
from repro.experiments.presets import get_preset
from repro.experiments.reporting import format_table, percent
from repro.photonics.noise import PhaseNoiseModel
from repro.tensor import no_grad


@dataclass
class DeployedModelRow:
    """Fidelity and robustness of one deployed model at one noise level."""

    workload: str
    decoder: str
    sigma: float
    trials: int
    software_accuracy: float
    deployed_accuracy: float     # noiseless deployed circuit
    noisy_accuracy: float        # Monte-Carlo mean over the ensemble
    max_logit_error: float       # noiseless deployed vs software logits
    mzi_count: int


#: historical name (the harness originally covered only the CNN workload)
DeployedCnnRow = DeployedModelRow


def _deploy_and_sweep(workload_key: str, preset, decoder: str,
                      sigmas: Sequence[float], trials: int, seed: int,
                      eval_samples: int, method: str, backend: str,
                      mutual_learning: bool) -> List[DeployedModelRow]:
    """Train one workload's student, compile it and run the noise sweep."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload(workload_key)
    config = workload_config(workload, preset_obj, seed=seed, decoder=decoder)
    pipeline = OplixNet(config)
    student, _ = pipeline.train_student(mutual_learning=mutual_learning)
    scheme = pipeline.student_scheme()
    deployed = pipeline.deploy(student, method=method,
                               options=CompileOptions(backend=backend))
    # compile the execution plan eagerly so the evaluation passes below run
    # through the plan runtime (fused dense stages, reused buffers) rather
    # than paying plan compilation inside the first timed/evaluated forward
    deployed.plan()

    _train, test = pipeline.datasets()
    count = min(eval_samples, len(test))
    images = np.stack([test[i][0] for i in range(count)])
    labels = np.array([test[i][1] for i in range(count)])

    with no_grad():
        software_logits = student(prepare_batch(images, scheme)).data
    deployed_logits = deployed.predict_logits(images, scheme)
    max_logit_error = float(np.abs(deployed_logits - software_logits).max())
    software_accuracy = float((software_logits.argmax(axis=-1) == labels).mean())
    deployed_accuracy = float((deployed_logits.argmax(axis=-1) == labels).mean())

    sigma_axis = np.asarray(list(sigmas), dtype=float)
    noise = PhaseNoiseModel(sigma=sigma_axis, rng=np.random.default_rng(seed + 17))
    noisy = deployed.with_noise(noise=noise, trials=trials)
    noisy.plan()     # the ensemble sweep executes through its own plan
    hits = noisy.classify(images, scheme) == labels          # (sigmas, trials, samples)
    noisy_accuracies = hits.mean(axis=(1, 2))

    return [DeployedModelRow(workload=workload.display_name, decoder=decoder,
                             sigma=float(sigma), trials=int(trials),
                             software_accuracy=software_accuracy,
                             deployed_accuracy=deployed_accuracy,
                             noisy_accuracy=float(noisy_accuracies[index]),
                             max_logit_error=max_logit_error,
                             mzi_count=deployed.mzi_count)
            for index, sigma in enumerate(sigma_axis)]


def run_deployed_cnn(preset: str = "bench", decoder: str = "merge",
                     sigmas: Sequence[float] = (0.0, 0.01, 0.03),
                     trials: int = 8, seed: int = 0, eval_samples: int = 64,
                     method: str = "clements", backend: str = "auto",
                     mutual_learning: bool = False) -> List[DeployedModelRow]:
    """Train, compile and noise-sweep the complex LeNet-5 student.

    The deployed forward must match the software model to numerical precision
    when noiseless; the sweep then degrades gracefully with sigma.  One row
    per sigma is returned; fidelity columns repeat across rows.
    """
    return _deploy_and_sweep("lenet5", preset, decoder, sigmas, trials, seed,
                             eval_samples, method, backend, mutual_learning)


def run_deployed_resnet(preset: str = "bench", decoder: str = "merge",
                        sigmas: Sequence[float] = (0.0, 0.01, 0.03),
                        trials: int = 4, seed: int = 0, eval_samples: int = 32,
                        method: str = "clements", backend: str = "auto",
                        mutual_learning: bool = False) -> List[DeployedModelRow]:
    """Train, compile and noise-sweep the complex ResNet student.

    The residual student lowers to a graph-shaped program -- photonic im2col
    stages on each branch, skip additions and folded batch norms in the
    electronic domain -- so this harness exercises the full graph compiler
    end to end (the noiseless circuit must agree with the eval-mode software
    forward to numerical precision).
    """
    return _deploy_and_sweep("resnet20", preset, decoder, sigmas, trials, seed,
                             eval_samples, method, backend, mutual_learning)


def _format_rows(rows: Sequence[DeployedModelRow], title: str) -> str:
    headers = ["Model", "Decoder", "sigma", "trials", "Software acc",
               "Deployed acc", "Noisy acc", "Max logit err", "#MZI"]
    table_rows = [[row.workload, row.decoder, f"{row.sigma:.3f}", row.trials,
                   percent(row.software_accuracy), percent(row.deployed_accuracy),
                   percent(row.noisy_accuracy), f"{row.max_logit_error:.2e}",
                   row.mzi_count]
                  for row in rows]
    return format_table(headers, table_rows, title=title)


def format_deployed_cnn(rows: Sequence[DeployedModelRow]) -> str:
    return _format_rows(rows, title="Deployed CNN -- im2col lowering onto MZI meshes")


def format_deployed_resnet(rows: Sequence[DeployedModelRow]) -> str:
    return _format_rows(rows, title="Deployed ResNet -- graph compiler "
                                    "(photonic branches + electronic skip adds)")


if __name__ == "__main__":
    print(format_deployed_cnn(run_deployed_cnn(preset="bench")))
    print(format_deployed_resnet(run_deployed_resnet(preset="bench")))
