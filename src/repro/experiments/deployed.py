"""Deployed-CNN evaluation harness (extends the paper's Fig. 2 workflow).

The paper's deployment demonstrator covered the FCNN family; with the im2col
lowering pipeline the convolutional workloads deploy too.  This harness
trains the SCVNN LeNet-5 student at CPU scale, lowers it onto MZI meshes
(:func:`repro.core.deploy.deploy_model`) and reports

* the software-vs-deployed fidelity (max logit error and accuracy agreement
  of the noiseless circuit), and
* a phase-noise robustness sweep of the deployed CNN, run as one
  ``(sigmas, trials)`` batched Monte-Carlo ensemble through the compiled
  mesh engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.pipeline import OplixNet
from repro.core.training import prepare_batch
from repro.experiments.common import get_workload, workload_config
from repro.experiments.presets import get_preset
from repro.experiments.reporting import format_table, percent
from repro.photonics.noise import PhaseNoiseModel
from repro.tensor import no_grad


@dataclass
class DeployedCnnRow:
    """Fidelity and robustness of one deployed convolutional model."""

    workload: str
    decoder: str
    sigma: float
    trials: int
    software_accuracy: float
    deployed_accuracy: float     # noiseless deployed circuit
    noisy_accuracy: float        # Monte-Carlo mean over the ensemble
    max_logit_error: float       # noiseless deployed vs software logits
    mzi_count: int


def run_deployed_cnn(preset: str = "bench", decoder: str = "merge",
                     sigmas: Sequence[float] = (0.0, 0.01, 0.03),
                     trials: int = 8, seed: int = 0, eval_samples: int = 64,
                     method: str = "clements",
                     mutual_learning: bool = False) -> List[DeployedCnnRow]:
    """Train, deploy and noise-sweep the complex LeNet-5 student.

    The deployed forward must match the software model to numerical precision
    when noiseless; the sweep then degrades gracefully with sigma.  One row
    per sigma is returned; fidelity columns repeat across rows.
    """
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    workload = get_workload("lenet5")
    config = workload_config(workload, preset_obj, seed=seed, decoder=decoder)
    pipeline = OplixNet(config)
    student, _ = pipeline.train_student(mutual_learning=mutual_learning)
    scheme = pipeline.student_scheme()
    deployed = pipeline.deploy(student, method=method)

    _train, test = pipeline.datasets()
    count = min(eval_samples, len(test))
    images = np.stack([test[i][0] for i in range(count)])
    labels = np.array([test[i][1] for i in range(count)])

    with no_grad():
        software_logits = student(prepare_batch(images, scheme)).data
    deployed_logits = deployed.predict_logits(images, scheme)
    max_logit_error = float(np.abs(deployed_logits - software_logits).max())
    software_accuracy = float((software_logits.argmax(axis=-1) == labels).mean())
    deployed_accuracy = float((deployed_logits.argmax(axis=-1) == labels).mean())

    sigma_axis = np.asarray(list(sigmas), dtype=float)
    noise = PhaseNoiseModel(sigma=sigma_axis, rng=np.random.default_rng(seed + 17))
    noisy = deployed.with_noise(noise=noise, trials=trials)
    hits = noisy.classify(images, scheme) == labels          # (sigmas, trials, samples)
    noisy_accuracies = hits.mean(axis=(1, 2))

    return [DeployedCnnRow(workload=workload.display_name, decoder=decoder,
                           sigma=float(sigma), trials=int(trials),
                           software_accuracy=software_accuracy,
                           deployed_accuracy=deployed_accuracy,
                           noisy_accuracy=float(noisy_accuracies[index]),
                           max_logit_error=max_logit_error,
                           mzi_count=deployed.mzi_count)
            for index, sigma in enumerate(sigma_axis)]


def format_deployed_cnn(rows: Sequence[DeployedCnnRow]) -> str:
    headers = ["Model", "Decoder", "sigma", "trials", "Software acc",
               "Deployed acc", "Noisy acc", "Max logit err", "#MZI"]
    table_rows = [[row.workload, row.decoder, f"{row.sigma:.3f}", row.trials,
                   percent(row.software_accuracy), percent(row.deployed_accuracy),
                   percent(row.noisy_accuracy), f"{row.max_logit_error:.2e}",
                   row.mzi_count]
                  for row in rows]
    return format_table(headers, table_rows,
                        title="Deployed CNN -- im2col lowering onto MZI meshes")


if __name__ == "__main__":
    print(format_deployed_cnn(run_deployed_cnn(preset="bench")))
