"""Experiment harnesses reproducing every table and figure of the paper.

Each module exposes a ``run_*`` function returning structured results plus a
``format_*`` helper printing the same rows/series the paper reports:

* :mod:`~repro.experiments.table2` -- Table II: accuracy and #MZI of the
  proposed OplixNet versus the original ONN and the RVNN reference.
* :mod:`~repro.experiments.table3` -- Table III: SCVNN accuracy with and
  without SCVNN-CVNN mutual learning.
* :mod:`~repro.experiments.fig7` -- Figure 7: comparison with the OFFT
  architecture [19] on four FCNN configurations.
* :mod:`~repro.experiments.fig8` -- Figure 8: comparison of real-to-complex
  data assignment schemes.
* :mod:`~repro.experiments.fig9` -- Figure 9: comparison of output decoders.
* :mod:`~repro.experiments.ablations` -- additional ablations (distillation
  alpha, mesh decomposition, phase-noise robustness, encoder throughput,
  pruning baseline).
* :mod:`~repro.experiments.deployed` -- deployed-CNN evaluation: the complex
  LeNet-5 lowered onto MZI meshes via im2col, with a batched phase-noise
  Monte-Carlo sweep.

Accuracy numbers are obtained on synthetic dataset stand-ins at CPU scale
(see ``DESIGN.md``); MZI/DC/PS counts are always evaluated on the paper's
full-size model configurations, where they match the paper almost exactly.
"""

from repro.experiments.presets import Preset, get_preset, PRESETS
from repro.experiments import reporting

__all__ = ["Preset", "get_preset", "PRESETS", "reporting"]
