"""Shared workload definitions used by several experiment harnesses.

The paper evaluates four model/dataset pairs (Table II):

==========  ==========  =================================
model       dataset     assignment used by OplixNet
==========  ==========  =================================
FCNN-100    MNIST       spatial interlace ("SI")
LeNet-5     CIFAR-10    channel lossless ("CL")
ResNet-20   CIFAR-10    channel lossless ("CL")
ResNet-32   CIFAR-100   channel lossless ("CL")
==========  ==========  =================================

``workload_configs`` materialises these four workloads for a given preset
(training scale) and ``paper_specs`` returns the full-size model
specifications used for the exact MZI accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ExperimentConfig, TrainingConfig
from repro.experiments.presets import Preset
from repro.models import ModelSpec


@dataclass
class Workload:
    """One model/dataset pair of the paper's evaluation."""

    key: str                     # "fcnn", "lenet5", "resnet20", "resnet32"
    display_name: str            # name used in the printed tables
    architecture: str
    dataset: str
    assignment: str
    depth: int = 20              # only meaningful for ResNets
    teacher_depth: Optional[int] = None
    paper_depth: int = 20        # depth used for the exact area accounting
    paper_num_classes: int = 10


WORKLOADS: List[Workload] = [
    Workload(key="fcnn", display_name="FCNN", architecture="fcnn", dataset="mnist",
             assignment="SI", paper_num_classes=10),
    Workload(key="lenet5", display_name="LeNet-5", architecture="lenet5", dataset="cifar10",
             assignment="CL", paper_num_classes=10),
    Workload(key="resnet20", display_name="ResNet-20", architecture="resnet", dataset="cifar10",
             assignment="CL", depth=20, teacher_depth=56, paper_depth=20, paper_num_classes=10),
    Workload(key="resnet32", display_name="ResNet-32", architecture="resnet", dataset="cifar100",
             assignment="CL", depth=32, teacher_depth=56, paper_depth=32, paper_num_classes=100),
]


def get_workload(key: str) -> Workload:
    for workload in WORKLOADS:
        if workload.key == key:
            return workload
    raise KeyError(f"unknown workload {key!r}; known: {[w.key for w in WORKLOADS]}")


def training_config(preset: Preset, seed: int = 0, **overrides) -> TrainingConfig:
    """Training schedule derived from a preset (override any field by keyword)."""
    base = dict(epochs=preset.epochs, batch_size=preset.batch_size,
                learning_rate=preset.learning_rate, seed=seed)
    base.update(overrides)
    return TrainingConfig(**base)


def workload_config(workload: Workload, preset: Preset, seed: int = 0,
                    assignment: Optional[str] = None, decoder: str = "merge",
                    **training_overrides) -> ExperimentConfig:
    """Build the CPU-scale :class:`ExperimentConfig` of one workload."""
    if workload.dataset == "mnist":
        image_size, channels, num_classes = preset.fcnn_image, 1, 10
    elif workload.dataset == "cifar10":
        image_size, channels, num_classes = preset.cnn_image, 3, 10
    else:  # cifar100 stand-in
        image_size, channels, num_classes = preset.cnn_image, 3, preset.cifar100_classes

    if workload.architecture == "resnet":
        depth = preset.resnet_small_depth if workload.key == "resnet20" else preset.resnet_large_depth
        teacher_depth = preset.resnet_teacher_depth
    else:
        depth = workload.depth
        teacher_depth = None

    # the paper's LeNet uses 5x5 valid convolutions; shrunken preset images
    # switch to 3x3 "same" convolutions so the two pooling stages still fit
    lenet_kernel, lenet_padding = (5, 0) if preset.name == "paper" else (3, 1)

    return ExperimentConfig(
        name=f"{workload.key}-{preset.name}",
        architecture=workload.architecture,
        dataset=workload.dataset,
        num_classes=num_classes,
        image_size=image_size,
        channels=channels,
        assignment=assignment if assignment is not None else workload.assignment,
        decoder=decoder,
        depth=depth,
        teacher_depth=teacher_depth,
        width_divider=preset.width_divider,
        lenet_kernel=lenet_kernel,
        lenet_padding=lenet_padding,
        train_samples=preset.train_samples,
        test_samples=preset.test_samples,
        training=training_config(preset, seed=seed, **training_overrides),
        seed=seed,
    )


def paper_specs(workload: Workload, assignment: Optional[str] = None,
                decoder: str = "merge") -> Tuple[ModelSpec, ModelSpec]:
    """Full-size (paper-scale) model specs: ``(proposed SCVNN, original CVNN)``.

    These are used purely for MZI accounting, which is exact arithmetic and
    therefore always evaluated at the paper's sizes regardless of preset.
    """
    if workload.dataset == "mnist":
        input_shape, num_classes = (1, 28, 28), 10
    elif workload.dataset == "cifar10":
        input_shape, num_classes = (3, 32, 32), 10
    else:
        input_shape, num_classes = (3, 32, 32), workload.paper_num_classes

    scvnn = ModelSpec(architecture=workload.architecture, flavour="scvnn",
                      input_shape=input_shape, num_classes=num_classes,
                      assignment=assignment if assignment is not None else workload.assignment,
                      decoder=decoder, depth=workload.paper_depth)
    cvnn = ModelSpec(architecture=workload.architecture, flavour="cvnn",
                     input_shape=input_shape, num_classes=num_classes,
                     decoder="photodiode", depth=workload.paper_depth)
    return scvnn, cvnn
