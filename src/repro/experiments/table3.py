"""Table III: effect of SCVNN-CVNN mutual learning on the split networks.

For each CNN workload the SCVNN student is trained twice with identical
hyper-parameters: once with plain cross-entropy and once jointly with its CVNN
teacher (the next larger model of the family: ResNet-56 for the ResNets,
another LeNet-5 for LeNet-5).  The paper's finding -- mutual learning recovers
accuracy, with the largest gain on the deepest student -- is what the harness
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.pipeline import OplixNet
from repro.experiments.common import WORKLOADS, Workload, workload_config
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table, percent

#: the workloads of the paper's Table III (the FCNN row is not part of it)
TABLE3_WORKLOAD_KEYS = ("lenet5", "resnet20", "resnet32")

#: teacher names as printed in the paper
TEACHER_NAMES = {"lenet5": "LeNet-5", "resnet20": "ResNet-56", "resnet32": "ResNet-56"}


@dataclass
class Table3Row:
    """One row of Table III."""

    model: str
    dataset: str
    accuracy_without_ml: float
    accuracy_with_ml: float
    teacher: str

    @property
    def improvement(self) -> float:
        return self.accuracy_with_ml - self.accuracy_without_ml


def run_workload(workload: Workload, preset: Preset, seed: int = 0) -> Table3Row:
    """Train one workload with and without mutual learning."""
    config = workload_config(workload, preset, seed=seed)

    pipeline_plain = OplixNet(config)
    _student_plain, history = pipeline_plain.train_student(mutual_learning=False)
    accuracy_without = history.final_test_accuracy

    pipeline_ml = OplixNet(config)
    _student_ml, result = pipeline_ml.train_student(mutual_learning=True)
    accuracy_with = result.student_test_accuracy

    return Table3Row(
        model=workload.display_name,
        dataset=workload.dataset.upper(),
        accuracy_without_ml=accuracy_without,
        accuracy_with_ml=accuracy_with,
        teacher=TEACHER_NAMES[workload.key],
    )


def run_table3(preset: str = "bench", workloads: Optional[Sequence[str]] = None,
               seed: int = 0) -> List[Table3Row]:
    """Reproduce Table III for the selected workloads."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    keys = TABLE3_WORKLOAD_KEYS if workloads is None else tuple(workloads)
    selected = [w for w in WORKLOADS if w.key in keys]
    return [run_workload(workload, preset_obj, seed=seed) for workload in selected]


def format_table3(rows: Sequence[Table3Row]) -> str:
    headers = ["Model", "Dataset", "Acc w/o ML", "Acc w/ ML", "Gain", "CVNN teacher"]
    table_rows = [
        [row.model, row.dataset, percent(row.accuracy_without_ml),
         percent(row.accuracy_with_ml), percent(row.improvement), row.teacher]
        for row in rows
    ]
    return format_table(headers, table_rows,
                        title="Table III -- SCVNN-CVNN mutual learning")


if __name__ == "__main__":
    print(format_table3(run_table3(preset="bench")))
