"""Workload presets controlling the size of the experiment harness runs.

The area model is exact arithmetic and is always evaluated at the paper's full
model sizes.  Training, however, runs in pure numpy on CPU, so the accuracy
side of every experiment is scaled by a preset:

* ``smoke``  -- minimal sizes used by the unit/integration tests.
* ``bench``  -- the default for the pytest-benchmark harness: small images,
  shallow ResNets, a few epochs; finishes in seconds per experiment while the
  qualitative trends (which scheme/decoder wins, whether mutual learning
  helps) remain visible.
* ``paper``  -- the full configuration of the paper (28x28 / 32x32 images,
  ResNet-20/32/56, hundreds of epochs).  Provided for completeness; running it
  in numpy on CPU is not practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Preset:
    """Scaling knobs of one experiment run."""

    name: str
    #: image sizes used for training
    fcnn_image: Tuple[int, int]
    cnn_image: Tuple[int, int]
    #: dataset sizes
    train_samples: int
    test_samples: int
    #: training schedule
    epochs: int
    batch_size: int
    learning_rate: float
    #: ResNet depths used for training (student, deep-student, teacher)
    resnet_small_depth: int
    resnet_large_depth: int
    resnet_teacher_depth: int
    #: divider applied to every channel / hidden width for training
    width_divider: float
    #: class count used for the CIFAR-100 stand-in
    cifar100_classes: int

    def fcnn_features(self) -> int:
        return self.fcnn_image[0] * self.fcnn_image[1]


PRESETS: Dict[str, Preset] = {
    "smoke": Preset(
        name="smoke", fcnn_image=(8, 8), cnn_image=(12, 12),
        train_samples=200, test_samples=80,
        epochs=2, batch_size=32, learning_rate=0.05,
        resnet_small_depth=8, resnet_large_depth=8, resnet_teacher_depth=8,
        width_divider=4.0, cifar100_classes=5,
    ),
    "bench": Preset(
        name="bench", fcnn_image=(14, 14), cnn_image=(16, 16),
        train_samples=600, test_samples=200,
        epochs=4, batch_size=32, learning_rate=0.05,
        resnet_small_depth=8, resnet_large_depth=8, resnet_teacher_depth=14,
        width_divider=2.0, cifar100_classes=10,
    ),
    "paper": Preset(
        name="paper", fcnn_image=(28, 28), cnn_image=(32, 32),
        train_samples=50000, test_samples=10000,
        epochs=200, batch_size=128, learning_rate=0.1,
        resnet_small_depth=20, resnet_large_depth=32, resnet_teacher_depth=56,
        width_divider=1.0, cifar100_classes=100,
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name ("smoke", "bench" or "paper")."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name]
