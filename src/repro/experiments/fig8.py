"""Figure 8: comparison of real-to-complex data assignment schemes.

For the FCNN/MNIST workload the spatial schemes (SI, SH, SS) are compared --
they all give the same ~75% area reduction, so the interesting quantity is the
accuracy ordering (interlaced neighbours > distant pairs).  For the three CNN
workloads the channel schemes (CL, CR) are compared against applying the
spatial interlace (SI), which cannot shrink convolution kernels; CR shrinks
the network further but loses information in the colour remapping.

Each bar of the paper's figure corresponds to one (workload, scheme) pair with
its accuracy and area-reduction ratio; the harness reports exactly those pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.area_analysis import compare_area
from repro.core.pipeline import OplixNet
from repro.experiments.common import WORKLOADS, Workload, get_workload, paper_specs, workload_config
from repro.experiments.presets import Preset, get_preset
from repro.experiments.reporting import format_table, percent
from repro.models import build_model

#: assignment schemes compared per workload (as in the paper's Fig. 8)
FIG8_SCHEMES: Dict[str, Tuple[str, ...]] = {
    "fcnn": ("SI", "SH", "SS"),
    "lenet5": ("SI", "CL", "CR"),
    "resnet20": ("SI", "CL", "CR"),
    "resnet32": ("SI", "CL", "CR"),
}


@dataclass
class Fig8Row:
    """Accuracy and area reduction of one (workload, assignment) pair."""

    model: str
    scheme: str
    accuracy: float
    area_reduction: float


def area_reduction_at_paper_scale(workload: Workload, scheme: str) -> float:
    """Exact area reduction of the given assignment at the paper's model sizes."""
    scvnn_spec, cvnn_spec = paper_specs(workload, assignment=scheme)
    comparison = compare_area(build_model(scvnn_spec), build_model(cvnn_spec))
    return float(comparison["reduction"])


def run_pair(workload: Workload, scheme: str, preset: Preset, seed: int = 0,
             mutual_learning: bool = False) -> Fig8Row:
    """Train the SCVNN of one workload with one assignment scheme."""
    config = workload_config(workload, preset, seed=seed, assignment=scheme)
    pipeline = OplixNet(config)
    _student, outcome = pipeline.train_student(mutual_learning=mutual_learning)
    accuracy = (outcome.student_test_accuracy if mutual_learning
                else outcome.final_test_accuracy)
    return Fig8Row(model=workload.display_name, scheme=scheme, accuracy=accuracy,
                   area_reduction=area_reduction_at_paper_scale(workload, scheme))


def run_fig8(preset: str = "bench", workloads: Optional[Sequence[str]] = None,
             seed: int = 0, mutual_learning: bool = False) -> List[Fig8Row]:
    """Reproduce the Fig. 8 sweep for the selected workloads (default: all four)."""
    preset_obj = get_preset(preset) if isinstance(preset, str) else preset
    keys = [w.key for w in WORKLOADS] if workloads is None else list(workloads)
    rows: List[Fig8Row] = []
    for key in keys:
        workload = get_workload(key)
        for scheme in FIG8_SCHEMES[key]:
            rows.append(run_pair(workload, scheme, preset_obj, seed=seed,
                                 mutual_learning=mutual_learning))
    return rows


def format_fig8(rows: Sequence[Fig8Row]) -> str:
    headers = ["Model", "Assignment", "Accuracy", "Area reduction"]
    table_rows = [[row.model, row.scheme, percent(row.accuracy), percent(row.area_reduction)]
                  for row in rows]
    return format_table(headers, table_rows,
                        title="Figure 8 -- data assignment comparison")


if __name__ == "__main__":
    print(format_fig8(run_fig8(preset="bench")))
