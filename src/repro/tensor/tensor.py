"""A small reverse-mode automatic differentiation engine.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamic computation graph.  Calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor that participated in
its computation and has ``requires_grad=True``.

Design notes
------------
* Only float arrays participate in differentiation.  Integer tensors (e.g.
  class labels) can be wrapped but never receive gradients.
* Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand shape (see :func:`_unbroadcast`).
* The graph is built eagerly.  ``no_grad`` disables graph construction, which
  is used for evaluation loops and photonic deployment.
* Complex-valued networks are expressed with *pairs* of real tensors (see
  :mod:`repro.nn.complex`), mirroring the split complex-to-real conversion of
  OplixNet's Eq. (2), so the engine itself only needs real arithmetic.
* Backward closures return a tuple of parent gradients (numpy arrays or
  ``None``), aligned with the ``parents`` sequence passed to
  :meth:`Tensor._make`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)   # no autograd bookkeeping
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


# --------------------------------------------------------------------------- #
# tape tracing (consumed by repro.core.train_plan)
# --------------------------------------------------------------------------- #
class TapeEntry:
    """One node recorded while a :func:`trace_tape` context is active.

    ``op`` names the primitive that created the node and ``params`` carries
    whatever the op's replay emitter needs to recompute ``tensor.data`` in
    place (static attributes plus mutable cache dicts shared with the backward
    closure).  ``parents``/``backward`` are stored here explicitly because
    nodes with ``requires_grad=False`` do not keep them on the tensor.
    """

    __slots__ = ("tensor", "op", "params", "parents", "backward")

    def __init__(self, tensor: "Tensor", op: Optional[str], params: Optional[dict],
                 parents: Tuple["Tensor", ...], backward: Optional["BackwardFn"]):
        self.tensor = tensor
        self.op = op
        self.params = params
        self.parents = parents
        self.backward = backward


class TapeTrace:
    """Creation-ordered record of every autograd node built under the trace.

    ``inputs`` maps a caller-chosen key to ``(leaf tensor, meta)`` for leaves
    whose data changes every step (the image batch, the loss targets);
    ``volatile`` collects reasons why the traced step cannot be replayed
    (data-dependent constants such as dropout masks).
    """

    def __init__(self):
        self.entries: List[TapeEntry] = []
        self.inputs: Dict[str, Tuple["Tensor", dict]] = {}
        self.volatile: List[str] = []


_ACTIVE_TRACE: Optional[TapeTrace] = None


@contextlib.contextmanager
def trace_tape():
    """Record every node created inside the context into a :class:`TapeTrace`."""
    global _ACTIVE_TRACE
    previous = _ACTIVE_TRACE
    trace = TapeTrace()
    _ACTIVE_TRACE = trace
    try:
        yield trace
    finally:
        _ACTIVE_TRACE = previous


def mark_trace_input(tensor: "Tensor", key: str, meta: Optional[dict] = None) -> None:
    """Register a leaf whose data must be refreshed before each plan replay."""
    if _ACTIVE_TRACE is not None:
        _ACTIVE_TRACE.inputs[key] = (tensor, dict(meta or {}))


def mark_trace_volatile(reason: str) -> None:
    """Declare the step being traced unreplayable (forces the eager fallback)."""
    if _ACTIVE_TRACE is not None:
        _ACTIVE_TRACE.volatile.append(reason)


def _as_array(value: Arrayable, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        value = value.data
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype == np.float16:
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand along leading axes or along
    axes of size one; the gradient contribution of the expanded positions must
    be summed back onto the original operand.
    """
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional human readable name (useful when debugging graphs).
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")
    __array_priority__ = 200.0  # numpy defers mixed binary ops to Tensor

    def __init__(self, data: Arrayable, requires_grad: bool = False, name: Optional[str] = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python scalar."""
        if self.data.size != 1:
            raise ValueError("item() only works on single-element tensors")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a tensor with a copied data buffer, detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray,
              parents: Sequence["Tensor"],
              backward: BackwardFn,
              op: Optional[str] = None,
              params: Optional[dict] = None) -> "Tensor":
        """Create a result tensor and register its backward closure.

        ``backward`` receives the upstream gradient and must return one
        gradient (or ``None``) per entry of ``parents``.  ``op``/``params``
        are replay metadata recorded when a :func:`trace_tape` context is
        active; they have no effect on eager execution.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        if _ACTIVE_TRACE is not None:
            _ACTIVE_TRACE.entries.append(
                TapeEntry(out, op, params, tuple(parents), backward))
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into :attr:`grad`.

        ``owned`` asserts that ``grad`` is a freshly allocated array with no
        other live reference, letting the first accumulation bind it directly
        instead of copying.  Subsequent accumulations run in place
        (``self.grad`` is private by construction, the same invariant
        ``Optimizer.clip_grad_norm`` already relies on).
        """
        reduced = _unbroadcast(grad, self.data.shape)
        if reduced is not grad:
            owned = True  # _unbroadcast allocated a fresh reduction
        if self.grad is None:
            if owned and reduced.dtype == self.data.dtype:
                self.grad = reduced
            else:
                self.grad = np.array(reduced, dtype=self.data.dtype, copy=True)
        elif reduced.dtype == self.grad.dtype:
            np.add(self.grad, reduced, out=self.grad)
        else:
            self.grad = self.grad + reduced

    def backward(self, grad: Optional[Union[np.ndarray, "Tensor", float]] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  For
            scalar tensors it defaults to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
            seed_owned = True
        else:
            if isinstance(grad, Tensor):
                grad = grad.data
            source = grad
            grad = np.asarray(grad, dtype=self.data.dtype)
            seed_owned = grad is not source
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()
            seed_owned = True

        topo = self._topological_order()
        pending = {id(self): grad}
        # ids of gradient arrays allocated by this loop and referenced only by
        # ``pending`` -- the only arrays safe to accumulate into in place
        # (closures may return aliased arrays, e.g. ``add`` hands the upstream
        # gradient to both parents)
        owned_ids = {id(grad)} if seed_owned else set()
        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            node_owned = id(node_grad) in owned_ids
            if node_owned:
                owned_ids.discard(id(node_grad))
            if node._backward is None or not node._parents:
                node._accumulate(node_grad, owned=node_owned)
                continue
            parent_grads = node._backward(node_grad)
            if len(parent_grads) != len(node._parents):
                raise RuntimeError(
                    f"backward closure returned {len(parent_grads)} gradients "
                    f"for {len(node._parents)} parents"
                )
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                reduced = _unbroadcast(parent_grad, parent.data.shape)
                existing = pending.get(id(parent))
                if existing is None:
                    pending[id(parent)] = reduced
                    if reduced is not parent_grad:
                        owned_ids.add(id(reduced))  # fresh reduction, unaliased
                elif id(existing) in owned_ids and existing.dtype == reduced.dtype:
                    np.add(existing, reduced, out=existing)
                else:
                    merged = existing + reduced
                    pending[id(parent)] = merged
                    owned_ids.discard(id(existing))
                    owned_ids.add(id(merged))

    def _topological_order(self) -> List["Tensor"]:
        """Iterative depth-first topological sort of the reachable subgraph."""
        topo: List[Tensor] = []
        visited = {id(self)}
        stack: List[Tuple[Tensor, int]] = [(self, 0)]
        while stack:
            node, child_index = stack.pop()
            if child_index < len(node._parents):
                stack.append((node, child_index + 1))
                parent = node._parents[child_index]
                if id(parent) not in visited and parent.requires_grad:
                    visited.add(id(parent))
                    stack.append((parent, 0))
            else:
                topo.append(node)
        return topo

    # ------------------------------------------------------------------ #
    # elementary arithmetic (implemented in repro.tensor.ops)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, other)

    def __radd__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.add(other, self)

    def __sub__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, other)

    def __rmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(other, self)

    def __truediv__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __rmatmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(other, self)

    def __getitem__(self, index) -> "Tensor":
        from repro.tensor import ops

        return ops.getitem(self, index)

    # comparisons return plain boolean arrays (no gradient flows through them)
    def __gt__(self, other: Arrayable):
        return self.data > _as_array(other)

    def __ge__(self, other: Arrayable):
        return self.data >= _as_array(other)

    def __lt__(self, other: Arrayable):
        return self.data < _as_array(other)

    def __le__(self, other: Arrayable):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # shape manipulation and reductions (delegated to ops)
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onwards into one axis."""
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes) -> "Tensor":
        from repro.tensor import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes if axes else None)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.var(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from repro.tensor import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sqrt(self)

    def abs(self) -> "Tensor":
        from repro.tensor import ops

        return ops.abs(self)

    def tanh(self) -> "Tensor":
        from repro.tensor import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        from repro.tensor import ops

        return ops.relu(self)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        from repro.tensor import ops

        return ops.clip(self, low, high)

    def argmax(self, axis=None) -> np.ndarray:
        """Indices of maxima (no gradient)."""
        return self.data.argmax(axis=axis)


def ensure_tensor(value: Arrayable) -> Tensor:
    """Wrap ``value`` in a :class:`Tensor` if it is not one already."""
    return value if isinstance(value, Tensor) else Tensor(value)
