"""A small reverse-mode automatic differentiation engine.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamic computation graph.  Calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor that participated in
its computation and has ``requires_grad=True``.

Design notes
------------
* Only float arrays participate in differentiation.  Integer tensors (e.g.
  class labels) can be wrapped but never receive gradients.
* Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand shape (see :func:`_unbroadcast`).
* The graph is built eagerly.  ``no_grad`` disables graph construction, which
  is used for evaluation loops and photonic deployment.
* Complex-valued networks are expressed with *pairs* of real tensors (see
  :mod:`repro.nn.complex`), mirroring the split complex-to-real conversion of
  OplixNet's Eq. (2), so the engine itself only needs real arithmetic.
* Backward closures return a tuple of parent gradients (numpy arrays or
  ``None``), aligned with the ``parents`` sequence passed to
  :meth:`Tensor._make`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Example
    -------
    >>> with no_grad():
    ...     y = model(x)   # no autograd bookkeeping
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: Arrayable, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        value = value.data
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype, copy=False)
    elif array.dtype == np.float16:
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand along leading axes or along
    axes of size one; the gradient contribution of the expanded positions must
    be summed back onto the original operand.
    """
    grad = np.asarray(grad)
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional human readable name (useful when debugging graphs).
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")
    __array_priority__ = 200.0  # numpy defers mixed binary ops to Tensor

    def __init__(self, data: Arrayable, requires_grad: bool = False, name: Optional[str] = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python scalar."""
        if self.data.size != 1:
            raise ValueError("item() only works on single-element tensors")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a tensor with a copied data buffer, detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray,
              parents: Sequence["Tensor"],
              backward: BackwardFn) -> "Tensor":
        """Create a result tensor and register its backward closure.

        ``backward`` receives the upstream gradient and must return one
        gradient (or ``None``) per entry of ``parents``.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[Union[np.ndarray, "Tensor", float]] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  For
            scalar tensors it defaults to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            grad = grad.data
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        topo = self._topological_order()
        pending = {id(self): grad}
        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None or not node._parents:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            if len(parent_grads) != len(node._parents):
                raise RuntimeError(
                    f"backward closure returned {len(parent_grads)} gradients "
                    f"for {len(node._parents)} parents"
                )
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = _unbroadcast(parent_grad, parent.data.shape)
                existing = pending.get(id(parent))
                pending[id(parent)] = parent_grad if existing is None else existing + parent_grad

    def _topological_order(self) -> List["Tensor"]:
        """Iterative depth-first topological sort of the reachable subgraph."""
        topo: List[Tensor] = []
        visited = {id(self)}
        stack: List[Tuple[Tensor, int]] = [(self, 0)]
        while stack:
            node, child_index = stack.pop()
            if child_index < len(node._parents):
                stack.append((node, child_index + 1))
                parent = node._parents[child_index]
                if id(parent) not in visited and parent.requires_grad:
                    visited.add(id(parent))
                    stack.append((parent, 0))
            else:
                topo.append(node)
        return topo

    # ------------------------------------------------------------------ #
    # elementary arithmetic (implemented in repro.tensor.ops)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, other)

    def __radd__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.add(other, self)

    def __sub__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, other)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(other, self)

    def __mul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, other)

    def __rmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(other, self)

    def __truediv__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, other)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.tensor import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __rmatmul__(self, other: Arrayable) -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(other, self)

    def __getitem__(self, index) -> "Tensor":
        from repro.tensor import ops

        return ops.getitem(self, index)

    # comparisons return plain boolean arrays (no gradient flows through them)
    def __gt__(self, other: Arrayable):
        return self.data > _as_array(other)

    def __ge__(self, other: Arrayable):
        return self.data >= _as_array(other)

    def __lt__(self, other: Arrayable):
        return self.data < _as_array(other)

    def __le__(self, other: Arrayable):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # shape manipulation and reductions (delegated to ops)
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onwards into one axis."""
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes) -> "Tensor":
        from repro.tensor import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes if axes else None)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.var(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.min(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from repro.tensor import ops

        return ops.exp(self)

    def log(self) -> "Tensor":
        from repro.tensor import ops

        return ops.log(self)

    def sqrt(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sqrt(self)

    def abs(self) -> "Tensor":
        from repro.tensor import ops

        return ops.abs(self)

    def tanh(self) -> "Tensor":
        from repro.tensor import ops

        return ops.tanh(self)

    def sigmoid(self) -> "Tensor":
        from repro.tensor import ops

        return ops.sigmoid(self)

    def relu(self) -> "Tensor":
        from repro.tensor import ops

        return ops.relu(self)

    def clip(self, low: Optional[float] = None, high: Optional[float] = None) -> "Tensor":
        from repro.tensor import ops

        return ops.clip(self, low, high)

    def argmax(self, axis=None) -> np.ndarray:
        """Indices of maxima (no gradient)."""
        return self.data.argmax(axis=axis)


def ensure_tensor(value: Arrayable) -> Tensor:
    """Wrap ``value`` in a :class:`Tensor` if it is not one already."""
    return value if isinstance(value, Tensor) else Tensor(value)
