"""Seeded randomness and weight-initialisation schemes.

All stochastic behaviour in the library flows through ``numpy.random.Generator``
objects so that experiments are exactly reproducible from a single seed.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

_DEFAULT_RNG = np.random.default_rng(0)


def seed_all(seed: int) -> np.random.Generator:
    """Reset the library-wide default generator and return it."""
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(seed)
    return _DEFAULT_RNG


def default_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` if given, otherwise the library-wide default generator."""
    return rng if rng is not None else _DEFAULT_RNG


def _fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (2-d) and convolutional (4-d) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        raise ValueError(f"unsupported weight shape {tuple(shape)} for fan computation")
    return fan_in, fan_out


def kaiming_uniform(shape: Sequence[int], gain: float = math.sqrt(2.0),
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (suitable for ReLU networks)."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Sequence[int], gain: float = math.sqrt(2.0),
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    rng = default_rng(rng)
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Sequence[int], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (suitable for tanh / linear units)."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Sequence[int], gain: float = 1.0,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def complex_init(shape: Sequence[int], rng: Optional[np.random.Generator] = None,
                 criterion: str = "glorot") -> Tuple[np.ndarray, np.ndarray]:
    """Initialise a complex weight as (real, imaginary) parts.

    Follows the polar initialisation of Trabelsi et al. ("Deep Complex
    Networks"): magnitudes are Rayleigh distributed with a variance chosen by
    the Glorot or He criterion, phases are uniform in ``[-pi, pi]``.
    """
    rng = default_rng(rng)
    fan_in, fan_out = _fan_in_fan_out(shape)
    if criterion == "glorot":
        sigma = 1.0 / math.sqrt(fan_in + fan_out)
    elif criterion == "he":
        sigma = 1.0 / math.sqrt(fan_in)
    else:
        raise ValueError(f"unknown criterion {criterion!r}; expected 'glorot' or 'he'")
    magnitude = rng.rayleigh(scale=sigma, size=shape)
    phase = rng.uniform(-math.pi, math.pi, size=shape)
    return magnitude * np.cos(phase), magnitude * np.sin(phase)
