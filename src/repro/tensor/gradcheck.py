"""Finite-difference gradient verification utilities.

Used throughout the test-suite to validate the autograd engine and the
hand-written backward passes of convolution, pooling and the complex layers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], tensor: Tensor, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn()`` w.r.t. ``tensor``.

    ``fn`` must be a zero-argument callable that re-evaluates the forward pass
    using the *current* contents of ``tensor.data``.
    """
    gradient = np.zeros_like(tensor.data, dtype=np.float64)
    flat = tensor.data.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = float(fn().data)
        flat[index] = original - epsilon
        minus = float(fn().data)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return gradient


def gradcheck(fn: Callable[[], Tensor],
              tensors: Sequence[Tensor],
              epsilon: float = 1e-6,
              atol: float = 1e-5,
              rtol: float = 1e-4) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    Parameters
    ----------
    fn:
        Zero-argument callable returning a scalar :class:`Tensor` computed from
        the tensors in ``tensors``.
    tensors:
        Leaf tensors (``requires_grad=True``) to check.

    Returns
    -------
    bool
        True if every analytic gradient matches the numerical estimate within
        the given tolerances.  Raises ``AssertionError`` with a diagnostic
        message otherwise.
    """
    for tensor in tensors:
        if not tensor.requires_grad:
            raise ValueError("gradcheck requires tensors with requires_grad=True")
        tensor.zero_grad()

    output = fn()
    if output.size != 1:
        raise ValueError("gradcheck expects fn() to return a scalar tensor")
    output.backward()

    for position, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, tensor, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for tensor #{position} "
                f"(max abs difference {worst:.3e}, atol={atol}, rtol={rtol})"
            )
    return True
