"""Primitive differentiable operations on :class:`~repro.tensor.tensor.Tensor`.

Every function here builds a result tensor via ``Tensor._make`` and supplies a
backward closure returning one gradient per parent.  Broadcasting reduction is
handled centrally by the autograd engine, so closures may return gradients in
the broadcast shape.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.tensor import Tensor, ensure_tensor

Axis = Union[None, int, Tuple[int, ...]]


# --------------------------------------------------------------------------- #
# binary arithmetic
# --------------------------------------------------------------------------- #
def add(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        return grad, grad

    return Tensor._make(out_data, (a, b), backward, "add")


def sub(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        return grad, -grad

    return Tensor._make(out_data, (a, b), backward, "sub")


def mul(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        return grad * b.data, grad * a.data

    return Tensor._make(out_data, (a, b), backward, "mul")


def div(a, b) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        grad_a = grad / b.data
        grad_b = -grad * a.data / (b.data ** 2)
        return grad_a, grad_b

    return Tensor._make(out_data, (a, b), backward, "div")


def neg(a) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad):
        return (-grad,)

    return Tensor._make(-a.data, (a,), backward, "neg")


def power(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-differentiated) exponent."""
    a = ensure_tensor(a)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return Tensor._make(out_data, (a,), backward, "power", {"exponent": exponent})


def maximum(a, b) -> Tensor:
    """Elementwise maximum; gradient is routed to the larger operand (ties split evenly)."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad):
        a_larger = a.data > b.data
        b_larger = b.data > a.data
        ties = ~(a_larger | b_larger)
        grad_a = grad * (a_larger + 0.5 * ties)
        grad_b = grad * (b_larger + 0.5 * ties)
        return grad_a, grad_b

    return Tensor._make(out_data, (a, b), backward, "maximum")


def matmul(a, b) -> Tensor:
    """Matrix product following numpy ``@`` semantics (supports batched operands)."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a_data.ndim == 1 and b_data.ndim == 1:
            # inner product
            grad_a = grad * b_data
            grad_b = grad * a_data
        elif a_data.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n)
            grad_a = (grad[..., None, :] @ np.swapaxes(b_data, -1, -2))[..., 0, :]
            grad_a = grad_a.reshape(-1, a_data.shape[0]).sum(axis=0)
            grad_b = a_data[:, None] * grad[..., None, :]
        elif b_data.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            grad_a = grad[..., :, None] * b_data[None, :]
            grad_b = (np.swapaxes(a_data, -1, -2) @ grad[..., :, None])[..., 0]
            grad_b = grad_b.reshape(-1, b_data.shape[0]).sum(axis=0)
        else:
            grad_a = grad @ np.swapaxes(b_data, -1, -2)
            grad_b = np.swapaxes(a_data, -1, -2) @ grad
        return grad_a, grad_b

    return Tensor._make(out_data, (a, b), backward, "matmul")


# --------------------------------------------------------------------------- #
# unary elementwise
# --------------------------------------------------------------------------- #
def exp(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return Tensor._make(out_data, (a,), backward, "exp")


def log(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(out_data, (a,), backward, "log")


def sqrt(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / out_data,)

    return Tensor._make(out_data, (a,), backward, "sqrt")


def abs(a) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = ensure_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(out_data, (a,), backward, "abs")


def tanh(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data ** 2),)

    return Tensor._make(out_data, (a,), backward, "tanh")


def sigmoid(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (a,), backward, "sigmoid")


def relu(a) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(grad):
        return (grad * (a.data > 0),)

    return Tensor._make(out_data, (a,), backward, "relu")


def leaky_relu(a, negative_slope: float = 0.01) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.where(a.data > 0, a.data, negative_slope * a.data)

    def backward(grad):
        return (grad * np.where(a.data > 0, 1.0, negative_slope),)

    return Tensor._make(out_data, (a,), backward, "leaky_relu", {"negative_slope": negative_slope})


def clip(a, low: Optional[float], high: Optional[float]) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the interval."""
    a = ensure_tensor(a)
    out_data = np.clip(a.data, low, high)

    def backward(grad):
        mask = np.ones_like(a.data)
        if low is not None:
            mask = mask * (a.data >= low)
        if high is not None:
            mask = mask * (a.data <= high)
        return (grad * mask,)

    return Tensor._make(out_data, (a,), backward, "clip", {"low": low, "high": high})


def sin(a) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad):
        return (grad * np.cos(a.data),)

    return Tensor._make(np.sin(a.data), (a,), backward, "sin")


def cos(a) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad):
        return (-grad * np.sin(a.data),)

    return Tensor._make(np.cos(a.data), (a,), backward, "cos")


# --------------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------------- #
def _expand_reduced(grad: np.ndarray, original_shape: Tuple[int, ...], axis: Axis,
                    keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to ``original_shape``."""
    if axis is None:
        return np.broadcast_to(grad, original_shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(ax % len(original_shape) for ax in axes)
        for ax in sorted(axes):
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, original_shape)


def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        return (_expand_reduced(grad, a.data.shape, axis, keepdims),)

    return Tensor._make(out_data, (a,), backward, "sum", {"axis": axis, "keepdims": keepdims})


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad):
        return (_expand_reduced(grad, a.data.shape, axis, keepdims) / count,)

    return Tensor._make(out_data, (a,), backward, "mean", {"axis": axis, "keepdims": keepdims})


def var(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased (population) variance, matching ``numpy.var`` defaults."""
    a = ensure_tensor(a)
    mean_data = a.data.mean(axis=axis, keepdims=True)
    out_data = ((a.data - mean_data) ** 2).mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.data.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def backward(grad):
        grad_full = _expand_reduced(grad, a.data.shape, axis, keepdims)
        return (grad_full * 2.0 * (a.data - mean_data) / count,)

    return Tensor._make(out_data, (a,), backward, "var", {"axis": axis, "keepdims": keepdims, "mean": mean_data})


def _minmax(a, axis: Axis, keepdims: bool, fn, kind: str) -> Tensor:
    a = ensure_tensor(a)
    out_data = fn(a.data, axis=axis, keepdims=keepdims)

    def backward(grad):
        out_keep = fn(a.data, axis=axis, keepdims=True)
        mask = (a.data == out_keep).astype(a.data.dtype)
        # Split the gradient evenly among ties so that the total is conserved.
        mask = mask / mask.sum(axis=axis, keepdims=True)
        grad_full = _expand_reduced(grad, a.data.shape, axis, keepdims)
        return (grad_full * mask,)

    return Tensor._make(out_data, (a,), backward, kind, {"axis": axis, "keepdims": keepdims, "fn": fn})


def max(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _minmax(a, axis, keepdims, np.max, "max")


def min(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _minmax(a, axis, keepdims, np.min, "min")


def logsumexp(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(a)))`` with exact softmax gradient."""
    a = ensure_tensor(a)
    shifted_max = a.data.max(axis=axis, keepdims=True)
    exps = np.exp(a.data - shifted_max)
    sum_exps = exps.sum(axis=axis, keepdims=True)
    out_keep = np.log(sum_exps) + shifted_max
    out_data = out_keep if keepdims else np.squeeze(
        out_keep, axis=axis if axis is not None else tuple(range(a.data.ndim))
    )

    def backward(grad):
        softmax = exps / sum_exps
        grad_full = _expand_reduced(grad, a.data.shape, axis, keepdims)
        return (grad_full * softmax,)

    return Tensor._make(out_data, (a,), backward, "logsumexp", {"axis": axis, "keepdims": keepdims, "exps": exps, "sum_exps": sum_exps})


# --------------------------------------------------------------------------- #
# shape manipulation
# --------------------------------------------------------------------------- #
def reshape(a, shape: Sequence[int]) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.data.shape),)

    return Tensor._make(out_data, (a,), backward, "reshape", {"shape": shape})


def transpose(a, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.transpose(axes)

    def backward(grad):
        if axes is None:
            return (grad.transpose(),)
        inverse = np.argsort(axes)
        return (grad.transpose(inverse),)

    return Tensor._make(out_data, (a,), backward, "transpose", {"axes": axes})


def getitem(a, index) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return Tensor._make(out_data, (a,), backward, "getitem", {"index": index})


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slices = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(int(start), int(stop))
            slices.append(grad[tuple(index)])
        return tuple(slices)

    return Tensor._make(out_data, tuple(tensors), backward, "concatenate", {"axis": axis, "offsets": offsets})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(out_data, tuple(tensors), backward, "stack", {"axis": axis})


def _normalize_pad_width(pad_width, ndim: int) -> np.ndarray:
    """Expand ``pad_width`` into an ``(ndim, 2)`` integer array (numpy semantics)."""
    width = np.asarray(pad_width, dtype=int)
    if width.ndim == 0:
        width = np.tile(width.reshape(1, 1), (ndim, 2))
    elif width.ndim == 1 and width.shape == (2,):
        width = np.tile(width.reshape(1, 2), (ndim, 1))
    elif width.shape != (ndim, 2):
        raise ValueError(f"pad_width {pad_width!r} is not valid for a {ndim}-d tensor")
    return width


def pad(a, pad_width, constant_value: float = 0.0) -> Tensor:
    """Constant padding following ``numpy.pad`` ``pad_width`` conventions."""
    a = ensure_tensor(a)
    width = _normalize_pad_width(pad_width, a.data.ndim)
    out_data = np.pad(a.data, width, mode="constant", constant_values=constant_value)

    def backward(grad):
        slices = tuple(
            slice(int(before), int(before) + dim)
            for (before, _after), dim in zip(width, a.data.shape)
        )
        return (grad[slices],)

    return Tensor._make(out_data, (a,), backward, "pad", {"width": width})


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select elements from ``a`` where ``condition`` is true, else from ``b``."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        return grad * condition, grad * (~condition)

    return Tensor._make(out_data, (a, b), backward)
