"""Reverse-mode automatic differentiation engine on top of numpy.

This subpackage is the computational substrate for every neural network in the
OplixNet reproduction.  It provides:

* :class:`~repro.tensor.tensor.Tensor` -- an n-dimensional array that records
  the operations applied to it and can back-propagate gradients.
* :mod:`~repro.tensor.functional` -- stateless neural-network primitives
  (conv2d, pooling, softmax, one-hot, ...) built from Tensor operations.
* :mod:`~repro.tensor.gradcheck` -- finite-difference gradient verification
  used heavily by the test-suite.
* :mod:`~repro.tensor.random` -- seeded random helpers and weight
  initialisation schemes.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.gradcheck import gradcheck, numerical_gradient
from repro.tensor.random import (
    seed_all,
    default_rng,
    kaiming_uniform,
    kaiming_normal,
    xavier_uniform,
    xavier_normal,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradcheck",
    "numerical_gradient",
    "seed_all",
    "default_rng",
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
]
