"""Stateless neural-network primitives built on the autograd engine.

These functions are the computational kernels used by the layer classes in
:mod:`repro.nn`.  Convolution and pooling are implemented with an im2col
lowering so that the heavy lifting happens inside a single matrix product
(the same operation the photonic MZI mesh implements in hardware).

Training hot path
-----------------
The im2col/col2im pair is the inner loop of every convolutional training step,
so both directions are built for speed:

* :func:`im2col` extracts patches through
  ``np.lib.stride_tricks.sliding_window_view`` -- one strided view plus one
  contiguous copy, instead of materialising an index table and gathering
  through it.
* :func:`col2im` (the adjoint scatter-add) runs as a single ``np.bincount``
  over precomputed flat scatter indices instead of the classic ``np.add.at``,
  which is typically one to two orders of magnitude slower.
* Window geometry (index tables, scatter indices, output sizes) is memoized
  per ``(shape, kernel, stride, padding)``; a training loop pays for it once.

The seed implementations survive as :func:`im2col_reference`,
:func:`col2im_reference` and :func:`conv2d_reference` -- executable
specifications pinned by the parity tests and used as the baseline of
``benchmarks/test_bench_train.py``.  :func:`use_reference_kernels` routes the
whole module through them to reproduce the pre-optimization path end-to-end.
"""

from __future__ import annotations

import contextlib
from functools import lru_cache
from typing import Optional, Tuple, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor import ops
from repro.tensor.tensor import Tensor, ensure_tensor, mark_trace_volatile

IntPair = Union[int, Tuple[int, int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


_REFERENCE_MODE = False


def reference_kernels_enabled() -> bool:
    """Whether im2col/col2im/conv currently route through the seed kernels."""
    return _REFERENCE_MODE


@contextlib.contextmanager
def use_reference_kernels():
    """Route convolution/pooling kernels through the seed implementations.

    Inside the context, :func:`im2col`, :func:`col2im` and :func:`conv2d`
    dispatch to their ``*_reference`` counterparts (index-table gather,
    ``np.add.at`` scatter) and the complex layers fall back to the
    4-real-multiplication formulation.  Backward closures capture the kernel
    selection at forward time, so a forward pass recorded inside the context
    also back-propagates through the reference kernels.  Used by the training
    benchmark to measure the fused fast path against the pre-optimization
    path.
    """
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = True
    try:
        yield
    finally:
        _REFERENCE_MODE = previous


# --------------------------------------------------------------------------- #
# softmax family
# --------------------------------------------------------------------------- #
def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    logits = ensure_tensor(logits)
    # the shift constant is data-dependent, so a traced softmax cannot be
    # replayed with frozen leaves (log_softmax routes through logsumexp and
    # stays replayable)
    mark_trace_volatile("softmax shift constant")
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    logits = ensure_tensor(logits)
    return logits - ops.logsumexp(logits, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Encode integer class labels as one-hot rows."""
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot encoding")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


# --------------------------------------------------------------------------- #
# linear
# --------------------------------------------------------------------------- #
def linear(inputs: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``inputs @ weight.T + bias``.

    ``weight`` has shape ``(out_features, in_features)`` to match the
    convention used throughout :mod:`repro.nn`.
    """
    output = ensure_tensor(inputs) @ ensure_tensor(weight).transpose()
    if bias is not None:
        output = output + bias
    return output


# --------------------------------------------------------------------------- #
# im2col convolution
# --------------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _checked_output_size(input_shape: Tuple[int, int, int, int],
                         kernel_size: Tuple[int, int],
                         stride: Tuple[int, int],
                         padding: Tuple[int, int]) -> Tuple[int, int]:
    _batch, _channels, height, width = input_shape
    out_h = _conv_output_size(height, kernel_size[0], stride[0], padding[0])
    out_w = _conv_output_size(width, kernel_size[1], stride[1], padding[1])
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {tuple(input_shape)}, "
            f"kernel {tuple(kernel_size)}, stride {tuple(stride)}, padding {tuple(padding)}"
        )
    return out_h, out_w


@lru_cache(maxsize=256)
def _im2col_geometry(plane_shape: Tuple[int, int, int],
                     kernel_size: Tuple[int, int],
                     stride: Tuple[int, int],
                     padding: Tuple[int, int]):
    """Memoized index tables of :func:`im2col_indices` (read-only arrays).

    Keyed on the batch-independent ``(channels, height, width)`` plane shape
    so loops with varying batch sizes (partial final batches, the dynamic
    micro-batcher) share one cache entry per layer geometry.
    """
    channels, _height, _width = plane_shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    out_h, out_w = _checked_output_size((1,) + plane_shape, kernel_size, stride, padding)

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    for array in (k, i, j):
        array.flags.writeable = False
    return k, i, j, (out_h, out_w)


def im2col_indices(input_shape: Tuple[int, int, int, int],
                   kernel_size: Tuple[int, int],
                   stride: Tuple[int, int],
                   padding: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]:
    """Compute gather indices used to lower a convolution to a matrix product.

    Returns ``(k, i, j, (out_h, out_w))`` where ``k, i, j`` index the channel,
    row and column of each patch element for every output position.  The
    tables are memoized per geometry and returned read-only.
    """
    _batch, channels, height, width = input_shape
    return _im2col_geometry((int(channels), int(height), int(width)),
                            tuple(kernel_size), tuple(stride), tuple(padding))


@lru_cache(maxsize=32)
def _col2im_scatter_indices(input_shape: Tuple[int, int, int, int],
                            kernel_size: Tuple[int, int],
                            stride: Tuple[int, int],
                            padding: Tuple[int, int]):
    """Flat scatter indices of the im2col adjoint, memoized per geometry.

    Element ``(p, q, b)`` of the ``(C * kh * kw, out_h * out_w, batch)``
    column layout lands in flat bin ``index[p, q] + b * C * Hp * Wp`` of the
    padded ``(batch, C, Hp, Wp)`` image; the full index array is what one
    ``np.bincount`` call sums over.  The cache is deliberately small -- one
    entry per live layer geometry -- because the arrays scale with
    ``batch * C * kh * kw * out_h * out_w``.
    """
    batch, channels, height, width = input_shape
    pad_h, pad_w = padding
    padded_h, padded_w = height + 2 * pad_h, width + 2 * pad_w
    k, i, j, _out_size = im2col_indices(input_shape, kernel_size, stride, padding)
    plane = channels * padded_h * padded_w
    per_position = k * (padded_h * padded_w) + i * padded_w + j
    flat = per_position[:, :, None] + np.arange(batch, dtype=np.intp) * plane
    flat = np.ascontiguousarray(flat.reshape(-1))
    flat.flags.writeable = False
    return flat, (padded_h, padded_w)


def im2col_reference(inputs: np.ndarray,
                     kernel_size: Tuple[int, int],
                     stride: Tuple[int, int],
                     padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Seed im2col: index-table gather (executable specification)."""
    pad_h, pad_w = padding
    padded = np.pad(inputs, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant")
    k, i, j, out_size = im2col_indices(inputs.shape, kernel_size, stride, padding)
    columns = padded[:, k, i, j]                      # (batch, C*kh*kw, out_h*out_w)
    columns = columns.transpose(1, 2, 0).reshape(columns.shape[1], -1)
    return columns, out_size


def im2col(inputs: np.ndarray,
           kernel_size: Tuple[int, int],
           stride: Tuple[int, int],
           padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Output has shape ``(channels * kh * kw, batch * out_h * out_w)`` with the
    flat column axis ordered ``(out_h * out_w, batch)``.  Patches are read
    through a ``sliding_window_view`` -- a zero-copy strided view -- so the
    only data movement is the one contiguous reshape copy of the output.
    """
    if _REFERENCE_MODE:
        return im2col_reference(inputs, kernel_size, stride, padding)
    batch, channels, _height, _width = inputs.shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_size = _checked_output_size(inputs.shape, kernel_size, stride, padding)
    if pad_h or pad_w:
        inputs = np.pad(inputs, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
                        mode="constant")
    windows = sliding_window_view(inputs, (kernel_h, kernel_w), axis=(2, 3))
    windows = windows[:, :, ::stride_h, ::stride_w]
    # (B, C, oh, ow, kh, kw) -> (C, kh, kw, oh, ow, B) -> (C*kh*kw, oh*ow*B)
    columns = windows.transpose(1, 4, 5, 2, 3, 0).reshape(
        channels * kernel_h * kernel_w, out_size[0] * out_size[1] * batch)
    return columns, out_size


def col2im_reference(columns: np.ndarray,
                     input_shape: Tuple[int, int, int, int],
                     kernel_size: Tuple[int, int],
                     stride: Tuple[int, int],
                     padding: Tuple[int, int]) -> np.ndarray:
    """Seed col2im: ``np.add.at`` scatter (executable specification)."""
    batch, channels, height, width = input_shape
    pad_h, pad_w = padding
    padded_shape = (batch, channels, height + 2 * pad_h, width + 2 * pad_w)
    padded = np.zeros(padded_shape, dtype=columns.dtype)
    k, i, j, out_size = im2col_indices(input_shape, kernel_size, stride, padding)
    out_h, out_w = out_size
    cols_reshaped = columns.reshape(channels * kernel_size[0] * kernel_size[1], out_h * out_w, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h:pad_h + height, pad_w:pad_w + width]


def _bincount_scatter(indices: np.ndarray, weights: np.ndarray, length: int) -> np.ndarray:
    if np.iscomplexobj(weights):
        return (np.bincount(indices, weights=weights.real, minlength=length)
                + 1j * np.bincount(indices, weights=weights.imag, minlength=length))
    return np.bincount(indices, weights=weights, minlength=length)


#: below this per-window block size (``batch * C * out_h * out_w`` elements)
#: the adjoint scatters through one ``np.bincount`` call; above it, the
#: per-window shifted accumulation amortizes its ``kh * kw`` python-level
#: iterations over large vectorized adds and wins on memory locality
#: (measured crossover on the dev box; both paths are exact).
COL2IM_BINCOUNT_BLOCK_LIMIT = 65536


def col2im(columns: np.ndarray,
           input_shape: Tuple[int, int, int, int],
           kernel_size: Tuple[int, int],
           stride: Tuple[int, int],
           padding: Tuple[int, int]) -> np.ndarray:
    """Scatter-add columns back into image form (adjoint of :func:`im2col`).

    No ``np.add.at`` anywhere -- the seed scatter's buffered element-wise
    dispatch dominates the whole backward pass.  Three exact strategies,
    picked by window geometry:

    * **reshape** -- when the windows tile the image exactly (``stride ==
      kernel``, no padding, no remainder; every pooling layer in the paper's
      models), the adjoint is a pure permutation: one strided reshape copy,
      no accumulation at all.
    * **bincount** -- one ``np.bincount`` over memoized flat scatter indices
      (:func:`_col2im_scatter_indices`).
    * **shifted accumulation** -- for large per-window blocks, ``kh * kw``
      strided in-place adds of contiguous image-shaped slabs.
    """
    if _REFERENCE_MODE:
        return col2im_reference(columns, input_shape, kernel_size, stride, padding)
    return _col2im_fast(columns, input_shape, kernel_size, stride, padding)


def _col2im_fast(columns: np.ndarray,
                 input_shape: Tuple[int, int, int, int],
                 kernel_size: Tuple[int, int],
                 stride: Tuple[int, int],
                 padding: Tuple[int, int]) -> np.ndarray:
    """The reshape/bincount/shifted adjoint behind :func:`col2im`.

    Backward closures capture this function (or :func:`col2im_reference`)
    directly, so the kernel used by a recorded pass is fixed at forward time
    regardless of the mode active when ``backward()`` later runs.
    """
    batch, channels, height, width = input_shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h, out_w = _checked_output_size(input_shape, kernel_size, stride, padding)

    if (pad_h == 0 and pad_w == 0 and stride_h == kernel_h and stride_w == kernel_w
            and out_h * kernel_h == height and out_w * kernel_w == width):
        # exact tiling: the adjoint is a permutation, not a scatter
        image = np.empty(input_shape, dtype=columns.dtype)
        tiles = image.reshape(batch, channels, out_h, kernel_h, out_w, kernel_w)
        windows = columns.reshape(channels, kernel_h, kernel_w, out_h, out_w, batch)
        tiles[...] = windows.transpose(5, 0, 3, 1, 4, 2)
        return image

    block = batch * channels * out_h * out_w
    if block < COL2IM_BINCOUNT_BLOCK_LIMIT:
        padded_h, padded_w = height + 2 * pad_h, width + 2 * pad_w
        indices, _padded_size = _col2im_scatter_indices(
            tuple(input_shape), tuple(kernel_size), tuple(stride), tuple(padding))
        flat = _bincount_scatter(indices, columns.reshape(-1),
                                 batch * channels * padded_h * padded_w)
        padded = flat.reshape(batch, channels, padded_h, padded_w)
        padded = padded.astype(columns.dtype, copy=False)
    else:
        padded = np.zeros((batch, channels, height + 2 * pad_h, width + 2 * pad_w),
                          dtype=columns.dtype)
        windows = columns.reshape(channels, kernel_h, kernel_w, out_h, out_w, batch)
        windows = windows.transpose(5, 0, 1, 2, 3, 4)
        for offset_h in range(kernel_h):
            stop_h = offset_h + stride_h * out_h
            for offset_w in range(kernel_w):
                padded[:, :, offset_h:stop_h:stride_h,
                       offset_w:offset_w + stride_w * out_w:stride_w] \
                    += windows[:, :, offset_h, offset_w]
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h:pad_h + height, pad_w:pad_w + width]


def _conv2d_checked(inputs: Tensor, weight: Tensor,
                    stride: IntPair, padding: IntPair):
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    stride = _as_pair(stride)
    padding = _as_pair(padding)
    _batch, in_channels, _height, _width = inputs.shape
    _out_channels, weight_in_channels, _kernel_h, _kernel_w = weight.shape
    if in_channels != weight_in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {in_channels}, weight expects {weight_in_channels}"
        )
    return inputs, weight, stride, padding


def conv2d(inputs: Tensor,
           weight: Tensor,
           bias: Optional[Tensor] = None,
           stride: IntPair = 1,
           padding: IntPair = 0) -> Tensor:
    """2-D cross-correlation (what deep-learning frameworks call convolution).

    Parameters
    ----------
    inputs:
        Tensor of shape ``(batch, in_channels, height, width)``.
    weight:
        Tensor of shape ``(out_channels, in_channels, kernel_h, kernel_w)``.
    bias:
        Optional tensor of shape ``(out_channels,)``.
    """
    inputs, weight, stride, padding = _conv2d_checked(inputs, weight, stride, padding)
    batch = inputs.shape[0]
    out_channels, _in_channels, kernel_h, kernel_w = weight.shape
    # capture the kernel selection at forward time so that a pass recorded
    # inside use_reference_kernels() also back-propagates through it
    col2im_fn = col2im_reference if _REFERENCE_MODE else _col2im_fast

    columns, (out_h, out_w) = im2col(inputs.data, (kernel_h, kernel_w), stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    out_matrix = weight_matrix @ columns                       # (out_channels, batch*out_h*out_w)
    out_data = out_matrix.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, out_channels, 1, 1)

    # captured at forward time: skip the input-gradient matmul + scatter when
    # the input is e.g. the data batch of the first layer
    needs_input_grad = inputs.requires_grad
    needs_weight_grad = weight.requires_grad
    # forward intermediates live in a cache dict (refreshed in place by the
    # train-plan replay emitter) and the weight matrix is re-derived from the
    # parameter at call time, so the closure never sees stale arrays
    cache = {"columns": columns}

    def backward(grad):
        cols = cache["columns"]
        w_matrix = weight.data.reshape(out_channels, -1)
        grad_matrix = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        grad_weight = ((grad_matrix @ cols.T).reshape(weight.shape)
                       if needs_weight_grad else None)
        grad_input = None
        if needs_input_grad:
            grad_columns = w_matrix.T @ grad_matrix
            grad_input = col2im_fn(grad_columns, inputs.shape, (kernel_h, kernel_w),
                                   stride, padding)
        grad_bias = grad.sum(axis=(0, 2, 3)) if bias is not None else None
        if bias is not None:
            return grad_input, grad_weight, grad_bias
        return grad_input, grad_weight

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    output = Tensor._make(out_data, parents, backward, "conv2d",
                          {"kernel": (kernel_h, kernel_w), "stride": stride,
                           "padding": padding, "cache": cache,
                           "has_bias": bias is not None})
    return output


def conv2d_reference(inputs: Tensor,
                     weight: Tensor,
                     bias: Optional[Tensor] = None,
                     stride: IntPair = 1,
                     padding: IntPair = 0) -> Tensor:
    """Seed convolution path: index-table im2col + ``np.add.at`` adjoint.

    Kept as the executable baseline that :func:`conv2d` (and the fused complex
    kernels built on it) are parity-pinned and benchmarked against.
    """
    inputs, weight, stride, padding = _conv2d_checked(inputs, weight, stride, padding)
    batch = inputs.shape[0]
    out_channels, _in_channels, kernel_h, kernel_w = weight.shape
    columns, (out_h, out_w) = im2col_reference(inputs.data, (kernel_h, kernel_w),
                                               stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    out_matrix = weight_matrix @ columns
    out_data = out_matrix.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, out_channels, 1, 1)

    def backward(grad):
        grad_matrix = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        grad_weight = (grad_matrix @ columns.T).reshape(weight.shape)
        grad_columns = weight_matrix.T @ grad_matrix
        grad_input = col2im_reference(grad_columns, inputs.shape,
                                      (kernel_h, kernel_w), stride, padding)
        grad_bias = grad.sum(axis=(0, 2, 3)) if bias is not None else None
        if bias is not None:
            return grad_input, grad_weight, grad_bias
        return grad_input, grad_weight

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    return Tensor._make(out_data, parents, backward)


def max_pool2d(inputs: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling over non-overlapping or strided windows."""
    inputs = ensure_tensor(inputs)
    kernel = _as_pair(kernel_size)
    stride = _as_pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = _conv_output_size(height, kernel[0], stride[0], 0)
    out_w = _conv_output_size(width, kernel[1], stride[1], 0)
    pool_shape = (batch * channels, 1, height, width)
    col2im_fn = col2im_reference if _REFERENCE_MODE else _col2im_fast

    # Treat each channel independently by folding channels into the batch axis.
    reshaped = inputs.data.reshape(pool_shape)
    columns, _ = im2col(reshaped, kernel, stride, (0, 0))      # (kh*kw, N*out_h*out_w)
    max_idx = columns.argmax(axis=0)
    flat_positions = np.arange(columns.shape[1])
    out_cols = columns[max_idx, flat_positions]
    out_data = out_cols.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    cache = {"columns": columns, "max_idx": max_idx}

    def backward(grad):
        # the closure reuses the forward pass's columns, argmax and cached
        # im2col geometry (pool_shape/kernel/stride key the memoized tables);
        # both live in `cache` so a train-plan replay can refresh them
        grad_cols = np.zeros_like(cache["columns"])
        grad_flat = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        grad_cols[cache["max_idx"], flat_positions] = grad_flat
        grad_input = col2im_fn(grad_cols, pool_shape, kernel, stride, (0, 0))
        return (grad_input.reshape(batch, channels, height, width),)

    return Tensor._make(out_data, (inputs,), backward, "max_pool2d",
                        {"kernel": kernel, "stride": stride, "cache": cache})


def avg_pool2d(inputs: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling over windows."""
    inputs = ensure_tensor(inputs)
    kernel = _as_pair(kernel_size)
    stride = _as_pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = _conv_output_size(height, kernel[0], stride[0], 0)
    out_w = _conv_output_size(width, kernel[1], stride[1], 0)
    window = kernel[0] * kernel[1]
    pool_shape = (batch * channels, 1, height, width)
    col2im_fn = col2im_reference if _REFERENCE_MODE else _col2im_fast

    reshaped = inputs.data.reshape(pool_shape)
    columns, _ = im2col(reshaped, kernel, stride, (0, 0))
    out_cols = columns.mean(axis=0)
    out_data = out_cols.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        # reuses the forward pass's cached im2col geometry via pool_shape
        grad_flat = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        grad_cols = np.tile(grad_flat / window, (window, 1))
        grad_input = col2im_fn(grad_cols, pool_shape, kernel, stride, (0, 0))
        return (grad_input.reshape(batch, channels, height, width),)

    return Tensor._make(out_data, (inputs,), backward, "avg_pool2d",
                        {"kernel": kernel, "stride": stride})


def global_avg_pool2d(inputs: Tensor) -> Tensor:
    """Average over the spatial dimensions, yielding ``(batch, channels)``."""
    inputs = ensure_tensor(inputs)
    return inputs.mean(axis=(2, 3))


def dropout(inputs: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return ensure_tensor(inputs)
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    inputs = ensure_tensor(inputs)
    # a fresh random mask every step cannot be baked into a replayed plan
    mark_trace_volatile("dropout mask")
    mask = (rng.random(inputs.shape) >= rate) / (1.0 - rate)
    return inputs * Tensor(mask.astype(inputs.dtype))


# --------------------------------------------------------------------------- #
# fused batch normalisation
# --------------------------------------------------------------------------- #
def _batch_norm_forward_math(x: np.ndarray, weight, bias, axes, shape, eps: float,
                             cache: dict, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Training-mode batch-norm forward, shared by eager and plan replay.

    Performs exactly the float operations the composed op-by-op formulation in
    :meth:`repro.nn.normalization._BatchNorm.forward` performs (mean, biased
    variance with its own mean, ``/ sqrt(var + eps)`` as a true division, then
    the affine map), so the fused node is bit-identical to the composed graph.
    Intermediates needed by the backward closure are published into ``cache``.
    With ``out`` the result is written into the given buffer (the plan replay
    emitter); the elementwise float operations are the same either way.
    """
    mean = x.mean(axis=axes, keepdims=True)
    sub = x - mean
    var = (sub ** 2).mean(axis=axes, keepdims=True)
    sq = np.sqrt(var + eps)
    norm = sub / sq
    cache["mean"] = mean
    cache["sub"] = sub
    cache["var"] = var
    cache["sq"] = sq
    cache["norm"] = norm
    if weight is None:
        if out is None:
            return norm
        np.copyto(out, norm)
        return out
    if out is None:
        return norm * weight.data.reshape(shape) + bias.data.reshape(shape)
    np.multiply(norm, weight.data.reshape(shape), out=out)
    out += bias.data.reshape(shape)
    return out


def batch_norm(inputs: Tensor, weight: Optional[Tensor], bias: Optional[Tensor],
               axes, param_shape, eps: float,
               stats_hook=None) -> Tensor:
    """Training-mode batch normalisation as a single fused autograd node.

    Replaces the ~10-node composed graph (mean, var, sub, add-eps, sqrt, div,
    two reshapes, mul, add) that :class:`~repro.nn.normalization._BatchNorm`
    used to build per part per step with one tape node whose forward *and*
    backward are bit-identical to the composed formulation -- the closure
    replays the exact per-node float operations, including the order in which
    the engine summed the three input-gradient contributions (variance, then
    centring, then mean).

    ``axes``/``param_shape`` follow the layer's conventions (``(0, 2, 3)`` /
    ``(1, C, 1, 1)`` for 2-d, ``0`` / ``(1, C)`` for 1-d).  ``stats_hook``,
    when given, receives the flat batch mean and biased batch variance each
    time the forward math runs -- at eager forward here and again on every
    plan replay -- so running-statistic updates stay outside the tape but
    inside the replayed step.
    """
    inputs = ensure_tensor(inputs)
    affine = weight is not None
    axes_tuple = axes if isinstance(axes, tuple) else (axes,)
    count = int(np.prod([inputs.shape[ax] for ax in axes_tuple]))
    num_features = int(np.prod(param_shape))
    x_shape = inputs.shape
    cache: dict = {}

    out_data = _batch_norm_forward_math(inputs.data, weight, bias, axes,
                                        param_shape, eps, cache)
    if stats_hook is not None:
        stats_hook(cache["mean"].reshape(num_features),
                   cache["var"].reshape(num_features))

    def backward(grad):
        sub = cache["sub"]
        sq = cache["sq"]
        if affine:
            g_norm = grad * weight.data.reshape(param_shape)
            g_weight = ((grad * cache["norm"]).sum(axis=axes_tuple, keepdims=True)
                        .reshape(weight.data.shape))
            g_bias = grad.sum(axis=axes_tuple, keepdims=True).reshape(bias.data.shape)
        else:
            g_norm = grad
        g_sub = g_norm / sq
        g_sq = (-g_norm * sub / (sq ** 2)).sum(axis=axes_tuple, keepdims=True)
        g_var = g_sq * 0.5 / sq
        # engine accumulation order of the composed graph: variance term
        # first, then the centring term, then the mean term
        g_x = np.broadcast_to(g_var, x_shape) * 2.0 * sub / count
        g_x = g_x + g_sub
        g_x = g_x + np.broadcast_to((-g_sub).sum(axis=axes_tuple, keepdims=True),
                                    x_shape) / count
        if affine:
            return g_x, g_weight, g_bias
        return (g_x,)

    parents = (inputs, weight, bias) if affine else (inputs,)
    return Tensor._make(out_data, parents, backward, "batch_norm",
                        {"axes": axes, "axes_tuple": axes_tuple,
                         "shape": param_shape, "eps": eps, "count": count,
                         "num_features": num_features, "cache": cache,
                         "affine": affine, "stats_hook": stats_hook})
