"""Stateless neural-network primitives built on the autograd engine.

These functions are the computational kernels used by the layer classes in
:mod:`repro.nn`.  Convolution and pooling are implemented with an im2col
lowering so that the heavy lifting happens inside a single matrix product
(the same operation the photonic MZI mesh implements in hardware).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor, ensure_tensor

IntPair = Union[int, Tuple[int, int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# softmax family
# --------------------------------------------------------------------------- #
def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    logits = ensure_tensor(logits)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    logits = ensure_tensor(logits)
    return logits - ops.logsumexp(logits, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Encode integer class labels as one-hot rows."""
    labels = np.asarray(labels, dtype=int).reshape(-1)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot encoding")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


# --------------------------------------------------------------------------- #
# linear
# --------------------------------------------------------------------------- #
def linear(inputs: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``inputs @ weight.T + bias``.

    ``weight`` has shape ``(out_features, in_features)`` to match the
    convention used throughout :mod:`repro.nn`.
    """
    output = ensure_tensor(inputs) @ ensure_tensor(weight).transpose()
    if bias is not None:
        output = output + bias
    return output


# --------------------------------------------------------------------------- #
# im2col convolution
# --------------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col_indices(input_shape: Tuple[int, int, int, int],
                   kernel_size: Tuple[int, int],
                   stride: Tuple[int, int],
                   padding: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]:
    """Compute gather indices used to lower a convolution to a matrix product.

    Returns ``(k, i, j, (out_h, out_w))`` where ``k, i, j`` index the channel,
    row and column of each patch element for every output position.
    """
    _batch, channels, height, width = input_shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding
    out_h = _conv_output_size(height, kernel_h, stride_h, pad_h)
    out_w = _conv_output_size(width, kernel_w, stride_w, pad_w)
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {input_shape}, "
            f"kernel {kernel_size}, stride {stride}, padding {padding}"
        )

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return k, i, j, (out_h, out_w)


def im2col(inputs: np.ndarray,
           kernel_size: Tuple[int, int],
           stride: Tuple[int, int],
           padding: Tuple[int, int]) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Output has shape ``(channels * kh * kw, batch * out_h * out_w)``.
    """
    pad_h, pad_w = padding
    padded = np.pad(inputs, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant")
    k, i, j, out_size = im2col_indices(inputs.shape, kernel_size, stride, padding)
    columns = padded[:, k, i, j]                      # (batch, C*kh*kw, out_h*out_w)
    columns = columns.transpose(1, 2, 0).reshape(columns.shape[1], -1)
    return columns, out_size


def col2im(columns: np.ndarray,
           input_shape: Tuple[int, int, int, int],
           kernel_size: Tuple[int, int],
           stride: Tuple[int, int],
           padding: Tuple[int, int]) -> np.ndarray:
    """Scatter-add columns back into image form (adjoint of :func:`im2col`)."""
    batch, channels, height, width = input_shape
    pad_h, pad_w = padding
    padded_shape = (batch, channels, height + 2 * pad_h, width + 2 * pad_w)
    padded = np.zeros(padded_shape, dtype=columns.dtype)
    k, i, j, out_size = im2col_indices(input_shape, kernel_size, stride, padding)
    out_h, out_w = out_size
    cols_reshaped = columns.reshape(channels * kernel_size[0] * kernel_size[1], out_h * out_w, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h:pad_h + height, pad_w:pad_w + width]


def conv2d(inputs: Tensor,
           weight: Tensor,
           bias: Optional[Tensor] = None,
           stride: IntPair = 1,
           padding: IntPair = 0) -> Tensor:
    """2-D cross-correlation (what deep-learning frameworks call convolution).

    Parameters
    ----------
    inputs:
        Tensor of shape ``(batch, in_channels, height, width)``.
    weight:
        Tensor of shape ``(out_channels, in_channels, kernel_h, kernel_w)``.
    bias:
        Optional tensor of shape ``(out_channels,)``.
    """
    inputs = ensure_tensor(inputs)
    weight = ensure_tensor(weight)
    stride = _as_pair(stride)
    padding = _as_pair(padding)
    batch, in_channels, _height, _width = inputs.shape
    out_channels, weight_in_channels, kernel_h, kernel_w = weight.shape
    if in_channels != weight_in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {in_channels}, weight expects {weight_in_channels}"
        )

    columns, (out_h, out_w) = im2col(inputs.data, (kernel_h, kernel_w), stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    out_matrix = weight_matrix @ columns                       # (out_channels, batch*out_h*out_w)
    out_data = out_matrix.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, out_channels, 1, 1)

    def backward(grad):
        grad_matrix = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        grad_weight = (grad_matrix @ columns.T).reshape(weight.shape)
        grad_columns = weight_matrix.T @ grad_matrix
        grad_input = col2im(grad_columns, inputs.shape, (kernel_h, kernel_w), stride, padding)
        grad_bias = grad.sum(axis=(0, 2, 3)) if bias is not None else None
        if bias is not None:
            return grad_input, grad_weight, grad_bias
        return grad_input, grad_weight

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    output = Tensor._make(out_data, parents, backward)
    return output


def max_pool2d(inputs: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling over non-overlapping or strided windows."""
    inputs = ensure_tensor(inputs)
    kernel = _as_pair(kernel_size)
    stride = _as_pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = _conv_output_size(height, kernel[0], stride[0], 0)
    out_w = _conv_output_size(width, kernel[1], stride[1], 0)

    # Treat each channel independently by folding channels into the batch axis.
    reshaped = inputs.data.reshape(batch * channels, 1, height, width)
    columns, _ = im2col(reshaped, kernel, stride, (0, 0))      # (kh*kw, N*out_h*out_w)
    max_idx = columns.argmax(axis=0)
    out_cols = columns[max_idx, np.arange(columns.shape[1])]
    out_data = out_cols.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        grad_cols = np.zeros_like(columns)
        grad_flat = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        grad_cols[max_idx, np.arange(columns.shape[1])] = grad_flat
        grad_input = col2im(grad_cols, (batch * channels, 1, height, width), kernel, stride, (0, 0))
        return (grad_input.reshape(batch, channels, height, width),)

    return Tensor._make(out_data, (inputs,), backward)


def avg_pool2d(inputs: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling over windows."""
    inputs = ensure_tensor(inputs)
    kernel = _as_pair(kernel_size)
    stride = _as_pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = _conv_output_size(height, kernel[0], stride[0], 0)
    out_w = _conv_output_size(width, kernel[1], stride[1], 0)
    window = kernel[0] * kernel[1]

    reshaped = inputs.data.reshape(batch * channels, 1, height, width)
    columns, _ = im2col(reshaped, kernel, stride, (0, 0))
    out_cols = columns.mean(axis=0)
    out_data = out_cols.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    out_data = out_data.reshape(batch, channels, out_h, out_w)

    def backward(grad):
        grad_flat = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
        grad_cols = np.tile(grad_flat / window, (window, 1))
        grad_input = col2im(grad_cols, (batch * channels, 1, height, width), kernel, stride, (0, 0))
        return (grad_input.reshape(batch, channels, height, width),)

    return Tensor._make(out_data, (inputs,), backward)


def global_avg_pool2d(inputs: Tensor) -> Tensor:
    """Average over the spatial dimensions, yielding ``(batch, channels)``."""
    inputs = ensure_tensor(inputs)
    return inputs.mean(axis=(2, 3))


def dropout(inputs: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return ensure_tensor(inputs)
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    inputs = ensure_tensor(inputs)
    mask = (rng.random(inputs.shape) >= rate) / (1.0 - rate)
    return inputs * Tensor(mask.astype(inputs.dtype))
