"""Baseline ONN architectures the paper compares against.

* :mod:`~repro.baselines.conventional` -- the conventional amplitude-only ONN
  of Shen et al. [10] (the "Orig." column of Table II).
* :mod:`~repro.baselines.offt` -- the FFT-based block-circulant ONN of Gu et
  al. [19] (the comparison of Fig. 7).
* :mod:`~repro.baselines.pruning` -- magnitude pruning of ONN weight matrices
  in the spirit of the lottery-ticket photonic pruning of [18].
"""

from repro.baselines.conventional import build_conventional_onn, conventional_area_report
from repro.baselines.offt import (
    BlockCirculantLinear,
    OFFTFCNN,
    offt_device_counts,
    offt_parameter_count,
    OFFTDeviceCounts,
)
from repro.baselines.pruning import magnitude_prune_model, pruned_area_report, sparsity_of_model

__all__ = [
    "build_conventional_onn",
    "conventional_area_report",
    "BlockCirculantLinear",
    "OFFTFCNN",
    "offt_device_counts",
    "offt_parameter_count",
    "OFFTDeviceCounts",
    "magnitude_prune_model",
    "pruned_area_report",
    "sparsity_of_model",
]
