"""The conventional MZI-ONN baseline [10].

In the conventional ONN the input data modulates light amplitudes only, every
weight matrix is deployed at full size via SVD + unitary-to-interferometer
mapping, and photodiodes at the output measure power while discarding phase.
In software this corresponds to the CVNN flavour with the conventional
(amplitude-only) assignment and the photodiode readout -- exactly how the
paper's "Orig." rows are produced.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.area_analysis import model_area_report
from repro.nn.module import Module
from repro.photonics.area import AreaReport


def build_conventional_onn(architecture: str, input_shape: Tuple[int, int, int],
                           num_classes: int, depth: int = 20,
                           width_divider: float = 1.0,
                           rng: Optional[np.random.Generator] = None) -> Module:
    """Build the conventional-ONN software model (CVNN + amplitude-only input)."""
    from repro.models import ModelSpec, build_model

    spec = ModelSpec(architecture=architecture, flavour="cvnn", input_shape=input_shape,
                     num_classes=num_classes, decoder="photodiode", depth=depth,
                     width_divider=width_divider)
    return build_model(spec, rng=rng)


def conventional_area_report(architecture: str, input_shape: Tuple[int, int, int],
                             num_classes: int, depth: int = 20,
                             width_divider: float = 1.0) -> AreaReport:
    """MZI area of the conventional ONN for a given architecture."""
    model = build_conventional_onn(architecture, input_shape, num_classes,
                                   depth=depth, width_divider=width_divider)
    return model_area_report(model)
