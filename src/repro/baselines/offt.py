"""FFT-based block-circulant ONN baseline (OFFT, Gu et al. ASP-DAC 2020 [19]).

The OFFT architecture constrains every weight matrix to be *block-circulant*
with block size ``k``: the matrix is partitioned into ``k x k`` blocks, each of
which is a circulant matrix defined by a length-``k`` vector.  The
matrix-vector product of each block is computed in the frequency domain with
optical FFT (OFFT) butterflies, element-wise multiplication, and an inverse
OFFT.  The number of *weight parameters* drops from ``m*n`` to ``m*n/k``.

Device-count model
------------------
Following the structure described in [19] (and making the parallel-module
assumption explicit, because the original paper's sharing strategy is not
fully specified):

* each ``k``-point OFFT / OIFFT butterfly network uses ``(k/2) log2(k)``
  2x2 couplers (DCs) and the same number of fixed twiddle phase shifters;
* every ``k x k`` circulant block needs one OFFT at its input, ``k``
  element-wise complex multipliers (counted as one MZI each: 2 DCs + 1 PS,
  the same MZI structure used for the Fig. 7 comparison) and one OIFFT at its
  output;
* there are ``ceil(m/k) * ceil(n/k)`` blocks.

This model reproduces the qualitative picture of Fig. 7: OFFT reduces devices
versus the conventional ONN, but OplixNet needs fewer DCs and PSs still.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.activations import ReLU
from repro.nn.module import Sequential
from repro.photonics.area import MZI_DC_COUNT, MZI_PS_COUNT, mzi_count_matrix
from repro.tensor import ops
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor, ensure_tensor


def _circulant_index_matrix(block_size: int) -> np.ndarray:
    """Index matrix ``I[a, b] = (a - b) mod k`` defining a circulant block."""
    rows = np.arange(block_size).reshape(-1, 1)
    cols = np.arange(block_size).reshape(1, -1)
    return np.mod(rows - cols, block_size)


class BlockCirculantLinear(Module):
    """Linear layer with a block-circulant weight matrix (the OFFT constraint).

    Dimensions that are not multiples of the block size are zero-padded, as in
    the original paper.  The forward pass materialises the full weight matrix
    from the per-block parameter vectors (differentiable through fancy
    indexing), which is mathematically identical to the FFT-domain computation
    performed optically.
    """

    def __init__(self, in_features: int, out_features: int, block_size: int = 4,
                 bias: bool = True, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.block_size = int(block_size)
        self.row_blocks = math.ceil(out_features / block_size)
        self.col_blocks = math.ceil(in_features / block_size)
        rng = default_rng(rng)
        scale = 1.0 / math.sqrt(in_features)
        self.block_weights = Parameter(
            rng.uniform(-scale, scale, size=(self.row_blocks, self.col_blocks, block_size)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._index = _circulant_index_matrix(block_size)

    @property
    def parameter_count(self) -> int:
        """Learnable weight parameters (excluding bias)."""
        return self.row_blocks * self.col_blocks * self.block_size

    def full_weight(self) -> Tensor:
        """Materialise the (padded) block-circulant weight matrix."""
        rows = []
        for row_block in range(self.row_blocks):
            row_parts = []
            for col_block in range(self.col_blocks):
                vector = self.block_weights[row_block, col_block]
                row_parts.append(vector[self._index])
            rows.append(ops.concatenate(row_parts, axis=1))
        return ops.concatenate(rows, axis=0)

    def forward(self, inputs: Tensor) -> Tensor:
        inputs = ensure_tensor(inputs)
        padded_in = self.col_blocks * self.block_size
        if padded_in != self.in_features:
            inputs = ops.pad(inputs, ((0, 0), (0, padded_in - self.in_features)))
        weight = self.full_weight()
        outputs = inputs @ weight.transpose()
        outputs = outputs[:, :self.out_features]
        if self.bias is not None:
            outputs = outputs + self.bias
        return outputs


class OFFTFCNN(Module):
    """Fully connected network built from block-circulant layers (the [19] FCNNs)."""

    def __init__(self, in_features: int, hidden_sizes: Sequence[int], num_classes: int,
                 block_size: int = 4, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = int(in_features)
        self.hidden_sizes = [int(h) for h in hidden_sizes]
        self.num_classes = int(num_classes)
        self.block_size = int(block_size)
        layers: List[Module] = []
        previous = self.in_features
        for width in self.hidden_sizes:
            layers.append(BlockCirculantLinear(previous, width, block_size, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(BlockCirculantLinear(previous, self.num_classes, block_size, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, inputs) -> Tensor:
        inputs = ensure_tensor(inputs)
        if inputs.ndim > 2:
            inputs = inputs.flatten(start_dim=1)
        return self.network(inputs)

    def layer_shapes(self) -> List[tuple]:
        shapes = []
        previous = self.in_features
        for width in list(self.hidden_sizes) + [self.num_classes]:
            shapes.append((width, previous))
            previous = width
        return shapes


@dataclass
class OFFTDeviceCounts:
    """Optical device counts of an OFFT-mapped network."""

    directional_couplers: int
    phase_shifters: int
    parameters: int


def offt_parameter_count(rows: int, cols: int, block_size: int) -> int:
    """Weight parameters of a block-circulant ``rows x cols`` matrix."""
    return math.ceil(rows / block_size) * math.ceil(cols / block_size) * block_size


def _fft_stage_units(block_size: int) -> int:
    """2x2 units in a ``block_size``-point butterfly network."""
    if block_size == 1:
        return 0
    stages = int(round(math.log2(block_size)))
    if 2 ** stages != block_size:
        raise ValueError("OFFT block size must be a power of two")
    return (block_size // 2) * stages


def offt_device_counts(layer_shapes: Sequence[tuple], block_size: int = 4) -> OFFTDeviceCounts:
    """DC / PS / parameter counts of an OFFT network with the given layer shapes."""
    total_dc = 0
    total_ps = 0
    total_params = 0
    fft_units = _fft_stage_units(block_size)
    for rows, cols in layer_shapes:
        blocks = math.ceil(rows / block_size) * math.ceil(cols / block_size)
        # OFFT + OIFFT butterflies per block
        total_dc += blocks * 2 * fft_units
        total_ps += blocks * 2 * fft_units
        # element-wise complex multipliers (one MZI each)
        multipliers = blocks * block_size
        total_dc += multipliers * MZI_DC_COUNT
        total_ps += multipliers * MZI_PS_COUNT
        total_params += offt_parameter_count(rows, cols, block_size)
    return OFFTDeviceCounts(directional_couplers=total_dc, phase_shifters=total_ps,
                            parameters=total_params)


def conventional_device_counts(layer_shapes: Sequence[tuple]) -> OFFTDeviceCounts:
    """DC / PS / parameter counts of the conventional (original) ONN."""
    total_mzis = sum(mzi_count_matrix(rows, cols) for rows, cols in layer_shapes)
    total_params = sum(rows * cols for rows, cols in layer_shapes)
    return OFFTDeviceCounts(directional_couplers=MZI_DC_COUNT * total_mzis,
                            phase_shifters=MZI_PS_COUNT * total_mzis,
                            parameters=total_params)
