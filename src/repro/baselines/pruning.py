"""Magnitude pruning of ONN weight matrices (lottery-ticket style, [18]).

Photonic pruning removes MZIs whose phase settings contribute least; in the
software model this corresponds to zeroing the smallest-magnitude weights.
The area model assumes the fraction of MZIs that can be removed equals the
weight sparsity (the idealised assumption of [18]); the paper's criticism --
that high sparsity costs substantial accuracy on FCNNs -- is what the pruning
ablation benchmark reproduces.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.area_analysis import model_area_report
from repro.nn.complex import ComplexConv2d, ComplexLinear
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.photonics.area import AreaReport, LayerArea


_PRUNABLE_TYPES = (Linear, Conv2d, ComplexLinear, ComplexConv2d)


def _weight_arrays(module: Module):
    """Yield the weight arrays of one prunable module (never the biases)."""
    if isinstance(module, (ComplexLinear, ComplexConv2d)):
        yield module.weight_real.data
        yield module.weight_imag.data
    elif isinstance(module, (Linear, Conv2d)):
        yield module.weight.data


def magnitude_prune_model(model: Module, sparsity: float) -> int:
    """Zero the smallest-magnitude weights of every prunable layer in place.

    Parameters
    ----------
    sparsity:
        Fraction of weights to remove in each layer, in ``[0, 1)``.

    Returns
    -------
    int
        Total number of weights that were zeroed.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    removed = 0
    for module in model.modules():
        if not isinstance(module, _PRUNABLE_TYPES):
            continue
        for weight in _weight_arrays(module):
            flat = np.abs(weight).reshape(-1)
            cutoff_count = int(round(sparsity * flat.size))
            if cutoff_count == 0:
                continue
            threshold = np.partition(flat, cutoff_count - 1)[cutoff_count - 1]
            mask = np.abs(weight) > threshold
            removed += int(weight.size - mask.sum())
            weight *= mask
    return removed


def sparsity_of_model(model: Module) -> float:
    """Fraction of exactly-zero weights over all prunable layers."""
    zeros = 0
    total = 0
    for module in model.modules():
        if not isinstance(module, _PRUNABLE_TYPES):
            continue
        for weight in _weight_arrays(module):
            zeros += int((weight == 0).sum())
            total += weight.size
    return zeros / total if total else 0.0


def pruned_area_report(model: Module, sparsity: float) -> AreaReport:
    """Idealised area of a pruned ONN: MZIs scale with the kept fraction."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    dense = model_area_report(model)
    kept = 1.0 - sparsity
    report = AreaReport()
    for layer in dense.layers:
        report.add(LayerArea(name=layer.name, rows=layer.rows, cols=layer.cols,
                             mzis=int(round(layer.mzis * kept)),
                             parameters=int(round(layer.parameters * kept))))
    return report
