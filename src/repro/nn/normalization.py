"""Batch-normalisation layers with running statistics."""

from __future__ import annotations

import contextlib

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

_COMPOSED_MODE = False


@contextlib.contextmanager
def use_composed_batch_norm():
    """Route training-mode batch norm through the composed op-by-op graph.

    The fused :func:`repro.tensor.functional.batch_norm` node is bit-identical
    to the composed formulation (pinned in the test-suite); this context keeps
    the composed graph executable as the reference and as the pre-fusion
    baseline for the training benchmarks.
    """
    global _COMPOSED_MODE
    previous = _COMPOSED_MODE
    _COMPOSED_MODE = True
    try:
        yield
    finally:
        _COMPOSED_MODE = previous


def composed_batch_norm_enabled() -> bool:
    return _COMPOSED_MODE


class _BatchNorm(Module):
    """Shared implementation of 1-d and 2-d batch normalisation.

    During training the layer normalises using batch statistics and updates
    exponential moving averages; during evaluation the moving averages are
    used instead, so that single-sample inference (as on the photonic chip)
    is deterministic.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5,
                 affine: bool = True):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.affine = bool(affine)
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _reduce_axes(self, inputs: Tensor):
        raise NotImplementedError

    def _param_shape(self, inputs: Tensor):
        raise NotImplementedError

    def _update_running_stats(self, batch_mean: np.ndarray, batch_var: np.ndarray) -> None:
        # update running statistics from the *data* (no autograd involvement);
        # the fused node calls this hook again on every plan replay
        self._set_buffer("running_mean",
                         (1 - self.momentum) * self.running_mean + self.momentum * batch_mean)
        self._set_buffer("running_var",
                         (1 - self.momentum) * self.running_var + self.momentum * batch_var)

    def forward(self, inputs: Tensor) -> Tensor:
        axes = self._reduce_axes(inputs)
        shape = self._param_shape(inputs)
        if self.training:
            if not composed_batch_norm_enabled():
                return F.batch_norm(inputs, self.weight, self.bias, axes, shape,
                                    self.eps, stats_hook=self._update_running_stats)
            mean = inputs.mean(axis=axes, keepdims=True)
            var = inputs.var(axis=axes, keepdims=True)
            self._update_running_stats(mean.data.reshape(self.num_features),
                                       var.data.reshape(self.num_features))
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalized = (inputs - mean) / (var + self.eps).sqrt()
        if self.affine:
            normalized = normalized * self.weight.reshape(shape) + self.bias.reshape(shape)
        return normalized

    def __repr__(self) -> str:
        return f"{type(self).__name__}(features={self.num_features}, momentum={self.momentum})"


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(batch, features)`` inputs."""

    def _reduce_axes(self, inputs: Tensor):
        return 0

    def _param_shape(self, inputs: Tensor):
        return (1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(batch, channels, height, width)`` inputs."""

    def _reduce_axes(self, inputs: Tensor):
        return (0, 2, 3)

    def _param_shape(self, inputs: Tensor):
        return (1, self.num_features, 1, 1)
