"""Module / Parameter containers, mirroring the familiar torch.nn API surface.

A :class:`Module` automatically registers parameters, buffers and child
modules assigned as attributes, supports train/eval switching, parameter
iteration, and a simple state-dict mechanism for checkpointing teacher models
during mutual learning.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is a learnable parameter of a :class:`Module`."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and sub-modules as attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. batch-norm statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _name, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), parameter
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [parameter for _name, parameter in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buffer
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return int(sum(parameter.size for parameter in self.parameters()))

    # ------------------------------------------------------------------ #
    # mode switching and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter/buffer names to copied arrays."""
        state: Dict[str, np.ndarray] = {}
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from ``state`` (shapes must match)."""
        own_parameters = dict(self.named_parameters())
        own_buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buffer_name in module._buffers:
                full = f"{module_name}.{buffer_name}" if module_name else buffer_name
                own_buffer_owners[full] = (module, buffer_name)

        missing = []
        for name, parameter in own_parameters.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != parameter.data.shape:
                    raise ValueError(
                        f"shape mismatch for parameter {name!r}: "
                        f"{value.shape} vs {parameter.data.shape}"
                    )
                # write through the existing array: optimizer scratch buffers
                # and compiled training plans hold references to it
                parameter.data[...] = value.astype(parameter.data.dtype, copy=False)
            else:
                missing.append(name)
        for name, (module, buffer_name) in own_buffer_owners.items():
            if name in state:
                module._set_buffer(buffer_name, np.array(state[name], copy=True))
            else:
                missing.append(name)
        if strict:
            known = set(own_parameters) | set(own_buffer_owners)
            unexpected = [key for key in state if key not in known]
            if missing or unexpected:
                raise KeyError(f"load_state_dict mismatch: missing={missing}, unexpected={unexpected}")

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        setattr(self, f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, inputs):
        for layer in self._layers:
            inputs = layer(inputs)
        return inputs


class ModuleList(Module):
    """A list of sub-modules that registers each element."""

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise NotImplementedError("ModuleList is a container and has no forward()")
