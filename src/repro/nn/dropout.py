"""Dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = default_rng(rng)

    def forward(self, inputs: Tensor) -> Tensor:
        return F.dropout(inputs, self.rate, self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
