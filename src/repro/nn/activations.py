"""Real-valued activation layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F, ops
from repro.tensor.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return ops.relu(inputs)


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, inputs: Tensor) -> Tensor:
        return ops.leaky_relu(inputs, self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, inputs: Tensor) -> Tensor:
        return ops.tanh(inputs)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, inputs: Tensor) -> Tensor:
        return ops.sigmoid(inputs)


class Softmax(Module):
    """Softmax along a configurable axis (default: last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, inputs: Tensor) -> Tensor:
        return F.softmax(inputs, axis=self.axis)
