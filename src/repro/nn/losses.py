"""Loss functions: classification, regression and knowledge-distillation losses.

The distillation losses implement Eqs. (3)/(4) of the OplixNet paper:

.. math::

    L_{SCVNN} = L_{CE} + \\alpha \\, L_{KD\\_CVNN}, \\qquad
    L_{CVNN}  = L_{CE} + \\alpha \\, L_{KD\\_SCVNN}

where the KD term is the Kullback-Leibler divergence between the softened
output distributions of the two networks (deep mutual learning, Zhang et al.
CVPR 2018).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, ensure_tensor, mark_trace_input


def _labels_to_array(labels: Union[Tensor, np.ndarray]) -> np.ndarray:
    if isinstance(labels, Tensor):
        labels = labels.data
    return np.asarray(labels).astype(int).reshape(-1)


def smoothed_targets(labels: np.ndarray, num_classes: int, label_smoothing: float,
                     dtype) -> np.ndarray:
    """The (optionally label-smoothed) target distribution of ``cross_entropy``.

    Shared with the train-plan compiler, which recomputes the targets for each
    new batch and copies them into the traced target leaf.
    """
    targets = F.one_hot(labels, num_classes, dtype=dtype)
    if label_smoothing > 0.0:
        targets = (1.0 - label_smoothing) * targets + label_smoothing / num_classes
    return targets


def cross_entropy(logits: Tensor, labels: Union[Tensor, np.ndarray],
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer class ``labels``.

    Parameters
    ----------
    logits:
        ``(batch, num_classes)`` raw scores.
    labels:
        Integer class indices of shape ``(batch,)``.
    label_smoothing:
        Optional smoothing factor in ``[0, 1)``; the target distribution
        becomes ``(1 - s) * one_hot + s / num_classes``.
    """
    logits = ensure_tensor(logits)
    labels = _labels_to_array(labels)
    batch, num_classes = logits.shape
    if labels.shape[0] != batch:
        raise ValueError(f"label count {labels.shape[0]} does not match batch size {batch}")
    targets_tensor = Tensor(smoothed_targets(labels, num_classes, label_smoothing,
                                             logits.dtype))
    mark_trace_input(targets_tensor, "cross_entropy_targets",
                     {"num_classes": num_classes,
                      "label_smoothing": float(label_smoothing),
                      "dtype": logits.dtype})
    log_probs = F.log_softmax(logits, axis=-1)
    return -(targets_tensor * log_probs).sum(axis=-1).mean()


def mse_loss(prediction: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    prediction = ensure_tensor(prediction)
    target = ensure_tensor(target)
    difference = prediction - target.detach()
    return (difference * difference).mean()


def kl_divergence(student_logits: Tensor, teacher_logits: Tensor,
                  temperature: float = 1.0) -> Tensor:
    """``KL(teacher || student)`` on temperature-softened distributions.

    Gradients only flow into ``student_logits``; the teacher distribution is
    treated as a constant target (each network in mutual learning computes its
    own loss against the *detached* peer, exactly as in deep mutual learning).
    The classic :math:`T^2` factor keeps gradient magnitudes comparable across
    temperatures.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    student_logits = ensure_tensor(student_logits)
    teacher_logits = ensure_tensor(teacher_logits).detach()
    student_log_probs = F.log_softmax(student_logits / temperature, axis=-1)
    teacher_probs = F.softmax(Tensor(teacher_logits.data / temperature), axis=-1)
    teacher_log_probs = F.log_softmax(Tensor(teacher_logits.data / temperature), axis=-1)
    divergence = (teacher_probs * (teacher_log_probs - student_log_probs)).sum(axis=-1).mean()
    return divergence * (temperature ** 2)


class CrossEntropyLoss(Module):
    """Cross-entropy on raw logits and integer labels."""

    def __init__(self, label_smoothing: float = 0.0):
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: Tensor, labels) -> Tensor:
        return cross_entropy(logits, labels, label_smoothing=self.label_smoothing)


class MSELoss(Module):
    """Mean squared error loss."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return mse_loss(prediction, target)


class KLDivergenceLoss(Module):
    """Temperature-softened KL divergence used as the distillation term."""

    def __init__(self, temperature: float = 1.0):
        super().__init__()
        self.temperature = float(temperature)

    def forward(self, student_logits: Tensor, teacher_logits: Tensor) -> Tensor:
        return kl_divergence(student_logits, teacher_logits, temperature=self.temperature)


class DistillationLoss(Module):
    """Combined loss ``L_CE + alpha * L_KD`` of Eqs. (3)/(4).

    Parameters
    ----------
    alpha:
        Mixing factor between the supervised and distillation terms (the paper
        uses ``alpha = 1.0``).
    temperature:
        Softening temperature for the KD term.
    """

    def __init__(self, alpha: float = 1.0, temperature: float = 1.0,
                 label_smoothing: float = 0.0):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.temperature = float(temperature)
        self.label_smoothing = float(label_smoothing)

    def forward(self, logits: Tensor, labels, peer_logits: Optional[Tensor] = None) -> Tensor:
        loss = cross_entropy(logits, labels, label_smoothing=self.label_smoothing)
        if peer_logits is not None and self.alpha > 0:
            loss = loss + self.alpha * kl_divergence(logits, peer_logits, temperature=self.temperature)
        return loss
