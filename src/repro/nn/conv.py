"""Real-valued 2-D convolution layer."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import default_rng, kaiming_uniform
from repro.tensor.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


class Conv2d(Module):
    """2-D convolution over ``(batch, channels, height, width)`` inputs.

    The layer follows the cross-correlation convention of mainstream deep
    learning frameworks; in the photonic deployment each kernel position is
    lowered (via im2col) onto the same MZI-mesh matrix-vector product used for
    fully connected layers.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("Conv2d channel counts must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.stride = stride if isinstance(stride, tuple) else (stride, stride)
        self.padding = padding if isinstance(padding, tuple) else (padding, padding)
        rng = default_rng(rng)
        weight_shape = (self.out_channels, self.in_channels, *self.kernel_size)
        self.weight = Parameter(kaiming_uniform(weight_shape, rng=rng))
        if bias:
            fan_in = self.in_channels * self.kernel_size[0] * self.kernel_size[1]
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(self.out_channels,)))
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        return F.conv2d(inputs, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_shape(self, height: int, width: int) -> Tuple[int, int]:
        """Spatial output size for a given input size."""
        out_h = (height + 2 * self.padding[0] - self.kernel_size[0]) // self.stride[0] + 1
        out_w = (width + 2 * self.padding[1] - self.kernel_size[1]) // self.stride[1] + 1
        return out_h, out_w

    def __repr__(self) -> str:
        return (f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
                f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})")
