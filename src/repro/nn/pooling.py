"""Pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


class MaxPool2d(Module):
    """Max pooling over spatial windows."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return F.max_pool2d(inputs, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel_size}, stride={self.stride or self.kernel_size})"


class AvgPool2d(Module):
    """Average pooling over spatial windows."""

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return F.avg_pool2d(inputs, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel_size}, stride={self.stride or self.kernel_size})"


class GlobalAvgPool2d(Module):
    """Global average pooling producing a ``(batch, channels)`` tensor."""

    def forward(self, inputs: Tensor) -> Tensor:
        return F.global_avg_pool2d(inputs)
