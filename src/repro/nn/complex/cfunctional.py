"""Fused complex-valued kernels for the training hot path.

The split complex layers of :mod:`repro.nn.complex` express one complex
product as four real products (Eq. 2 of the paper).  That is the right
*representation* for photonic deployment, but a slow way to *train*: a complex
convolution pays four full convolution passes -- four patch extractions over
the same two input planes -- and its backward pass another eight.

The fused kernels here keep the pair-of-real-tensors representation at the
interface while computing with:

* **one column extraction per input plane** -- ``im2col`` runs once for the
  real part and once for the imaginary part, and the backward closure reuses
  the cached columns;
* **the 3-multiplication (Karatsuba) complex product** instead of 4::

      A = Wr Xr,  B = Wi Xi,  C = (Wr + Wi)(Xr + Xi)
      Re = A - B,  Im = C - A - B

  applied to the forward matmuls and to both backward products (gradients
  w.r.t. inputs and weights), cutting 4 + 8 matmuls down to 3 + 6;
* **a joint autograd node**: the real/imaginary outputs are two views of one
  packed ``(2, ...)`` tensor, so the hand-written backward fires once with
  both upstream gradients and shares every intermediate.

:func:`complex_linear_reference` / :func:`complex_conv2d_reference` keep the
4-real-op formulation as an executable specification; the parity tests pin the
fused gradients against it to 1e-8 across stride/padding/bias combinations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.tensor import functional as F
from repro.tensor.functional import (
    IntPair,
    _as_pair,
    col2im_reference,
    conv2d_reference,
    im2col,
)
from repro.tensor.tensor import Tensor, ensure_tensor


def _unpack_pair(packed: Tensor) -> ComplexTensor:
    """Split a packed ``(2, ...)`` tensor into a :class:`ComplexTensor`.

    Each part is a zero-copy view of the packed data; its backward embeds the
    upstream gradient into the matching slot of a zero packed gradient, so the
    packed node's hand-written backward receives both parts' gradients in one
    call (missing parts stay zero).
    """

    def part(index: int) -> Tensor:
        def backward(grad):
            full = np.zeros_like(packed.data)
            full[index] = grad
            return (full,)

        return Tensor._make(packed.data[index], (packed,), backward,
                            "pick", {"index": index})

    return ComplexTensor(part(0), part(1))


def complex_linear(inputs: ComplexTensor,
                   weight_real: Tensor, weight_imag: Tensor,
                   bias_real: Optional[Tensor] = None,
                   bias_imag: Optional[Tensor] = None) -> ComplexTensor:
    """Fused complex affine map ``y = x W^T + b`` on split tensors.

    Three matmuls forward (Karatsuba), six backward; matches
    :func:`complex_linear_reference` to machine precision.
    """
    if not isinstance(inputs, ComplexTensor):
        inputs = ComplexTensor(inputs)
    x_real, x_imag = inputs.real, inputs.imag
    weight_real = ensure_tensor(weight_real)
    weight_imag = ensure_tensor(weight_imag)
    lead_shape = x_real.shape[:-1]
    in_features = x_real.shape[-1]
    out_features = weight_real.shape[0]

    xr = x_real.data.reshape(-1, in_features)
    xi = x_imag.data.reshape(-1, in_features)
    wr, wi = weight_real.data, weight_imag.data
    w_sum_t = (wr + wi).T

    a = xr @ wr.T
    b = xi @ wi.T
    c = (xr + xi) @ w_sum_t
    out = np.empty((2,) + lead_shape + (out_features,), dtype=a.dtype)
    np.subtract(a, b, out=out[0].reshape(a.shape))
    out_imag = out[1].reshape(a.shape)
    np.subtract(c, a, out=out_imag)
    out_imag -= b
    has_bias = bias_real is not None
    if has_bias:
        out[0] += bias_real.data
        out[1] += bias_imag.data

    needs_input_grad = x_real.requires_grad or x_imag.requires_grad
    needs_weight_grad = weight_real.requires_grad or weight_imag.requires_grad
    input_shape = x_real.shape

    def backward(grad):
        # data reads happen at call time so a replayed plan (which refreshes
        # the parents' buffers in place) reuses this closure unchanged
        bxr = x_real.data.reshape(-1, in_features)
        bxi = x_imag.data.reshape(-1, in_features)
        bwr, bwi = weight_real.data, weight_imag.data
        grad_r = grad[0].reshape(-1, out_features)
        grad_i = grad[1].reshape(-1, out_features)
        grad_sum = grad_r + grad_i
        dx_real = dx_imag = dw_real = dw_imag = None
        if needs_input_grad:
            # dx = g conj(W): Re = gr Wr + gi Wi, Im = (gr + gi)(Wr - Wi) - gr Wr + gi Wi
            p1 = grad_r @ bwr
            p2 = grad_i @ bwi
            dx_real = (p1 + p2).reshape(input_shape)
            dx_imag = (grad_sum @ (bwr - bwi) - p1 + p2).reshape(input_shape)
        if needs_weight_grad:
            # dW = g^T conj(x): Re = gr^T xr + gi^T xi, Im = (gr + gi)^T (xr - xi) - gr^T xr + gi^T xi
            q1 = grad_r.T @ bxr
            q2 = grad_i.T @ bxi
            dw_real = q1 + q2
            dw_imag = grad_sum.T @ (bxr - bxi) - q1 + q2
        if has_bias:
            return (dx_real, dx_imag, dw_real, dw_imag,
                    grad_r.sum(axis=0), grad_i.sum(axis=0))
        return dx_real, dx_imag, dw_real, dw_imag

    parents = (x_real, x_imag, weight_real, weight_imag)
    if has_bias:
        parents = parents + (bias_real, bias_imag)
    packed = Tensor._make(out, parents, backward, "complex_linear",
                          {"lead_shape": lead_shape,
                           "in_features": in_features,
                           "out_features": out_features,
                           "has_bias": has_bias})
    return _unpack_pair(packed)


def complex_linear_reference(inputs: ComplexTensor,
                             weight_real: Tensor, weight_imag: Tensor,
                             bias_real: Optional[Tensor] = None,
                             bias_imag: Optional[Tensor] = None) -> ComplexTensor:
    """The 4-real-multiplication formulation of Eq. (2), kept as reference."""
    if not isinstance(inputs, ComplexTensor):
        inputs = ComplexTensor(inputs)
    out_real = (F.linear(inputs.real, weight_real, bias_real)
                - F.linear(inputs.imag, weight_imag, None))
    out_imag = (F.linear(inputs.real, weight_imag, bias_imag)
                + F.linear(inputs.imag, weight_real, None))
    return ComplexTensor(out_real, out_imag)


def complex_conv2d(inputs: ComplexTensor,
                   weight_real: Tensor, weight_imag: Tensor,
                   bias_real: Optional[Tensor] = None,
                   bias_imag: Optional[Tensor] = None,
                   stride: IntPair = 1,
                   padding: IntPair = 0,
                   product: str = "block") -> ComplexTensor:
    """Fused complex 2-D cross-correlation on split tensors.

    The real and imaginary planes are stacked along the channel axis, so one
    ``im2col`` extracts the columns of *both* input planes (the 4-real-op
    reference extracts them four times) and one fast
    :func:`~repro.tensor.functional.col2im` scatters both input-gradient
    planes back.  The backward closure reuses the cached forward columns for
    the weight gradients.

    ``product`` picks the complex-product strategy on the shared columns:

    * ``"block"`` (default): the Eq. (2) real block expansion
      ``[[Wr, -Wi], [Wi, Wr]]`` applied as a *single* matrix product per
      direction (one forward, two backward).  The paper's convolution kernels
      are thin (small ``out_channels`` x ``C * kh * kw``), so their matmuls
      are memory-bound and one wide product beats three thin ones -- measured
      ~2x faster than Karatsuba on the LeNet/ResNet shapes.
    * ``"karatsuba"``: the 3-multiplication complex product
      ``A = Wr Xr, B = Wi Xi, C = (Wr + Wi)(Xr + Xi)`` with 3 matmuls forward
      and 6 backward.  Fewer FLOPs, more passes over the column arrays; wins
      only when the kernel matrices are large enough to be compute-bound.

    Both strategies share the same cached columns and are gradcheck-pinned
    against :func:`complex_conv2d_reference`.
    """
    if product not in ("block", "karatsuba"):
        raise ValueError(f"unknown complex product strategy {product!r}")
    if not isinstance(inputs, ComplexTensor):
        inputs = ComplexTensor(inputs)
    x_real, x_imag = inputs.real, inputs.imag
    weight_real = ensure_tensor(weight_real)
    weight_imag = ensure_tensor(weight_imag)
    stride = _as_pair(stride)
    padding = _as_pair(padding)
    batch, in_channels, height, width = x_real.shape
    out_channels, weight_in_channels, kernel_h, kernel_w = weight_real.shape
    if in_channels != weight_in_channels:
        raise ValueError(
            f"complex_conv2d channel mismatch: input has {in_channels}, "
            f"weight expects {weight_in_channels}"
        )
    input_shape = x_real.shape
    stacked_shape = (batch, 2 * in_channels, height, width)
    kernel = (kernel_h, kernel_w)
    patch = in_channels * kernel_h * kernel_w
    col2im_fn = col2im_reference if F.reference_kernels_enabled() else F._col2im_fast

    # one extraction covers both planes: stacking along channels makes the
    # top `patch` column rows the real plane and the bottom the imaginary one
    stacked = np.concatenate([x_real.data, x_imag.data], axis=1)
    columns, (out_h, out_w) = im2col(stacked, kernel, stride, padding)
    cols_real = columns[:patch]
    cols_imag = columns[patch:]
    wr = weight_real.data.reshape(out_channels, -1)
    wi = weight_imag.data.reshape(out_channels, -1)
    cache = {"columns": columns}

    matrix_shape = (2, out_channels, out_h, out_w, batch)
    if product == "block":
        # W2 = [[Wr, -Wi], [Wi, Wr]]: one wide matmul yields both planes
        w_block = np.empty((2 * out_channels, 2 * patch),
                           dtype=np.result_type(wr, wi))
        w_block[:out_channels, :patch] = wr
        np.negative(wi, out=w_block[:out_channels, patch:])
        w_block[out_channels:, :patch] = wi
        w_block[out_channels:, patch:] = wr
        cache["w_block"] = w_block
        out_matrix = w_block @ columns
        out = np.ascontiguousarray(
            out_matrix.reshape(matrix_shape).transpose(0, 4, 1, 2, 3))
    else:
        a = wr @ cols_real
        b = wi @ cols_imag
        c = (wr + wi) @ (cols_real + cols_imag)
        out = np.empty((2, batch, out_channels, out_h, out_w), dtype=a.dtype)
        out[0] = np.subtract(a, b).reshape(matrix_shape[1:]).transpose(3, 0, 1, 2)
        c -= a
        c -= b
        out[1] = c.reshape(matrix_shape[1:]).transpose(3, 0, 1, 2)
    has_bias = bias_real is not None
    if has_bias:
        bias_shape = (1, out_channels, 1, 1)
        out[0] += bias_real.data.reshape(bias_shape)
        out[1] += bias_imag.data.reshape(bias_shape)

    # captured at forward time: gradients that no parent needs (e.g. the input
    # planes of the first layer are the data batch) are never computed, which
    # skips one wide matmul and the whole col2im scatter per step
    needs_input_grad = x_real.requires_grad or x_imag.requires_grad
    needs_weight_grad = weight_real.requires_grad or weight_imag.requires_grad

    weight_shape = weight_real.shape

    def backward(grad):
        # forward intermediates come from the cache and weights are read at
        # call time, so a replayed plan that refreshes the cache per step can
        # reuse this closure unchanged
        cols = cache["columns"]
        bcols_real = cols[:patch]
        bcols_imag = cols[patch:]
        bwr = weight_real.data.reshape(out_channels, -1)
        bwi = weight_imag.data.reshape(out_channels, -1)
        # one transpose pass produces the stacked (2*OC, out_h*out_w*batch)
        # upstream gradient for both planes
        grad_matrix = grad.transpose(0, 2, 3, 4, 1).reshape(2 * out_channels, -1)
        grad_r = grad_matrix[:out_channels]
        grad_i = grad_matrix[out_channels:]
        dx_real = dx_imag = dw_real = dw_imag = None
        if product == "block":
            # dW2 = G @ cols^T, dcols = W2^T @ G: one product per direction
            if needs_weight_grad:
                dw_block = grad_matrix @ cols.T
                dw_real = dw_block[:out_channels, :patch] + dw_block[out_channels:, patch:]
                dw_imag = dw_block[out_channels:, :patch] - dw_block[:out_channels, patch:]
            dcols = cache["w_block"].T @ grad_matrix if needs_input_grad else None
        else:
            grad_sum = grad_r + grad_i
            if needs_weight_grad:
                # dW = g conj(cols)^T (Karatsuba on the shared cached columns)
                p1 = grad_r @ bcols_real.T
                p2 = grad_i @ bcols_imag.T
                dw_real = p1 + p2
                dw_imag = grad_sum @ (bcols_real - bcols_imag).T - p1 + p2
            dcols = None
            if needs_input_grad:
                # dcols = conj(W)^T g
                q1 = bwr.T @ grad_r
                q2 = bwi.T @ grad_i
                dcols = np.empty((2 * patch, grad_r.shape[1]), dtype=q1.dtype)
                np.add(q1, q2, out=dcols[:patch])
                dcols[patch:] = (bwr - bwi).T @ grad_sum
                dcols[patch:] -= q1
                dcols[patch:] += q2
        if needs_input_grad:
            dx_stacked = col2im_fn(dcols, stacked_shape, kernel, stride, padding)
            dx_real = dx_stacked[:, :in_channels]
            dx_imag = dx_stacked[:, in_channels:]
        if needs_weight_grad:
            dw_real = dw_real.reshape(weight_shape)
            dw_imag = dw_imag.reshape(weight_shape)
        if has_bias:
            return (dx_real, dx_imag, dw_real, dw_imag,
                    grad_r.sum(axis=1), grad_i.sum(axis=1))
        return dx_real, dx_imag, dw_real, dw_imag

    parents = (x_real, x_imag, weight_real, weight_imag)
    if has_bias:
        parents = parents + (bias_real, bias_imag)
    packed = Tensor._make(out, parents, backward, "complex_conv2d",
                          {"cache": cache, "product": product,
                           "kernel": kernel, "stride": stride,
                           "padding": padding, "patch": patch,
                           "in_channels": in_channels,
                           "out_channels": out_channels,
                           "stacked_shape": stacked_shape,
                           "matrix_shape": matrix_shape,
                           "out_hw": (out_h, out_w),
                           "has_bias": has_bias})
    return _unpack_pair(packed)


def complex_conv2d_reference(inputs: ComplexTensor,
                             weight_real: Tensor, weight_imag: Tensor,
                             bias_real: Optional[Tensor] = None,
                             bias_imag: Optional[Tensor] = None,
                             stride: IntPair = 1,
                             padding: IntPair = 0) -> ComplexTensor:
    """The seed 4-real-convolution formulation, kept as reference.

    Built on :func:`~repro.tensor.functional.conv2d_reference`, so it
    reproduces the full pre-optimization path (index-table im2col gathers and
    the ``np.add.at`` adjoint) -- the baseline the training benchmark and the
    gradcheck parity tests measure the fused kernel against.
    """
    if not isinstance(inputs, ComplexTensor):
        inputs = ComplexTensor(inputs)
    conv = lambda x, w, b: conv2d_reference(x, w, b, stride=stride, padding=padding)  # noqa: E731
    out_real = (conv(inputs.real, weight_real, bias_real)
                - conv(inputs.imag, weight_imag, None))
    out_imag = (conv(inputs.real, weight_imag, bias_imag)
                + conv(inputs.imag, weight_real, None))
    return ComplexTensor(out_real, out_imag)
