"""Containers and structural layers operating on :class:`ComplexTensor`."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.random import default_rng
from repro.tensor.tensor import Tensor, mark_trace_volatile

IntPair = Union[int, Tuple[int, int]]


class ComplexSequential(Module):
    """Chain of complex modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def append(self, module: Module) -> "ComplexSequential":
        setattr(self, f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, inputs):
        for layer in self._layers:
            inputs = layer(inputs)
        return inputs


class ComplexFlatten(Module):
    """Flatten the spatial/channel dimensions of both parts."""

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return inputs.flatten(start_dim=1)


class ComplexAvgPool2d(Module):
    """Average pooling applied to real and imaginary parts.

    Averaging is a linear operation, so pooling each part independently is the
    exact complex average pool.
    """

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(
            F.avg_pool2d(inputs.real, self.kernel_size, self.stride),
            F.avg_pool2d(inputs.imag, self.kernel_size, self.stride),
        )


class ComplexMaxPool2d(Module):
    """Magnitude-driven max pooling.

    The element with the largest modulus in each window is selected and both
    its real and imaginary parts are propagated, preserving phase information
    (selecting by modulus is what an optical power monitor would do).
    """

    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        kernel = self.kernel_size if isinstance(self.kernel_size, tuple) else (self.kernel_size,) * 2
        stride = self.stride if self.stride is not None else kernel
        stride = stride if isinstance(stride, tuple) else (stride, stride)
        batch, channels, height, width = inputs.shape
        out_h = (height - kernel[0]) // stride[0] + 1
        out_w = (width - kernel[1]) // stride[1] + 1

        # Select indices by modulus (constant w.r.t. autograd), then gather both
        # parts with the same indices so the selection is consistent.
        mark_trace_volatile("complex max-pool modulus argmax")
        power = inputs.real.data ** 2 + inputs.imag.data ** 2
        reshaped = power.reshape(batch * channels, 1, height, width)
        columns, _ = F.im2col(reshaped, kernel, stride, (0, 0))
        max_idx = columns.argmax(axis=0)
        # capture the adjoint kernel at forward time (same contract as the
        # closures in repro.tensor.functional)
        col2im_fn = (F.col2im_reference if F.reference_kernels_enabled()
                     else F._col2im_fast)

        def gather(part: Tensor) -> Tensor:
            part_reshaped = part.reshape(batch * channels, 1, height, width)
            # build a differentiable gather using the same column lowering
            part_cols_data, _ = F.im2col(part_reshaped.data, kernel, stride, (0, 0))

            def backward(grad):
                grad_cols = np.zeros_like(part_cols_data)
                grad_flat = grad.reshape(batch * channels, out_h, out_w).transpose(1, 2, 0).reshape(-1)
                grad_cols[max_idx, np.arange(part_cols_data.shape[1])] = grad_flat
                grad_input = col2im_fn(grad_cols, (batch * channels, 1, height, width), kernel, stride, (0, 0))
                return (grad_input.reshape(batch, channels, height, width),)

            selected = part_cols_data[max_idx, np.arange(part_cols_data.shape[1])]
            out_data = selected.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
            out_data = out_data.reshape(batch, channels, out_h, out_w)
            return Tensor._make(out_data, (part,), backward)

        return ComplexTensor(gather(inputs.real), gather(inputs.imag))


class ComplexGlobalAvgPool2d(Module):
    """Global average pooling of both parts."""

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(inputs.real.mean(axis=(2, 3)), inputs.imag.mean(axis=(2, 3)))


class ComplexDropout(Module):
    """Dropout that zeroes the same positions in both parts.

    Dropping real and imaginary parts together keeps dropped units physically
    meaningful (an extinguished light signal has neither amplitude nor phase).
    """

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self._rng = default_rng(rng)

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        if not self.training or self.rate <= 0.0:
            return inputs
        mask = (self._rng.random(inputs.shape) >= self.rate) / (1.0 - self.rate)
        mask_tensor = Tensor(mask.astype(inputs.real.dtype))
        return ComplexTensor(inputs.real * mask_tensor, inputs.imag * mask_tensor)
