"""Complex-to-real expansion of matrices and vectors (Eq. 2 of the paper).

A complex matrix-vector multiplication ``W_c x_c`` can be rewritten as a real
matrix-vector multiplication ``W_cr x_cr`` of twice the dimension, where each
complex entry ``w = a + jb`` becomes the 2x2 block ``[[a, -b], [b, a]]`` and
each complex vector element ``x = u + jv`` becomes the pair ``(u, v)``.

The expanded matrix has only half the independent degrees of freedom of an
unconstrained real matrix of the same size -- this is the expressiveness
trade-off that OplixNet's knowledge-distillation step compensates for.
"""

from __future__ import annotations

import numpy as np


def complex_matrix_to_real(matrix: np.ndarray) -> np.ndarray:
    """Expand an ``(m, n)`` complex matrix into a ``(2m, 2n)`` real matrix.

    The interleaved layout follows Eq. (2): output row ``2i`` is the real part
    of complex output ``i`` and row ``2i + 1`` its imaginary part; likewise for
    the input columns.
    """
    matrix = np.asarray(matrix)
    rows, cols = matrix.shape
    expanded = np.zeros((2 * rows, 2 * cols), dtype=float)
    real, imag = matrix.real, matrix.imag
    expanded[0::2, 0::2] = real
    expanded[0::2, 1::2] = -imag
    expanded[1::2, 0::2] = imag
    expanded[1::2, 1::2] = real
    return expanded


def complex_vector_to_real(vector: np.ndarray) -> np.ndarray:
    """Interleave a complex vector ``(n,)`` into a real vector ``(2n,)``.

    Element ``2i`` holds the real part and ``2i + 1`` the imaginary part of
    complex element ``i``, matching :func:`complex_matrix_to_real`.
    """
    vector = np.asarray(vector)
    expanded = np.empty(2 * vector.shape[0], dtype=float)
    expanded[0::2] = vector.real
    expanded[1::2] = vector.imag
    return expanded


def real_vector_to_complex(vector: np.ndarray) -> np.ndarray:
    """Inverse of :func:`complex_vector_to_real`."""
    vector = np.asarray(vector, dtype=float)
    if vector.shape[0] % 2 != 0:
        raise ValueError("interleaved real vector must have even length")
    return vector[0::2] + 1j * vector[1::2]
