"""Complex-valued activation functions.

The library offers the standard complex activation families from the CVNN
literature (Trabelsi et al., Bassey et al.):

* :class:`ModReLU` -- shrinks the modulus by a learnable threshold while
  preserving the phase; the natural choice for optical hardware because it
  only requires an amplitude nonlinearity.
* :class:`CReLU` -- applies ReLU independently to the real and imaginary
  parts (the default in the OplixNet SCVNN models, as it matches the split
  representation exactly).
* :class:`ZReLU` -- passes a value only when its phase lies in the first
  quadrant.
* :class:`ComplexTanh` -- split tanh.
"""

from __future__ import annotations

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.module import Module, Parameter
from repro.tensor import ops
from repro.tensor.tensor import Tensor, mark_trace_volatile


class CReLU(Module):
    """Apply ReLU separately to the real and imaginary parts."""

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(ops.relu(inputs.real), ops.relu(inputs.imag))


class ZReLU(Module):
    """Pass values whose phase lies in ``[0, pi/2]``, zero otherwise."""

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        # the quadrant mask is a data-dependent constant the plan compiler
        # cannot replay
        mark_trace_volatile("zrelu quadrant mask")
        mask = (inputs.real.data >= 0) & (inputs.imag.data >= 0)
        mask_tensor = Tensor(mask.astype(inputs.real.dtype))
        return ComplexTensor(inputs.real * mask_tensor, inputs.imag * mask_tensor)


class ModReLU(Module):
    """``modReLU(z) = ReLU(|z| + b) * z / |z|``.

    The learnable bias ``b`` (one per feature) shifts the modulus before the
    rectification; the phase of ``z`` is preserved, which on the photonic chip
    corresponds to an amplitude-only nonlinearity after coherent detection.
    """

    def __init__(self, num_features: int, eps: float = 1e-6):
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.bias = Parameter(np.zeros(num_features))

    def _bias_shape(self, inputs: ComplexTensor):
        # feature axis is 1 for (batch, features, ...) and -1 for (batch, features)
        if inputs.ndim <= 2:
            return (1, self.num_features)
        return (1, self.num_features) + (1,) * (inputs.ndim - 2)

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        magnitude = inputs.magnitude(eps=self.eps)
        bias = self.bias.reshape(self._bias_shape(inputs))
        scale = ops.relu(magnitude + bias) / magnitude
        return ComplexTensor(inputs.real * scale, inputs.imag * scale)


class ComplexTanh(Module):
    """Split tanh applied independently to both parts."""

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(inputs.real.tanh(), inputs.imag.tanh())
