"""Complex-valued fully connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.complex.expansion import complex_matrix_to_real
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import complex_init, default_rng


class ComplexLinear(Module):
    """Affine layer with complex weights acting on :class:`ComplexTensor` inputs.

    The forward pass expands the complex product into real products:

    ``y_re = x_re W_re^T - x_im W_im^T + b_re``
    ``y_im = x_re W_im^T + x_im W_re^T + b_im``

    which is exactly the split complex-to-real formulation of Eq. (2), so a
    trained layer can be mapped to an MZI mesh either as one complex matrix or
    as its real expansion.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("ComplexLinear features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = default_rng(rng)
        weight_real, weight_imag = complex_init((out_features, in_features), rng=rng)
        self.weight_real = Parameter(weight_real)
        self.weight_imag = Parameter(weight_imag)
        if bias:
            self.bias_real = Parameter(np.zeros(out_features))
            self.bias_imag = Parameter(np.zeros(out_features))
        else:
            self.bias_real = None
            self.bias_imag = None

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        if not isinstance(inputs, ComplexTensor):
            inputs = ComplexTensor(inputs)
        out_real = (F.linear(inputs.real, self.weight_real, self.bias_real)
                    - F.linear(inputs.imag, self.weight_imag, None))
        out_imag = (F.linear(inputs.real, self.weight_imag, self.bias_imag)
                    + F.linear(inputs.imag, self.weight_real, None))
        return ComplexTensor(out_real, out_imag)

    def complex_weight(self) -> np.ndarray:
        """Return the weight as a numpy complex matrix (for photonic deployment)."""
        return self.weight_real.data + 1j * self.weight_imag.data

    def real_expanded_weight(self) -> np.ndarray:
        """Return the Eq. (2) real expansion of the complex weight."""
        return complex_matrix_to_real(self.complex_weight())

    def __repr__(self) -> str:
        return (f"ComplexLinear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias_real is not None})")
