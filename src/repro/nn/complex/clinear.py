"""Complex-valued fully connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.complex.expansion import complex_matrix_to_real
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import complex_init, default_rng


class ComplexLinear(Module):
    """Affine layer with complex weights acting on :class:`ComplexTensor` inputs.

    Mathematically the layer computes the split complex-to-real formulation
    of Eq. (2):

    ``y_re = x_re W_re^T - x_im W_im^T + b_re``
    ``y_im = x_re W_im^T + x_im W_re^T + b_im``

    so a trained layer can be mapped to an MZI mesh either as one complex
    matrix or as its real expansion.  The forward pass routes through the
    fused Karatsuba kernel
    :func:`~repro.nn.complex.cfunctional.complex_linear` (three matmuls
    forward, six backward instead of 4 + 8); :meth:`forward_reference` keeps
    the literal 4-real-product expansion above as an executable
    specification, gradcheck-parity-pinned to 1e-8 in the test-suite.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("ComplexLinear features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = default_rng(rng)
        weight_real, weight_imag = complex_init((out_features, in_features), rng=rng)
        self.weight_real = Parameter(weight_real)
        self.weight_imag = Parameter(weight_imag)
        if bias:
            self.bias_real = Parameter(np.zeros(out_features))
            self.bias_imag = Parameter(np.zeros(out_features))
        else:
            self.bias_real = None
            self.bias_imag = None

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        from repro.nn.complex import cfunctional

        if F.reference_kernels_enabled():
            return self.forward_reference(inputs)
        return cfunctional.complex_linear(
            inputs, self.weight_real, self.weight_imag,
            self.bias_real, self.bias_imag)

    def forward_reference(self, inputs: ComplexTensor) -> ComplexTensor:
        """The seed 4-real-product path (executable specification)."""
        from repro.nn.complex import cfunctional

        return cfunctional.complex_linear_reference(
            inputs, self.weight_real, self.weight_imag,
            self.bias_real, self.bias_imag)

    def complex_weight(self) -> np.ndarray:
        """Return the weight as a numpy complex matrix (for photonic deployment)."""
        return self.weight_real.data + 1j * self.weight_imag.data

    def real_expanded_weight(self) -> np.ndarray:
        """Return the Eq. (2) real expansion of the complex weight."""
        return complex_matrix_to_real(self.complex_weight())

    def __repr__(self) -> str:
        return (f"ComplexLinear(in={self.in_features}, out={self.out_features}, "
                f"bias={self.bias_real is not None})")
