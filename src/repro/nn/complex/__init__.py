"""Complex-valued and split complex-valued neural-network building blocks.

A complex activation/weight is represented as a *pair* of real tensors
(real part, imaginary part).  This "split" representation is exactly the
complex-to-real conversion of Eq. (2) in the OplixNet paper, which means the
software model trained here maps one-to-one onto the optical circuit (complex
transfer matrices of MZI meshes) while the autograd engine only ever sees real
arithmetic.
"""

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.complex.cfunctional import (
    complex_conv2d,
    complex_conv2d_reference,
    complex_linear,
    complex_linear_reference,
)
from repro.nn.complex.expansion import (
    complex_matrix_to_real,
    complex_vector_to_real,
    real_vector_to_complex,
)
from repro.nn.complex.clinear import ComplexLinear
from repro.nn.complex.cconv import ComplexConv2d
from repro.nn.complex.cactivations import ModReLU, CReLU, ZReLU, ComplexTanh
from repro.nn.complex.cnorm import ComplexBatchNorm2d, ComplexBatchNorm1d
from repro.nn.complex.cmodule import (
    ComplexSequential,
    ComplexFlatten,
    ComplexAvgPool2d,
    ComplexMaxPool2d,
    ComplexGlobalAvgPool2d,
    ComplexDropout,
)

__all__ = [
    "ComplexTensor",
    "complex_conv2d",
    "complex_conv2d_reference",
    "complex_linear",
    "complex_linear_reference",
    "complex_matrix_to_real",
    "complex_vector_to_real",
    "real_vector_to_complex",
    "ComplexLinear",
    "ComplexConv2d",
    "ModReLU",
    "CReLU",
    "ZReLU",
    "ComplexTanh",
    "ComplexBatchNorm2d",
    "ComplexBatchNorm1d",
    "ComplexSequential",
    "ComplexFlatten",
    "ComplexAvgPool2d",
    "ComplexMaxPool2d",
    "ComplexGlobalAvgPool2d",
    "ComplexDropout",
]
