"""The :class:`ComplexTensor` pair-of-real-tensors representation."""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor, ensure_tensor


class ComplexTensor:
    """A complex-valued array stored as separate real and imaginary tensors.

    Both parts share shape and participate independently in autograd.  All the
    complex arithmetic below reduces to real arithmetic on the two parts,
    mirroring the split complex-to-real conversion (Eq. 2 of the paper) that
    makes SCVNNs deployable on MZI meshes.
    """

    __slots__ = ("real", "imag")

    def __init__(self, real: Union[Tensor, np.ndarray], imag: Union[Tensor, np.ndarray, None] = None):
        self.real = ensure_tensor(real)
        if imag is None:
            imag = np.zeros_like(self.real.data)
        self.imag = ensure_tensor(imag)
        if self.real.shape != self.imag.shape:
            raise ValueError(
                f"real and imaginary parts must share a shape, got {self.real.shape} vs {self.imag.shape}"
            )

    # ------------------------------------------------------------------ #
    # constructors / converters
    # ------------------------------------------------------------------ #
    @classmethod
    def from_complex_array(cls, array: np.ndarray) -> "ComplexTensor":
        """Build from a numpy complex array."""
        array = np.asarray(array)
        return cls(Tensor(array.real.copy()), Tensor(array.imag.copy()))

    def to_complex_array(self) -> np.ndarray:
        """Return the value as a numpy complex array (detached from autograd)."""
        return self.real.data + 1j * self.imag.data

    @classmethod
    def from_polar(cls, magnitude: np.ndarray, phase: np.ndarray) -> "ComplexTensor":
        """Build from magnitude/phase arrays (the physical light-signal view)."""
        magnitude = np.asarray(magnitude, dtype=float)
        phase = np.asarray(phase, dtype=float)
        return cls(Tensor(magnitude * np.cos(phase)), Tensor(magnitude * np.sin(phase)))

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.real.shape

    @property
    def ndim(self) -> int:
        return self.real.ndim

    def __len__(self) -> int:
        return len(self.real)

    def __repr__(self) -> str:
        return f"ComplexTensor(shape={self.shape})"

    def detach(self) -> "ComplexTensor":
        return ComplexTensor(self.real.detach(), self.imag.detach())

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ComplexTensor") -> "ComplexTensor":
        other = _ensure_complex(other)
        return ComplexTensor(self.real + other.real, self.imag + other.imag)

    def __sub__(self, other: "ComplexTensor") -> "ComplexTensor":
        other = _ensure_complex(other)
        return ComplexTensor(self.real - other.real, self.imag - other.imag)

    def __mul__(self, other: Union["ComplexTensor", float, Tensor]) -> "ComplexTensor":
        if isinstance(other, (int, float)):
            return ComplexTensor(self.real * other, self.imag * other)
        if isinstance(other, Tensor):
            return ComplexTensor(self.real * other, self.imag * other)
        other = _ensure_complex(other)
        real = self.real * other.real - self.imag * other.imag
        imag = self.real * other.imag + self.imag * other.real
        return ComplexTensor(real, imag)

    __rmul__ = __mul__

    def __neg__(self) -> "ComplexTensor":
        return ComplexTensor(-self.real, -self.imag)

    def __matmul__(self, other: "ComplexTensor") -> "ComplexTensor":
        """Complex matrix product ``(a + jb)(c + jd) = (ac - bd) + j(ad + bc)``."""
        other = _ensure_complex(other)
        real = self.real @ other.real - self.imag @ other.imag
        imag = self.real @ other.imag + self.imag @ other.real
        return ComplexTensor(real, imag)

    def conj(self) -> "ComplexTensor":
        """Complex conjugate."""
        return ComplexTensor(self.real, -self.imag)

    def magnitude(self, eps: float = 1e-12) -> Tensor:
        """Modulus ``|z|`` (the quantity a photodiode-based amplitude detector sees)."""
        return (self.real * self.real + self.imag * self.imag + eps).sqrt()

    def power(self) -> Tensor:
        """Squared modulus ``|z|^2`` (optical power measured by a photodiode)."""
        return self.real * self.real + self.imag * self.imag

    def phase(self) -> np.ndarray:
        """Phase angle in radians (non-differentiable helper for analysis)."""
        return np.arctan2(self.imag.data, self.real.data)

    # ------------------------------------------------------------------ #
    # shape manipulation (applied to both parts)
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "ComplexTensor":
        return ComplexTensor(self.real.reshape(*shape), self.imag.reshape(*shape))

    def flatten(self, start_dim: int = 0) -> "ComplexTensor":
        return ComplexTensor(self.real.flatten(start_dim), self.imag.flatten(start_dim))

    def transpose(self, *axes) -> "ComplexTensor":
        return ComplexTensor(self.real.transpose(*axes), self.imag.transpose(*axes))

    def __getitem__(self, index) -> "ComplexTensor":
        return ComplexTensor(self.real[index], self.imag[index])

    def concat_parts(self, axis: int = -1) -> Tensor:
        """Concatenate the real and imaginary parts along ``axis``.

        This is the "interleaved real view" used when a real-valued head (e.g.
        a learnable decoder) consumes complex activations.
        """
        return ops.concatenate([self.real, self.imag], axis=axis)


def _ensure_complex(value) -> ComplexTensor:
    if isinstance(value, ComplexTensor):
        return value
    if isinstance(value, np.ndarray) and np.iscomplexobj(value):
        return ComplexTensor.from_complex_array(value)
    return ComplexTensor(ensure_tensor(value))
