"""Complex batch normalisation (split / "naive" variant).

The real and imaginary parts are normalised independently with their own
affine parameters.  This is the split-complex normalisation commonly used
when complex data is represented as interleaved real channels and is exactly
equivalent to the real BatchNorm the deployed real-expanded network would use.
"""

from __future__ import annotations

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.module import Module
from repro.nn.normalization import BatchNorm1d, BatchNorm2d


class ComplexBatchNorm2d(Module):
    """Independent 2-d batch normalisation of real and imaginary feature maps."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.bn_real = BatchNorm2d(num_features, momentum=momentum, eps=eps)
        self.bn_imag = BatchNorm2d(num_features, momentum=momentum, eps=eps)

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(self.bn_real(inputs.real), self.bn_imag(inputs.imag))


class ComplexBatchNorm1d(Module):
    """Independent 1-d batch normalisation of real and imaginary features."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.bn_real = BatchNorm1d(num_features, momentum=momentum, eps=eps)
        self.bn_imag = BatchNorm1d(num_features, momentum=momentum, eps=eps)

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        return ComplexTensor(self.bn_real(inputs.real), self.bn_imag(inputs.imag))
