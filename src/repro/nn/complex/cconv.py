"""Complex-valued 2-D convolution layer."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import complex_init, default_rng

IntPair = Union[int, Tuple[int, int]]


class ComplexConv2d(Module):
    """Complex convolution on split real/imaginary tensors.

    Mathematically, for input ``x = x_re + j x_im`` and kernel
    ``w = w_re + j w_im``:

    ``y_re = conv(x_re, w_re) - conv(x_im, w_im)``
    ``y_im = conv(x_re, w_im) + conv(x_im, w_re)``

    The forward pass routes through the fused kernel
    :func:`~repro.nn.complex.cfunctional.complex_conv2d`: one im2col over
    the stacked real/imaginary planes (instead of four real convolutions
    each extracting their own columns) and, by default, the Eq. (2) real
    block product ``[[Wr, -Wi], [Wi, Wr]]`` as a single wide matmul per
    direction (the 3-mult Karatsuba product is available via the kernel's
    ``product=`` argument).  :meth:`forward_reference` keeps the literal
    4-real-convolution formulation above as an executable specification,
    and the two are gradcheck-parity-pinned to 1e-8 in the test-suite.

    The channel counts refer to *complex* channels; with OplixNet's
    channel-lossless assignment, a CNN with ``C`` real channels becomes a
    complex CNN with ``ceil(C / 2)`` complex channels, halving the size of the
    convolution kernels deployed on the MZI meshes.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("ComplexConv2d channel counts must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.stride = stride if isinstance(stride, tuple) else (stride, stride)
        self.padding = padding if isinstance(padding, tuple) else (padding, padding)
        rng = default_rng(rng)
        weight_shape = (self.out_channels, self.in_channels, *self.kernel_size)
        weight_real, weight_imag = complex_init(weight_shape, rng=rng)
        self.weight_real = Parameter(weight_real)
        self.weight_imag = Parameter(weight_imag)
        if bias:
            self.bias_real = Parameter(np.zeros(self.out_channels))
            self.bias_imag = Parameter(np.zeros(self.out_channels))
        else:
            self.bias_real = None
            self.bias_imag = None

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        from repro.nn.complex import cfunctional

        if F.reference_kernels_enabled():
            return self.forward_reference(inputs)
        return cfunctional.complex_conv2d(
            inputs, self.weight_real, self.weight_imag,
            self.bias_real, self.bias_imag,
            stride=self.stride, padding=self.padding)

    def forward_reference(self, inputs: ComplexTensor) -> ComplexTensor:
        """The seed 4-real-convolution path (executable specification)."""
        from repro.nn.complex import cfunctional

        return cfunctional.complex_conv2d_reference(
            inputs, self.weight_real, self.weight_imag,
            self.bias_real, self.bias_imag,
            stride=self.stride, padding=self.padding)

    def complex_weight(self) -> np.ndarray:
        """Return the kernel as a numpy complex array."""
        return self.weight_real.data + 1j * self.weight_imag.data

    def weight_matrix(self) -> np.ndarray:
        """The im2col-lowered kernel matrix ``(out_channels, in_channels * kh * kw)``.

        This is the matrix actually deployed on MZI meshes: streaming image
        patches (in ``(channel, kh, kw)`` feature order, the layout of
        :func:`repro.core.lowering.complex_im2col`) through it reproduces the
        convolution exactly, and its shape is what the paper's area model
        counts for convolution layers.
        """
        return self.complex_weight().reshape(self.out_channels, -1)

    def __repr__(self) -> str:
        return (f"ComplexConv2d(in={self.in_channels}, out={self.out_channels}, "
                f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})")
