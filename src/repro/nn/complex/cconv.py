"""Complex-valued 2-D convolution layer."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.complex.ctensor import ComplexTensor
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import complex_init, default_rng

IntPair = Union[int, Tuple[int, int]]


class ComplexConv2d(Module):
    """Complex convolution implemented as four real convolutions.

    For input ``x = x_re + j x_im`` and kernel ``w = w_re + j w_im``:

    ``y_re = conv(x_re, w_re) - conv(x_im, w_im)``
    ``y_im = conv(x_re, w_im) + conv(x_im, w_re)``

    The channel counts refer to *complex* channels; with OplixNet's
    channel-lossless assignment, a CNN with ``C`` real channels becomes a
    complex CNN with ``ceil(C / 2)`` complex channels, halving the size of the
    convolution kernels deployed on the MZI meshes.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: IntPair,
                 stride: IntPair = 1, padding: IntPair = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("ComplexConv2d channel counts must be positive")
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.stride = stride if isinstance(stride, tuple) else (stride, stride)
        self.padding = padding if isinstance(padding, tuple) else (padding, padding)
        rng = default_rng(rng)
        weight_shape = (self.out_channels, self.in_channels, *self.kernel_size)
        weight_real, weight_imag = complex_init(weight_shape, rng=rng)
        self.weight_real = Parameter(weight_real)
        self.weight_imag = Parameter(weight_imag)
        if bias:
            self.bias_real = Parameter(np.zeros(self.out_channels))
            self.bias_imag = Parameter(np.zeros(self.out_channels))
        else:
            self.bias_real = None
            self.bias_imag = None

    def forward(self, inputs: ComplexTensor) -> ComplexTensor:
        if not isinstance(inputs, ComplexTensor):
            inputs = ComplexTensor(inputs)
        conv = lambda x, w, b: F.conv2d(x, w, b, stride=self.stride, padding=self.padding)  # noqa: E731
        out_real = (conv(inputs.real, self.weight_real, self.bias_real)
                    - conv(inputs.imag, self.weight_imag, None))
        out_imag = (conv(inputs.real, self.weight_imag, self.bias_imag)
                    + conv(inputs.imag, self.weight_real, None))
        return ComplexTensor(out_real, out_imag)

    def complex_weight(self) -> np.ndarray:
        """Return the kernel as a numpy complex array."""
        return self.weight_real.data + 1j * self.weight_imag.data

    def weight_matrix(self) -> np.ndarray:
        """The im2col-lowered kernel matrix ``(out_channels, in_channels * kh * kw)``.

        This is the matrix actually deployed on MZI meshes: streaming image
        patches (in ``(channel, kh, kw)`` feature order, the layout of
        :func:`repro.core.lowering.complex_im2col`) through it reproduces the
        convolution exactly, and its shape is what the paper's area model
        counts for convolution layers.
        """
        return self.complex_weight().reshape(self.out_channels, -1)

    def __repr__(self) -> str:
        return (f"ComplexConv2d(in={self.in_channels}, out={self.out_channels}, "
                f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})")
