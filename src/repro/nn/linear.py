"""Real-valued affine layers and small utility modules."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.random import default_rng, kaiming_uniform
from repro.tensor.tensor import Tensor


class Linear(Module):
    """Affine transformation ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Optional ``numpy.random.Generator`` used for initialisation, so models
        can be constructed reproducibly.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        rng = default_rng(rng)
        self.weight = Parameter(kaiming_uniform((out_features, in_features), rng=rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        return F.linear(inputs, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Identity(Module):
    """Pass-through module (useful as a placeholder, e.g. for removed decoders)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.flatten(start_dim=1)
