"""Neural-network layers, losses and containers built on :mod:`repro.tensor`.

The real-valued layers here are used for the RVNN reference models of the
paper; the :mod:`repro.nn.complex` subpackage implements the complex-valued
(CVNN) and split complex-valued (SCVNN) layers that OplixNet deploys onto the
optical hardware.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear, Identity, Flatten
from repro.nn.conv import Conv2d
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.activations import ReLU, LeakyReLU, Tanh, Sigmoid, Softmax
from repro.nn.normalization import BatchNorm2d, BatchNorm1d
from repro.nn.dropout import Dropout
from repro.nn.losses import (
    CrossEntropyLoss,
    MSELoss,
    KLDivergenceLoss,
    DistillationLoss,
    cross_entropy,
    mse_loss,
    kl_divergence,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Identity",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "BatchNorm2d",
    "BatchNorm1d",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "KLDivergenceLoss",
    "DistillationLoss",
    "cross_entropy",
    "mse_loss",
    "kl_divergence",
]
