"""Command-line interface: regenerate any table/figure of the paper.

Examples
--------
::

    python -m repro table2 --preset smoke --workloads fcnn lenet5
    python -m repro fig8 --preset bench
    python -m repro area                  # exact MZI accounting only (no training)
    python -m repro ablations --preset smoke
    python -m repro deploy-cnn --method reck --backend column
    python -m repro deploy-resnet --preset smoke   # graph compiler end to end
    python -m repro serve --workload lenet5 --max-batch 1 8 64
    python -m repro serve --workload fcnn --workers 1 2 4   # sharded service
    python -m repro precompile --store ./store --workloads fcnn lenet5
    python -m repro serve --workload fcnn --store ./store   # warm cold-start
    python -m repro backends --calibrate    # native kernel state + crossovers
    python -m repro store prune ./store --max-entries 64 --max-age-days 30
    python -m repro scenarios               # hardware-degradation registry
    python -m repro scenarios --demo        # degradation-vs-time curves
    python -m repro serve --workload fcnn --recalibrate   # drift-and-heal demo
    python -m repro precompile --store ./store --prune-max-entries 64

Each subcommand prints the same rows/series the paper reports and optionally
saves them as JSON with ``--output``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.reporting import format_table, percent, save_json

# mirrors MeshDecomposition.BACKENDS without importing numpy at parse time
_BACKEND_CHOICES = ("auto", "dense", "column", "cchain")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="bench", choices=("smoke", "bench", "paper"),
                        help="training scale (area numbers are always paper-scale)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--output", default=None,
                        help="optional path of a JSON file to store the raw rows")


def _maybe_save(rows, path: Optional[str]) -> None:
    if path:
        save_json(rows, path)
        print(f"\nsaved raw rows to {path}")


def _run_table2(args: argparse.Namespace) -> None:
    from repro.experiments.table2 import format_table2, run_table2

    rows = run_table2(preset=args.preset, workloads=args.workloads or None, seed=args.seed)
    print(format_table2(rows))
    _maybe_save(rows, args.output)


def _run_table3(args: argparse.Namespace) -> None:
    from repro.experiments.table3 import format_table3, run_table3

    rows = run_table3(preset=args.preset, workloads=args.workloads or None, seed=args.seed)
    print(format_table3(rows))
    _maybe_save(rows, args.output)


def _run_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.fig7 import format_fig7, run_fig7

    rows = run_fig7(preset=args.preset, models=args.models or None, seed=args.seed)
    print(format_fig7(rows))
    _maybe_save(rows, args.output)


def _run_fig8(args: argparse.Namespace) -> None:
    from repro.experiments.fig8 import format_fig8, run_fig8

    rows = run_fig8(preset=args.preset, workloads=args.workloads or None, seed=args.seed)
    print(format_fig8(rows))
    _maybe_save(rows, args.output)


def _run_fig9(args: argparse.Namespace) -> None:
    from repro.experiments.fig9 import format_fig9, run_fig9

    rows = run_fig9(preset=args.preset, workloads=args.workloads or None, seed=args.seed)
    print(format_fig9(rows))
    _maybe_save(rows, args.output)


def _run_ablations(args: argparse.Namespace) -> None:
    from repro.experiments import ablations

    print(ablations.format_mesh_comparison(ablations.run_mesh_comparison()))
    print()
    print(ablations.format_alpha_sweep(
        ablations.run_alpha_sweep(preset=args.preset, seed=args.seed)))
    print()
    print(ablations.format_noise_robustness(
        ablations.run_noise_robustness(preset=args.preset, seed=args.seed)))
    print()
    print(ablations.format_pruning(
        ablations.run_pruning_comparison(preset=args.preset, seed=args.seed)))


def _run_deploy_cnn(args: argparse.Namespace) -> None:
    from repro.experiments.deployed import format_deployed_cnn, run_deployed_cnn

    rows = run_deployed_cnn(preset=args.preset, decoder=args.decoder, seed=args.seed,
                            trials=args.trials, method=args.method,
                            backend=args.backend)
    print(format_deployed_cnn(rows))
    _maybe_save(rows, args.output)


def _run_deploy_resnet(args: argparse.Namespace) -> None:
    from repro.experiments.deployed import format_deployed_resnet, run_deployed_resnet

    rows = run_deployed_resnet(preset=args.preset, decoder=args.decoder, seed=args.seed,
                               trials=args.trials, method=args.method,
                               backend=args.backend)
    print(format_deployed_resnet(rows))
    _maybe_save(rows, args.output)


def _run_serve(args: argparse.Namespace) -> None:
    """Serving throughput demo: plan runtime + dynamic micro-batching."""
    import numpy as np

    from repro.core.compile import CompileOptions, HardwareTarget
    from repro.core.pipeline import OplixNet
    from repro.experiments.common import get_workload, workload_config
    from repro.experiments.presets import get_preset
    from repro.serve import ProgramCache, measure_plan_speedup, run_serving_benchmark

    preset = get_preset(args.preset)
    workload = get_workload(args.workload)
    config = workload_config(workload, preset, seed=args.seed, decoder=args.decoder)
    pipeline = OplixNet(config)
    if args.train:
        student, _ = pipeline.train_student(mutual_learning=False)
    else:
        student = pipeline.build_student()
    scheme = pipeline.student_scheme()

    if args.recalibrate:
        _run_serve_recalibrate(args, student, scheme,
                               (config.channels, *config.image_size))
        return
    if args.workers is not None:
        _run_serve_sharded(args, student, scheme,
                           (config.channels, *config.image_size))
        return

    store = None
    if args.store:
        from repro.store import ArtifactStore

        store = ArtifactStore(args.store)
    cache = ProgramCache(capacity=4, store=store)
    target = HardwareTarget(method=args.method)
    options = CompileOptions(backend=args.backend)
    program = cache.get_or_compile(args.workload, student, target, options)
    # a second deploy of the same key must hit the cache
    if cache.get_or_compile(args.workload, student, target, options) is not program:
        raise RuntimeError("program cache failed to serve the repeated deploy")
    if store is not None:
        status = "warm hit" if program.store_hit else "miss (populated)"
        print(f"artifact store {store.root}: {status} "
              f"[key {(program.store_key or '')[:12]}]")

    image_shape = (config.channels, *config.image_size)
    rng = np.random.default_rng(args.seed)
    plan_row = measure_plan_speedup(
        program, rng.normal(size=(args.max_batch[-1],) + image_shape), scheme)
    print(f"{workload.display_name}: {program.plan().describe()}")
    print(f"plan vs node-walk at batch {plan_row['batch']}: "
          f"{plan_row['speedup']:.2f}x "
          f"(walk {plan_row['walk_seconds'] * 1e3:.2f} ms, "
          f"plan {plan_row['plan_seconds'] * 1e3:.2f} ms, "
          f"parity {plan_row['max_deviation']:.1e})\n")

    rows = []
    for max_batch in args.max_batch:
        rows.append(run_serving_benchmark(
            program, scheme, image_shape=image_shape, requests=args.requests,
            clients=args.clients, max_batch=max_batch,
            max_latency_s=args.max_latency_ms / 1e3, seed=args.seed))
    table = [[row.max_batch, row.clients, row.requests,
              f"{row.sequential_requests_per_s:.0f}",
              f"{row.batched_requests_per_s:.0f}",
              f"{row.throughput_gain:.2f}x",
              f"{row.batcher['mean_batch_samples']:.1f}"]
             for row in rows]
    print(format_table(
        ["max batch", "clients", "requests", "seq req/s", "batched req/s",
         "gain", "mean flush size"],
        table, title="Dynamic micro-batching throughput (synthetic traffic)"))
    _maybe_save({"plan": plan_row, "serving": rows,
                 "cache": cache.stats.as_dict()}, args.output)


def _run_serve_sharded(args: argparse.Namespace, student, scheme,
                       image_shape) -> None:
    """Sharded serving demo: worker pools behind shared-memory transport."""
    import dataclasses
    import os

    from repro.core.compile import CompileOptions, HardwareTarget
    from repro.serve import run_shard_benchmark

    worker_counts = sorted(set(args.workers))
    if args.replicas is not None:
        worker_counts = sorted(set(worker_counts + [args.replicas]))
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"sharded serving demo: worker counts {worker_counts} on {cpus} CPU(s)")
    if args.store:
        print(f"workers cold-start from the artifact store at {args.store}")
    rows = run_shard_benchmark(
        student, scheme, image_shape, worker_counts=worker_counts,
        requests=args.requests, clients=args.clients,
        max_batch=max(args.max_batch), max_latency_s=args.max_latency_ms / 1e3,
        seed=args.seed, store_path=args.store)
    table = []
    for row in rows:
        alive = sum(1 for replica in row.replicas.values() if replica.get("alive"))
        restarts = sum(replica.get("restarts", 0)
                       for replica in row.replicas.values())
        drift = row.lane.get("drift") if row.lane else None
        table.append([row.workers, row.clients, row.requests,
                      f"{row.requests_per_s:.0f}", f"{row.gain_vs_single:.2f}x",
                      f"{row.max_parity:.1e}", row.overload_retries,
                      f"{alive}/{len(row.replicas)}",
                      f"{restarts} ({row.lane.get('restarts_used', 0)}"
                      f"/{row.lane.get('max_restarts', 0)} budget)"
                      if row.lane else str(restarts),
                      "-" if drift is None else
                      f"score {drift.get('score')} "
                      f"({drift.get('recalibrations', 0)} recals)"])
    print(format_table(
        ["workers", "clients", "requests", "req/s", "gain vs 1 worker",
         "parity vs in-process", "overload retries", "alive", "restarts",
         "drift"],
        table, title="Sharded serving throughput (shared-memory worker pools)"))
    _maybe_save({"cpus": cpus,
                 "rows": [dataclasses.asdict(row) for row in rows]}, args.output)


def _run_serve_recalibrate(args: argparse.Namespace, student, scheme,
                           image_shape) -> None:
    """Drift-and-heal demo: chaos-mode drift injection + online recalibration."""
    import numpy as np

    from repro.experiments.scenarios import run_drift_recalibration

    rng = np.random.default_rng(args.seed)
    images = rng.normal(size=(32, *image_shape))
    workers = max(args.workers) if args.workers else 2
    print(f"drift-and-heal demo: {workers} worker(s), "
          f"{args.drift_s:.0f}s of injected thermal drift "
          f"(sigma {args.drift_sigma}, tau {args.drift_tau_s}s)")
    summary = run_drift_recalibration(
        student, scheme, image_shape, images, sigma=args.drift_sigma,
        tau_s=args.drift_tau_s, drift_s=args.drift_s, workers=workers,
        seed=args.seed)
    table = [
        ["clean", percent(summary["clean_accuracy"])],
        [f"degraded (t={summary['drift_s']:.0f}s)",
         percent(summary["degraded_accuracy"])],
        ["recalibrated", percent(summary["recalibrated_accuracy"])],
    ]
    print(format_table(["deployment state", "agreement vs clean program"],
                       table, title="Online recalibration"))
    print(f"detected drift at score {summary['detection_score']:.3f}; "
          f"healed in {summary['recalibration_latency_s']:.2f}s; "
          f"traffic during the run: {summary['traffic']['completed']} requests, "
          f"{summary['traffic']['failed']} failed")
    _maybe_save(summary, args.output)


def _run_scenarios(args: argparse.Namespace) -> None:
    """List the hardware-degradation scenario registry; --demo sweeps them."""
    from repro.scenarios import scenario_descriptions

    rows = [[name, description]
            for name, description in scenario_descriptions().items()]
    print(format_table(["scenario", "model"], rows,
                       title="Hardware-degradation scenario registry "
                             "(repro.scenarios)"))
    if not args.demo:
        return

    import numpy as np

    from repro.experiments.scenarios import format_time_sweep, \
        scenario_time_sweep
    from repro.models import ComplexFCNN

    rng = np.random.default_rng(args.seed)
    model = ComplexFCNN(8, (6,), 3, decoder="merge",
                        rng=np.random.default_rng(args.seed))
    images = rng.normal(size=(64, 1, 4, 4))
    all_rows = []
    for config in (
        {"name": "thermal_drift", "params": {"sigma": args.sigma,
                                             "tau_s": 30.0, "seed": args.seed}},
        {"name": "crosstalk", "params": {"sigma": args.sigma / 4,
                                         "coupling": 0.4, "seed": args.seed}},
        {"name": "fabrication", "params": {"sigma": args.sigma / 8,
                                           "seed": args.seed}},
    ):
        all_rows.extend(scenario_time_sweep(
            model, "SI", images, config, times=args.times,
            trials=args.trials))
    print()
    print(format_time_sweep(all_rows))
    _maybe_save(all_rows, args.output)


def _run_precompile(args: argparse.Namespace) -> None:
    """Build the ahead-of-time compilation artifact store offline.

    For every requested workload the student model is built (deterministic
    from the seed, exactly as ``repro serve`` builds it), compiled, and its
    decomposition published into the store -- after which serving processes
    pointed at the same store (``repro serve --store``, ``WorkerSpec``'s
    ``store_path``) cold-start from a memory-mapped disk read instead of
    re-decomposing every mesh.
    """
    import time

    from repro.core.compile import CompileOptions, HardwareTarget
    from repro.core.compile import compile as compile_model
    from repro.core.pipeline import OplixNet
    from repro.experiments.common import get_workload, workload_config
    from repro.experiments.presets import get_preset
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    target = HardwareTarget(method=args.method)
    options = CompileOptions(backend=args.backend)
    preset = get_preset(args.preset)
    table = []
    for name in args.workloads:
        workload = get_workload(name)
        config = workload_config(workload, preset, seed=args.seed,
                                 decoder=args.decoder)
        pipeline = OplixNet(config)
        if args.train:
            student, _ = pipeline.train_student(mutual_learning=False)
        else:
            student = pipeline.build_student()
        start = time.perf_counter()
        program = compile_model(student, target=target, options=options,
                                store=store, store_refresh=args.refresh)
        program.plan()
        seconds = time.perf_counter() - start
        status = "warm hit" if program.store_hit else (
            "rewritten" if args.refresh else "compiled + stored")
        table.append([workload.display_name, (program.store_key or "")[:12],
                      status, f"{seconds * 1e3:.0f} ms"])
    print(format_table(["Model", "key", "status", "build time"], table,
                       title=f"Ahead-of-time compilation into {store.root}"))
    print(f"store stats: {store.stats.as_dict()}")
    prune_report = None
    if args.prune_max_entries is not None or args.prune_max_age_days is not None:
        prune_report = store.prune(
            max_entries=args.prune_max_entries,
            max_age=args.prune_max_age_days * 86400.0
            if args.prune_max_age_days is not None else None)
        print(f"pruned: removed {prune_report['removed_entries']} "
              f"entr{'y' if prune_report['removed_entries'] == 1 else 'ies'}, "
              f"{prune_report['removed_quarantined']} quarantined tree(s), "
              f"{prune_report['kept_entries']} kept")
    _maybe_save({"store": str(store.root), "stats": store.stats.as_dict(),
                 "rows": table, "prune": prune_report}, args.output)


def _run_backends(args: argparse.Namespace) -> None:
    """List mesh execution backends, native-kernel build state, crossovers."""
    from repro.photonics import _native, engine
    from repro.photonics.mzi_mesh import MeshDecomposition
    from repro.photonics.svd_mapping import chain_backend, stack_threshold

    kernel = _native.kernel()
    info = _native.build_info()
    rows = [
        ["dense", "yes", "cached unitary matmul (small meshes)"],
        ["column", "yes", "vectorized numpy column program (reference)"],
        ["cchain", "yes" if kernel is not None else "no",
         "compiled C rotation-chain kernel"],
        ["auto", "yes", "dense below limit, then cchain, then column"],
    ]
    print(format_table(["backend", "available", "description"], rows,
                       title="Mesh execution backends (MeshDecomposition.BACKENDS)"))
    print(f"\nnative kernel: "
          f"{'loaded' if kernel is not None else 'unavailable'}")
    for key in ("source", "compiler", "cache_dir", "forced_reference"):
        if key in info:
            print(f"  {key}: {info[key]}")
    error = _native.load_error()
    if error:
        print(f"  load error: {error}")
    print(f"  decomposition chain backend: {chain_backend()} "
          f"(clements stack threshold "
          f"{stack_threshold('clements')}, reck {stack_threshold('reck')})")
    print(f"  dense size limit: {engine.DENSE_DIMENSION_LIMIT}")

    payload = {"backends": list(MeshDecomposition.BACKENDS),
               "native": info, "load_error": error}
    if args.calibrate:
        print("\nre-measuring dense/backend crossover "
              f"(dims {args.dimensions}, batch {args.batch}) ...")
        crossover = engine.measure_dense_crossover(
            dimensions=tuple(args.dimensions), batch=args.batch,
            repeats=args.repeats, seed=args.seed)
        table = []
        for row in crossover:
            seconds = row["backend_seconds"]
            table.append([row["dimension"],
                          f"{seconds['dense'] * 1e6:.0f}",
                          f"{seconds['column'] * 1e6:.0f}",
                          "n/a" if seconds.get("cchain") is None
                          else f"{seconds['cchain'] * 1e6:.0f}",
                          f"{row['dense_speedup_vs_best']:.2f}x"])
        print(format_table(
            ["dim", "dense us", "column us", "cchain us", "dense vs best"],
            table, title="Per-backend apply time (warm caches)"))
        limit = engine.calibrate_dense_limit(
            dimensions=tuple(args.dimensions), batch=args.batch,
            repeats=args.repeats, seed=args.seed, apply=False)
        print(f"calibrated dense size limit: {limit}")
        payload["crossover"] = crossover
        payload["calibrated_dense_limit"] = limit
    _maybe_save(payload, args.output)


def _run_store_prune(args: argparse.Namespace) -> None:
    """Prune the ahead-of-time artifact store by age and entry count."""
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    report = store.prune(max_entries=args.max_entries,
                         max_age=args.max_age_days * 86400.0
                         if args.max_age_days is not None else None)
    print(f"store {store.root}: removed {report['removed_entries']} "
          f"entr{'y' if report['removed_entries'] == 1 else 'ies'}, "
          f"{report['removed_quarantined']} quarantined tree(s), "
          f"{report['kept_entries']} kept")
    _maybe_save(report, args.output)


def _run_area(args: argparse.Namespace) -> None:
    """Exact paper-scale MZI accounting for every workload (no training)."""
    from repro.experiments.common import WORKLOADS
    from repro.experiments.table2 import paper_area_numbers

    rows = []
    for workload in WORKLOADS:
        numbers = paper_area_numbers(workload)
        rows.append([workload.display_name,
                     f"{numbers['original_mzis'] / 1e4:.1f}",
                     f"{numbers['proposed_mzis'] / 1e4:.1f}",
                     percent(numbers["mzi_reduction"])])
    print(format_table(["Model", "#MZI Orig. (x1e4)", "#MZI Prop. (x1e4)", "Reduction"], rows,
                       title="Exact MZI accounting at paper scale (Table II area columns)"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OplixNet (DATE 2024) reproduction -- regenerate the paper's tables and figures",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, runner, helptext in (
        ("table2", _run_table2, "Table II: accuracy and #MZI vs the original ONN"),
        ("table3", _run_table3, "Table III: SCVNN-CVNN mutual learning"),
        ("fig8", _run_fig8, "Figure 8: data-assignment comparison"),
        ("fig9", _run_fig9, "Figure 9: decoder comparison"),
    ):
        sub = subparsers.add_parser(name, help=helptext)
        _add_common_arguments(sub)
        sub.add_argument("--workloads", nargs="*", default=None,
                         help="subset of workloads (fcnn lenet5 resnet20 resnet32)")
        sub.set_defaults(runner=runner)

    fig7 = subparsers.add_parser("fig7", help="Figure 7: comparison with the OFFT architecture")
    _add_common_arguments(fig7)
    fig7.add_argument("--models", nargs="*", default=None,
                      help="subset of Fig. 7 models (Model1 Model2 Model3 Model4)")
    fig7.set_defaults(runner=_run_fig7)

    ablations = subparsers.add_parser("ablations", help="ablation studies (alpha, mesh, noise, pruning)")
    _add_common_arguments(ablations)
    ablations.set_defaults(runner=_run_ablations)

    for name, runner, default_trials, helptext in (
        ("deploy-cnn", _run_deploy_cnn, 8,
         "compile the complex LeNet-5 onto meshes (im2col lowering)"),
        ("deploy-resnet", _run_deploy_resnet, 4,
         "compile the complex ResNet onto meshes (graph lowering with "
         "electronic skip adds)"),
    ):
        deploy = subparsers.add_parser(name, help=helptext)
        _add_common_arguments(deploy)
        deploy.add_argument("--decoder", default="merge",
                            choices=("merge", "linear", "unitary", "coherent", "photodiode"))
        deploy.add_argument("--trials", type=int, default=default_trials,
                            help="Monte-Carlo noise realizations per sigma")
        deploy.add_argument("--method", default="clements", choices=("clements", "reck"),
                            help="mesh decomposition scheme (HardwareTarget.method)")
        deploy.add_argument("--backend", default="auto", choices=_BACKEND_CHOICES,
                            help="mesh execution backend (CompileOptions.backend): "
                                 "'auto' picks dense below the calibrated size "
                                 "limit, then the compiled cchain kernel when "
                                 "built, then the column program; 'cchain' "
                                 "forces the native kernel (falls back to "
                                 "'column' with a logged warning if no C "
                                 "toolchain is available)")
        deploy.set_defaults(runner=runner)

    serve = subparsers.add_parser(
        "serve", help="serving demo: plan runtime + dynamic micro-batching throughput")
    _add_common_arguments(serve)
    serve.add_argument("--workload", default="fcnn",
                       choices=("fcnn", "lenet5", "resnet20", "resnet32"))
    serve.add_argument("--decoder", default="merge",
                       choices=("merge", "linear", "unitary", "coherent", "photodiode"))
    serve.add_argument("--method", default="clements", choices=("clements", "reck"))
    serve.add_argument("--backend", default="auto", choices=_BACKEND_CHOICES)
    serve.add_argument("--train", action="store_true",
                       help="train the student first (default: serve random weights, "
                            "which measures the same throughput)")
    serve.add_argument("--requests", type=int, default=256,
                       help="synthetic single-image requests to serve")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads")
    serve.add_argument("--max-batch", type=int, nargs="+", default=[1, 8, 64],
                       help="flush sample budgets to sweep")
    serve.add_argument("--max-latency-ms", type=float, default=2.0,
                       help="longest a queued request waits for co-batching")
    serve.add_argument("--workers", type=int, nargs="+", default=None,
                       help="run the multi-process sharded service instead, "
                            "sweeping these worker-pool sizes")
    serve.add_argument("--replicas", type=int, default=None,
                       help="additional replica count to include in the "
                            "sharded sweep (e.g. a hot-model pool size)")
    serve.add_argument("--store", default=None,
                       help="path of an ahead-of-time compilation artifact "
                            "store (see 'repro precompile'); deploys hit warm "
                            "precompiled entries instead of decomposing")
    serve.add_argument("--recalibrate", action="store_true",
                       help="run the drift-and-heal demo instead: deploy the "
                            "sharded service in chaos mode, inject thermal "
                            "drift, detect it from logit statistics and "
                            "recalibrate with traffic flowing")
    serve.add_argument("--drift-s", type=float, default=120.0,
                       help="seconds of thermal drift to inject (--recalibrate)")
    serve.add_argument("--drift-sigma", type=float, default=0.5,
                       help="stationary drift std in radians (--recalibrate)")
    serve.add_argument("--drift-tau-s", type=float, default=30.0,
                       help="drift correlation time in seconds (--recalibrate)")
    serve.set_defaults(runner=_run_serve)

    precompile = subparsers.add_parser(
        "precompile",
        help="build the ahead-of-time compilation artifact store offline")
    _add_common_arguments(precompile)
    precompile.add_argument("--store", required=True,
                            help="store directory (created if missing)")
    precompile.add_argument("--workloads", nargs="+",
                            default=["fcnn", "lenet5", "resnet20"],
                            choices=("fcnn", "lenet5", "resnet20", "resnet32"),
                            help="models to precompile")
    precompile.add_argument("--decoder", default="merge",
                            choices=("merge", "linear", "unitary", "coherent",
                                     "photodiode"))
    precompile.add_argument("--method", default="clements",
                            choices=("clements", "reck"))
    precompile.add_argument("--backend", default="auto",
                            choices=_BACKEND_CHOICES)
    precompile.add_argument("--train", action="store_true",
                            help="train the student first so the stored "
                                 "program serves trained weights")
    precompile.add_argument("--refresh", action="store_true",
                            help="bypass existing entries and rewrite them "
                                 "from a live compile")
    precompile.add_argument("--prune-max-entries", type=int, default=None,
                            help="after building, keep at most this many "
                                 "store entries (least recently used evicted)")
    precompile.add_argument("--prune-max-age-days", type=float, default=None,
                            help="after building, evict entries unused for "
                                 "this many days")
    precompile.set_defaults(runner=_run_precompile)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="hardware-degradation scenario registry; --demo sweeps "
             "degradation vs time")
    scenarios.add_argument("--demo", action="store_true",
                           help="run degradation-trajectory sweeps of every "
                                "scenario on a tiny FCNN")
    scenarios.add_argument("--sigma", type=float, default=0.4,
                           help="thermal-drift stationary std in radians for "
                                "the demo (other scenarios scale off it)")
    scenarios.add_argument("--times", type=float, nargs="+",
                           default=[0.0, 10.0, 30.0, 60.0, 120.0],
                           help="scenario times (seconds) of the trajectory")
    scenarios.add_argument("--trials", type=int, default=8,
                           help="Monte-Carlo realizations per time step")
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument("--output", default=None,
                           help="optional path of a JSON file to store the rows")
    scenarios.set_defaults(runner=_run_scenarios)

    backends = subparsers.add_parser(
        "backends",
        help="list mesh execution backends and the native kernel build state")
    backends.add_argument("--calibrate", action="store_true",
                          help="re-measure the dense/column/cchain crossover "
                               "and report the calibrated dense size limit")
    backends.add_argument("--dimensions", type=int, nargs="+",
                          default=[16, 32, 48, 64, 96, 128],
                          help="mesh dimensions to time with --calibrate")
    backends.add_argument("--batch", type=int, default=32)
    backends.add_argument("--repeats", type=int, default=5)
    backends.add_argument("--seed", type=int, default=0)
    backends.add_argument("--output", default=None,
                          help="optional path of a JSON file to store the report")
    backends.set_defaults(runner=_run_backends)

    store = subparsers.add_parser(
        "store", help="manage the ahead-of-time compilation artifact store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    prune = store_sub.add_parser(
        "prune", help="evict old/excess store entries and quarantined trees")
    prune.add_argument("store", help="store directory to prune")
    prune.add_argument("--max-entries", type=int, default=None,
                       help="keep at most this many entries (least recently "
                            "used evicted first)")
    prune.add_argument("--max-age-days", type=float, default=None,
                       help="evict entries not read or written for this many days")
    prune.add_argument("--output", default=None,
                       help="optional path of a JSON file to store the report")
    prune.set_defaults(runner=_run_store_prune)

    area = subparsers.add_parser("area", help="exact paper-scale MZI accounting (no training)")
    area.set_defaults(runner=_run_area)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.runner(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
