"""Micro-benchmarks of the ``repro.compile`` pipeline.

Two quantities are measured and recorded to ``benchmarks/results/compile.json``:

* **Batched-stack decomposition** -- decomposing a stack of same-size
  unitaries in one vectorized Reck/Clements pass
  (:func:`~repro.photonics.mzi_mesh.decompose_unitary_stack`) versus the
  per-matrix loop.  The Clements chain is a sequential dependency chain per
  matrix, so the stack axis is the only batch-level parallelism available --
  this is the decomposition win the ROADMAP called out.
* **Deployed-ResNet throughput** -- compile time of a residual model (batched
  versus sequential decomposition of its conv-kernel SVD factors) and the
  forward throughput of the compiled graph program, with the noiseless
  fidelity against the eval-mode software model asserted to 1e-8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

import os

from repro.experiments.reporting import save_json
from repro.photonics import decompose_unitary, decompose_unitary_stack, random_unitary


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


@dataclass
class StackBenchRow:
    dimension: int
    stack_size: int
    method: str
    per_matrix_seconds: float
    batched_seconds: float
    speedup: float
    max_phase_deviation: float


@dataclass
class ResnetBenchRow:
    depth: int
    base_widths: tuple
    image_size: int
    mzi_count: int
    sequential_compile_seconds: float
    batched_compile_seconds: float
    compile_speedup: float
    forward_seconds: float
    images_per_second: float
    max_logit_error: float


@dataclass
class ThresholdBenchRow:
    dimension: int
    stack_size: int
    method: str
    per_matrix_seconds: float
    batched_seconds: float
    speedup: float
    configured_threshold: int
    chain_backend: str = "numpy"    # which scalar-chain kernel the run used


_results: dict = {"stack_decomposition": [], "stack_threshold": [],
                  "deployed_resnet": []}


def _save(results_dir) -> None:
    save_json(_results, results_dir / "compile.json")


def _bench_sizes():
    if bench_preset_name() == "smoke":
        return 24, 8
    return 48, 16


@pytest.mark.parametrize("method", ["clements", "reck"])
def test_batched_stack_decomposition_speedup(benchmark, best_of, method, results_dir):
    dimension, stack_size = _bench_sizes()
    rng = np.random.default_rng(0)
    stack = np.stack([random_unitary(dimension, rng) for _ in range(stack_size)])

    decompose_unitary_stack(stack, method=method)   # warm the schedule caches
    batched_seconds = best_of(lambda: decompose_unitary_stack(stack, method=method),
                              repeats=3)
    per_matrix_seconds = best_of(
        lambda: [decompose_unitary(unitary, method=method) for unitary in stack],
        repeats=3)
    meshes = benchmark(decompose_unitary_stack, stack, method=method)

    deviation = 0.0
    for unitary, mesh in zip(stack, meshes):
        reference = decompose_unitary(unitary, method=method)
        deviation = max(deviation,
                        float(np.abs(mesh.thetas - reference.thetas).max()),
                        float(np.abs(mesh.phis - reference.phis).max()),
                        float(np.abs(mesh.output_phases - reference.output_phases).max()))
    assert deviation < 1e-10

    speedup = per_matrix_seconds / batched_seconds
    # measured ~8x (clements) / ~3x (reck) for a 16-stack at dimension 48;
    # pin a regression floor below the noise band of shared CI runners
    assert speedup >= 1.3

    _results["stack_decomposition"].append(StackBenchRow(
        dimension=dimension, stack_size=stack_size, method=method,
        per_matrix_seconds=per_matrix_seconds, batched_seconds=batched_seconds,
        speedup=speedup, max_phase_deviation=deviation))
    _save(results_dir)


@pytest.mark.parametrize("method", ["clements", "reck"])
def test_stack_threshold_crossover(best_of, method, results_dir):
    """Re-measure the per-method stack/per-matrix crossover at small stacks.

    The ``STACK_THRESHOLDS`` defaults are picked from exactly this
    measurement, per chain backend: the smallest stack size whose batched
    decomposition does not lose to the per-matrix loop.  On the pure-numpy
    chain the fused small-array kernel
    (:func:`repro.photonics.engine.nulling_rotation_blocks`, one solve + one
    batched 2x2 matmul per Clements chain step) moved the Clements crossover
    from four matrices to three; with the native ``cchain`` kernel the
    per-matrix loop gets faster too, but the stacked C pass amortizes its
    call overhead already at two matrices.  Reck wins from two either way.
    The batched path must be at (or above) break-even at the configured
    threshold -- asserted with headroom for shared-runner noise.
    """
    from repro.photonics.svd_mapping import chain_backend, stack_threshold

    dimension = 16 if bench_preset_name() == "smoke" else 32
    backend = chain_backend()
    threshold = stack_threshold(method, backend=backend)
    rng = np.random.default_rng(1)
    for stack_size in (2, 3, 4):
        stack = np.stack([random_unitary(dimension, rng) for _ in range(stack_size)])
        decompose_unitary_stack(stack, method=method)   # warm the schedule caches
        batched_seconds = best_of(
            lambda: decompose_unitary_stack(stack, method=method), repeats=5)
        per_matrix_seconds = best_of(
            lambda: [decompose_unitary(unitary, method=method) for unitary in stack],
            repeats=5)
        speedup = per_matrix_seconds / batched_seconds
        if stack_size == threshold:
            assert speedup >= 0.7
        _results["stack_threshold"].append(ThresholdBenchRow(
            dimension=dimension, stack_size=stack_size, method=method,
            per_matrix_seconds=per_matrix_seconds, batched_seconds=batched_seconds,
            speedup=speedup, configured_threshold=threshold,
            chain_backend=backend))
    _save(results_dir)


def test_compiled_resnet_forward_throughput(best_of, results_dir):
    import repro
    from repro.assignment import get_scheme
    from repro.core.compile import CompileOptions
    from repro.core.training import prepare_batch
    from repro.models.resnet import ComplexResNet
    from repro.nn.normalization import _BatchNorm
    from repro.tensor import no_grad

    smoke = bench_preset_name() == "smoke"
    # depth 14 gives two blocks per stage, so the conv-kernel SVD factors form
    # dimension groups large enough to cross the Clements stack threshold
    depth = 8 if smoke else 14
    widths = (2, 4, 8) if smoke else (4, 8, 16)
    image = 8 if smoke else 12
    batch = 16 if smoke else 32

    rng = np.random.default_rng(0)
    model = ComplexResNet(depth=depth, in_channels=2, num_classes=10,
                          base_widths=widths, rng=rng)
    for _name, module in model.named_modules():
        if isinstance(module, _BatchNorm):
            module._set_buffer("running_mean", rng.normal(size=module.num_features) * 0.3)
            module._set_buffer("running_var", rng.uniform(0.5, 2.0, size=module.num_features))

    sequential_seconds = best_of(
        lambda: repro.compile(model, options=CompileOptions(batch_unitaries=False)),
        repeats=2)
    batched_seconds = best_of(lambda: repro.compile(model), repeats=2)
    program = repro.compile(model)

    scheme = get_scheme("CL")
    images = rng.normal(size=(batch, 3, image, image))
    with no_grad():
        software = model(prepare_batch(images, scheme)).data
    logits = program.predict_logits(images, scheme)
    max_logit_error = float(np.abs(logits - software).max())
    assert max_logit_error <= 1e-8

    forward_seconds = best_of(lambda: program.predict_logits(images, scheme), repeats=3)

    _results["deployed_resnet"].append(ResnetBenchRow(
        depth=model.depth, base_widths=widths, image_size=image,
        mzi_count=program.mzi_count,
        sequential_compile_seconds=sequential_seconds,
        batched_compile_seconds=batched_seconds,
        compile_speedup=sequential_seconds / batched_seconds,
        forward_seconds=forward_seconds,
        images_per_second=batch / forward_seconds,
        max_logit_error=max_logit_error))
    _save(results_dir)
