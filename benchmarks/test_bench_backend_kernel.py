"""Micro-benchmarks of the native ``cchain`` backend vs the numpy paths.

Records to ``benchmarks/results/backend_kernel.json``:

* **Propagation** -- the compiled C rotation-chain walk
  (:func:`repro.photonics.engine.native_propagate`) against the vectorized
  numpy column program on the same mesh/batch, per dimension.
* **Clements chain decomposition** -- the native scalar nulling chain
  against the pure-numpy chain, single-matrix and stacked.  The two-matrix
  stack is the headline row: it is exactly the case the per-backend
  ``STACK_THRESHOLDS`` axis moved from "not worth batching" (numpy needs
  three matrices) to "batch it" (the C stack kernel pays off at two), and
  CI pins a conservative 1.5x floor on it.

Without a C toolchain every test here auto-skips with a logged reason and
the JSON records ``skip_reason`` instead of timings, so the artifact always
says *why* numbers are absent.  All timed paths are parity-pinned to the
numpy reference at 1e-10 before any floor is asserted.
"""

from __future__ import annotations

import logging
import os

import numpy as np
import pytest

from repro.experiments.reporting import save_json
from repro.photonics import _native, engine
from repro.photonics.mzi_mesh import clements_decompose, clements_decompose_stack
from repro.photonics.svd_mapping import stack_threshold

logger = logging.getLogger("repro.benchmarks.backend_kernel")

PARITY = 1e-10

_results: dict = {
    "native_kernel": None,
    "skip_reason": None,
    "propagate": [],
    "clements_chain": [],
}


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


def _save(results_dir) -> None:
    _results["native_kernel"] = _native.build_info()
    save_json(_results, results_dir / "backend_kernel.json")


def _require_kernel(results_dir):
    """Skip (with a recorded reason) when the native kernel is unavailable."""
    if _native.kernel() is not None:
        return
    if _native.force_reference_enabled():
        reason = "disabled by REPRO_FORCE_REFERENCE"
    else:
        reason = _native.load_error() or "kernel not loaded"
    _results["skip_reason"] = reason
    _save(results_dir)
    logger.warning("skipping native backend benchmark: %s", reason)
    pytest.skip(f"native cchain kernel unavailable: {reason}")


def _random_unitary(dim: int, rng) -> np.ndarray:
    gaussian = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(gaussian)
    return q * (np.diagonal(r) / np.abs(np.diagonal(r)))


def test_native_propagate_vs_column_program(best_of, results_dir):
    _require_kernel(results_dir)
    dims = (16, 32) if bench_preset_name() == "smoke" else (16, 32, 64, 128)
    batch = 32
    rng = np.random.default_rng(0)
    for dim in dims:
        mesh = clements_decompose(_random_unitary(dim, rng))
        program = mesh.compiled()
        states = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
        native = engine.native_propagate(mesh.modes, states, mesh.thetas,
                                         mesh.phis, mesh.output_phases)
        column = engine.propagate(program, states, mesh.thetas, mesh.phis,
                                  mesh.output_phases)
        parity = float(np.abs(native - column).max())
        assert parity <= PARITY
        native_seconds = best_of(
            lambda: engine.native_propagate(mesh.modes, states, mesh.thetas,
                                            mesh.phis, mesh.output_phases),
            repeats=5)
        column_seconds = best_of(
            lambda: engine.propagate(program, states, mesh.thetas, mesh.phis,
                                     mesh.output_phases),
            repeats=5)
        _results["propagate"].append({
            "dimension": dim, "batch": batch,
            "native_seconds": native_seconds,
            "column_seconds": column_seconds,
            "speedup": column_seconds / native_seconds,
            "parity": parity,
        })
    _save(results_dir)
    # the C walk must not lose badly to the vectorized column program
    # anywhere; where it wins is machine-dependent and recorded, not pinned
    assert all(row["speedup"] >= 0.5 for row in _results["propagate"])


@pytest.mark.parametrize("stack_size", [1, 2, 4])
def test_clements_chain_vs_numpy(best_of, results_dir, stack_size):
    """Native Clements nulling chain vs the pure-numpy scalar chain.

    ``stack_size == 2`` is the CI-pinned row: the two-matrix stacked
    decomposition through the C kernel must be at least 1.5x faster than
    the pure-numpy chain over the same matrices -- that gap is what
    justifies the clements ``cchain`` stack threshold of 2.
    """
    _require_kernel(results_dir)
    dimension = 16 if bench_preset_name() == "smoke" else 32
    rng = np.random.default_rng(stack_size)
    stack = np.stack([_random_unitary(dimension, rng) for _ in range(stack_size)])

    def decompose_native():
        if stack_size == 1:
            return [clements_decompose(stack[0])]
        return clements_decompose_stack(stack)

    def decompose_numpy():
        with pytest.MonkeyPatch.context() as patch:
            patch.setenv("REPRO_FORCE_REFERENCE", "1")
            if stack_size == 1:
                return [clements_decompose(stack[0])]
            return clements_decompose_stack(stack)

    native_meshes = decompose_native()
    numpy_meshes = decompose_numpy()
    parity = max(
        max(float(np.abs(a.thetas - b.thetas).max()),
            float(np.abs(a.phis - b.phis).max()),
            float(np.abs(a.output_phases - b.output_phases).max()),
            float(np.abs(a.reconstruct() - unitary).max()))
        for a, b, unitary in zip(native_meshes, numpy_meshes, stack))
    assert parity <= PARITY

    native_seconds = best_of(decompose_native, repeats=5)
    numpy_seconds = best_of(decompose_numpy, repeats=5)
    speedup = numpy_seconds / native_seconds
    _results["clements_chain"].append({
        "dimension": dimension, "stack_size": stack_size,
        "native_seconds": native_seconds,
        "numpy_seconds": numpy_seconds,
        "speedup": speedup,
        "parity": parity,
        "configured_stack_threshold": stack_threshold("clements"),
    })
    _save(results_dir)
    if stack_size == 2:
        # the CI floor of the issue: two-matrix Clements stack through the
        # kernel vs the pure-numpy chain (measured well above this; the
        # floor leaves room for shared-runner noise)
        assert speedup >= 1.5, (
            f"two-matrix Clements stack only {speedup:.2f}x over numpy")
