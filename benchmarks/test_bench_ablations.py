"""Benchmarks of the ablation studies called out in DESIGN.md.

Covers: the distillation mixing factor, Reck vs Clements meshes, phase-noise
robustness of the deployed split vs conventional ONN, encoder throughput and
the pruning baseline [18].
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    format_alpha_sweep,
    format_mesh_comparison,
    format_noise_robustness,
    format_pruning,
    run_alpha_sweep,
    run_encoder_throughput,
    run_mesh_comparison,
    run_noise_robustness,
    run_pruning_comparison,
)
from repro.experiments.reporting import save_json


def test_alpha_sweep(run_once, preset_name, results_dir):
    points = run_once(run_alpha_sweep, preset=preset_name, alphas=(0.0, 0.5, 1.0, 2.0))

    assert len(points) == 4
    assert all(0.0 <= p.student_accuracy <= 1.0 for p in points)

    save_json(points, results_dir / "ablation_alpha.json")
    print()
    print(format_alpha_sweep(points))


def test_mesh_comparison(run_once, results_dir):
    rows = run_once(run_mesh_comparison, dimensions=(4, 8, 16, 32))

    assert all(row.reconstruction_error < 1e-8 for row in rows)
    by_key = {(row.dimension, row.method): row for row in rows}
    for dimension in (8, 16, 32):
        assert (by_key[(dimension, "clements")].optical_depth
                <= by_key[(dimension, "reck")].optical_depth)

    save_json(rows, results_dir / "ablation_mesh.json")
    print()
    print(format_mesh_comparison(rows))


def test_noise_robustness(run_once, preset_name, results_dir):
    points = run_once(run_noise_robustness, preset=preset_name,
                      sigmas=(0.0, 0.01, 0.03, 0.1), eval_samples=96)

    assert len(points) == 4
    clean = points[0]
    noisiest = points[-1]
    # accuracy cannot improve under heavy phase noise
    assert noisiest.split_onn_accuracy <= clean.split_onn_accuracy + 0.05
    assert noisiest.conventional_onn_accuracy <= clean.conventional_onn_accuracy + 0.05

    save_json(points, results_dir / "ablation_noise.json")
    print()
    print(format_noise_robustness(points))


def test_encoder_throughput(run_once, results_dir):
    rows = run_once(run_encoder_throughput, sample_counts=(1_000, 1_000_000))

    dc_rows = [row for row in rows if row.encoder == "dc"]
    ps_rows = [row for row in rows if row.encoder == "ps"]
    assert all(dc.latency_seconds < ps.latency_seconds for dc, ps in zip(dc_rows, ps_rows))

    save_json(rows, results_dir / "ablation_encoder.json")


def test_pruning_comparison(run_once, preset_name, results_dir):
    rows = run_once(run_pruning_comparison, preset=preset_name, sparsities=(0.5, 0.75, 0.9))

    labels = [row.configuration for row in rows]
    assert any("OplixNet" in label for label in labels)
    pruned_075 = [row for row in rows if "0.75" in row.configuration][0]
    assert pruned_075.mzi_fraction == pytest.approx(0.25, abs=0.01)

    save_json(rows, results_dir / "ablation_pruning.json")
    print()
    print(format_pruning(rows))
