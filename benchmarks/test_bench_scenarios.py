"""Benchmark of the hardware-realism scenario suite and the serving-layer
drift-detect-recalibrate loop.

Records to ``benchmarks/results/scenarios.json``:

* **Degradation trajectories** -- prediction agreement vs the clean program
  as a function of scenario time for each registered scenario, evaluated as
  one batched ensemble per scenario (the time axis rides the engine's trial
  machinery, so a whole curve costs a single forward pass).
* **The recalibration loop** -- end to end against a live
  :class:`ShardedInferenceService` in chaos mode: injected thermal drift
  measurably degrades accuracy, the :class:`RecalibrationManager` detects it
  from logit statistics alone and heals the lane by drain-then-swap
  redeploy.  The acceptance properties are asserted, not just recorded:
  accuracy is restored to within 1% of clean and zero requests failed while
  the swap was in flight.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.reporting import save_json
from repro.experiments.scenarios import (
    run_drift_recalibration,
    scenario_time_sweep,
)
from repro.models import ComplexFCNN

IMAGE_SHAPE = (1, 4, 4)
RECOVERY_TOLERANCE = 0.01    # recalibrated accuracy within 1% of clean

_results: dict = {}


def bench_preset_name() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "bench")


def _bench_model() -> ComplexFCNN:
    return ComplexFCNN(8, (6,), 3, decoder="merge",
                       rng=np.random.default_rng(0))


def test_degradation_trajectories(results_dir):
    smoke = bench_preset_name() == "smoke"
    images = np.random.default_rng(2).normal(
        size=(32 if smoke else 96, *IMAGE_SHAPE))
    times = [0.0, 10.0, 30.0, 60.0, 120.0]
    trials = 4 if smoke else 16
    sweeps = {}
    for name, params in (
            ("thermal_drift", {"sigma": 0.4, "tau_s": 30.0}),
            ("crosstalk", {"sigma": 0.1, "coupling": 0.3}),
            ("fabrication", {"sigma": 0.05})):
        sweeps[name] = scenario_time_sweep(
            _bench_model(), "SI", images, {"name": name, "params": params},
            times=times, trials=trials)
    # a drift walk starts clean and loses agreement as the clock advances
    drift = {row["time_s"]: row["agreement"] for row in sweeps["thermal_drift"]}
    assert drift[0.0] == 1.0
    assert drift[120.0] < 1.0
    # fabrication error is frozen: the whole curve is one constant
    fabrication = [row["agreement"] for row in sweeps["fabrication"]]
    assert len(set(fabrication)) == 1
    _results["trajectories"] = sweeps


def test_drift_recalibration_loop(results_dir):
    smoke = bench_preset_name() == "smoke"
    images = np.random.default_rng(3).normal(
        size=(24 if smoke else 48, *IMAGE_SHAPE))
    summary = run_drift_recalibration(
        _bench_model(), "SI", IMAGE_SHAPE, images, sigma=0.5, tau_s=30.0,
        drift_s=120.0, workers=2, threshold=0.15, min_batches=2,
        observe_batches=4, seed=0)
    # the acceptance properties of the recalibration loop
    assert summary["degraded_accuracy"] < summary["clean_accuracy"] - 0.05
    assert summary["detected"] and summary["recalibrations"] == 1
    assert summary["recalibrated_accuracy"] >= \
        summary["clean_accuracy"] - RECOVERY_TOLERANCE
    assert summary["traffic"]["failed"] == 0

    _results["recalibration"] = summary
    _results["preset"] = bench_preset_name()
    _results["recovery_tolerance"] = RECOVERY_TOLERANCE
    save_json(_results, results_dir / "scenarios.json")
