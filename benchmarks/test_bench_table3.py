"""Benchmark: reproduce Table III (SCVNN accuracy with vs without mutual learning)."""

from __future__ import annotations

import pytest

from repro.experiments.common import get_workload
from repro.experiments.presets import get_preset
from repro.experiments.reporting import save_json
from repro.experiments.table3 import TABLE3_WORKLOAD_KEYS, Table3Row, format_table3, run_workload

_rows: list = []


@pytest.mark.parametrize("workload_key", TABLE3_WORKLOAD_KEYS)
def test_table3_row(run_once, workload_key, preset_name, results_dir):
    workload = get_workload(workload_key)
    preset = get_preset(preset_name)

    row: Table3Row = run_once(run_workload, workload, preset)

    assert 0.0 <= row.accuracy_without_ml <= 1.0
    assert 0.0 <= row.accuracy_with_ml <= 1.0

    _rows.append(row)
    save_json(_rows, results_dir / "table3.json")
    print()
    print(format_table3(_rows))
